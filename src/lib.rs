//! # filterscope
//!
//! A faithful, executable reproduction of **“Censorship in the Wild:
//! Analyzing Internet Filtering in Syria”** (IMC 2014): a behavioural
//! simulator of the seven Blue Coat SG-9000 proxies the paper studied, a
//! calibrated synthetic workload standing in for the (unavailable) 600 GB
//! leak, and the full measurement pipeline that regenerates every table and
//! figure of the paper.
//!
//! ## Quick start
//!
//! ```
//! use filterscope::prelude::*;
//!
//! // A corpus at 1/2^18 of the leak's volume (fast; raise for fidelity).
//! let corpus = Corpus::new(SynthConfig::new(262_144).unwrap());
//! let ctx = AnalysisContext::standard(Some(corpus.relay_index()));
//! let mut suite = AnalysisSuite::new(2);
//! corpus.for_each_record(|r| suite.ingest(&ctx, &r.as_view()));
//! println!("{}", suite.overview().render()); // Table 3
//! assert!(suite.datasets().full > 1000);
//! ```
//!
//! ## Crate map
//!
//! * [`logformat`] — the leaked 26-field ELFF/CSV schema, parser/writer,
//!   and the §3.3 request classification;
//! * [`proxy`] — the SG-9000 policy engine and seven-proxy farm;
//! * [`synth`] — the calibrated workload generator;
//! * [`analysis`] — every table/figure as a streaming accumulator;
//! * [`policylint`] — static analysis of policies: reachability and
//!   shadowing lints, the cross-proxy skew matrix, and witness-backed
//!   equivalence checking (`filterscope lint`);
//! * [`stream`] — the live ingest daemon (`serve`) and replay client
//!   (`stream`): framed TCP batches, per-connection analysis shards,
//!   periodic snapshot folds, and a `/metrics` endpoint;
//! * [`snapstore`] — the append-only snapshot log behind
//!   `serve --snap-log` and the windowed time-travel queries behind
//!   `filterscope history` (`at` / `diff` / `series` / `ls`);
//! * [`tor`], [`bittorrent`], [`geoip`], [`categorizer`] — the external
//!   datasets the paper used, rebuilt as substrates;
//! * [`matchers`], [`stats`], [`core`] — engines and primitives.

#![forbid(unsafe_code)]

pub use filterscope_analysis as analysis;
pub use filterscope_bittorrent as bittorrent;
pub use filterscope_categorizer as categorizer;
pub use filterscope_core as core;
pub use filterscope_geoip as geoip;
pub use filterscope_logformat as logformat;
pub use filterscope_match as matchers;
pub use filterscope_policylint as policylint;
pub use filterscope_proxy as proxy;
pub use filterscope_snapstore as snapstore;
pub use filterscope_stats as stats;
pub use filterscope_stream as stream;
pub use filterscope_synth as synth;
pub use filterscope_tor as tor;

/// The most common imports in one place.
pub mod prelude {
    pub use filterscope_analysis::{
        Analysis, AnalysisContext, AnalysisSuite, Selection, SuiteParams,
    };
    pub use filterscope_core::{Date, ProxyId, Timestamp};
    pub use filterscope_logformat::{
        parse_line, LogReader, LogRecord, LogWriter, RequestClass, RequestUrl,
    };
    pub use filterscope_proxy::{ProxyFarm, Request};
    pub use filterscope_synth::{Corpus, StudyPeriod, SynthConfig};
}
