//! Standalone entry point for the source-invariant lint (tier-1 gate):
//! `cargo run --release --bin srclint [ROOT]`. Exit codes: 0 clean,
//! 1 violations, 2 cannot scan.

use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    match interleave::srclint::check_workspace(std::path::Path::new(&root)) {
        Ok(violations) if violations.is_empty() => {
            println!("srclint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("srclint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("srclint: cannot scan {root}: {e}");
            ExitCode::from(2)
        }
    }
}
