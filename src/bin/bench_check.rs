//! `bench_check`: validate a bench-results JSON file and flag regressions.
//!
//! ```text
//! bench_check [RESULTS] [--against BASELINE] [--max-regression PCT]
//! ```
//!
//! `RESULTS` defaults to `BENCH.json` (the committed baseline, written by
//! the bench harness under `FILTERSCOPE_BENCH_JSON`). Schema problems —
//! wrong shapes, non-positive timings, unknown rate units, duplicate
//! `(group, name)` pairs — are hard errors, and so is a violation of the
//! `interleave` passthrough-parity guard (see [`parity_violations`]).
//! With `--against BASELINE`,
//! entries present in both files are compared: a throughput drop (or,
//! for rate-less entries, a median-time increase) beyond the threshold
//! (default 20%) fails the check. Entries only one side has are reported
//! but never fail — thread-count-suffixed names legitimately differ
//! across machines.

use filterscope::core::Json;
use std::process::ExitCode;

/// Default failure threshold: a 20% throughput drop (or slowdown).
const DEFAULT_MAX_REGRESSION_PCT: f64 = 20.0;

/// One validated bench entry.
#[derive(Debug, Clone, PartialEq)]
struct Entry {
    group: String,
    name: String,
    median_ns: u64,
    min_ns: u64,
    /// `(rate, unit)` when the benchmark reports throughput.
    rate: Option<(f64, String)>,
}

impl Entry {
    fn key(&self) -> String {
        format!("{}/{}", self.group, self.name)
    }
}

/// Member lookup that distinguishes "absent" from "wrong type".
fn str_member(obj: &Json, key: &str) -> Option<String> {
    match obj.get(key) {
        Some(Json::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

/// Parse and validate one results document.
fn validate(text: &str, label: &str) -> Result<Vec<Entry>, Vec<String>> {
    let doc = match Json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return Err(vec![format!("{label}: not valid JSON: {e}")]),
    };
    let Json::Arr(items) = doc else {
        return Err(vec![format!("{label}: expected a top-level array")]);
    };
    let mut errors = Vec::new();
    let mut entries: Vec<Entry> = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let at = |msg: &str| format!("{label}: entry {i}: {msg}");
        if !matches!(item, Json::Obj(_)) {
            errors.push(at("not an object"));
            continue;
        }
        let Some(group) = str_member(item, "group").filter(|s| !s.is_empty()) else {
            errors.push(at("missing or empty string `group`"));
            continue;
        };
        let Some(name) = str_member(item, "name").filter(|s| !s.is_empty()) else {
            errors.push(at("missing or empty string `name`"));
            continue;
        };
        let at = |msg: &str| format!("{label}: {group}/{name}: {msg}");
        let (Some(median_ns), Some(min_ns)) = (
            item.get("median_ns").and_then(Json::as_u64),
            item.get("min_ns").and_then(Json::as_u64),
        ) else {
            errors.push(at("missing unsigned `median_ns`/`min_ns`"));
            continue;
        };
        if median_ns == 0 || min_ns == 0 {
            errors.push(at("zero timing"));
            continue;
        }
        if min_ns > median_ns {
            errors.push(at("min_ns exceeds median_ns"));
            continue;
        }
        let rate = match (item.get("rate"), item.get("rate_unit")) {
            (None, None) => None,
            (Some(rate), Some(Json::Str(unit))) => {
                let Some(rate) = rate.as_f64().filter(|r| r.is_finite() && *r > 0.0) else {
                    errors.push(at("`rate` must be a positive finite number"));
                    continue;
                };
                if unit != "bytes_per_s" && unit != "elements_per_s" {
                    errors.push(at(&format!("unknown rate_unit `{unit}`")));
                    continue;
                }
                Some((rate, unit.clone()))
            }
            _ => {
                errors.push(at("`rate` and `rate_unit` must appear together"));
                continue;
            }
        };
        let entry = Entry {
            group,
            name,
            median_ns,
            min_ns,
            rate,
        };
        if entries.iter().any(|e| e.key() == entry.key()) {
            errors.push(format!("{label}: duplicate entry {}", entry.key()));
            continue;
        }
        entries.push(entry);
    }
    if errors.is_empty() {
        Ok(entries)
    } else {
        Err(errors)
    }
}

/// The benchmark group holding the interleave-vs-std twin rows, written
/// by `cargo bench --bench interleave`.
const PARITY_GROUP: &str = "interleave_passthrough";

/// `(interleave row, std twin)` pairs the parity guard checks.
const PARITY_PAIRS: [(&str, &str); 3] = [
    ("imutex_lock_unlock", "std_mutex_lock_unlock"),
    ("iatomic_fetch_add", "std_atomic_fetch_add"),
    ("ichannel_send_recv", "std_channel_send_recv"),
];

/// Slack allowed on the passthrough promise: the interleave wrapper's
/// median may be at most this multiple of its std twin's.
const PARITY_FACTOR: f64 = 1.5;

/// Enforce the `interleave` passthrough promise: the serve daemon runs
/// its concurrency core on `interleave`'s checkable wrappers, which claim
/// to be zero-cost outside a model execution. The results file must
/// carry the twin rows, and each wrapper median must stay within
/// [`PARITY_FACTOR`]× of its `std::sync` twin.
fn parity_violations(entries: &[Entry]) -> Vec<String> {
    let find = |name: &str| {
        entries
            .iter()
            .find(|e| e.group == PARITY_GROUP && e.name == name)
    };
    let mut violations = Vec::new();
    for (ours, std_twin) in PARITY_PAIRS {
        match (find(ours), find(std_twin)) {
            (Some(i), Some(s)) => {
                let ratio = i.median_ns as f64 / s.median_ns as f64;
                if ratio > PARITY_FACTOR {
                    violations.push(format!(
                        "{PARITY_GROUP}/{ours}: {ratio:.2}x slower than {std_twin} \
                         (limit {PARITY_FACTOR}x) — passthrough is no longer zero-cost"
                    ));
                }
            }
            (i, _) => {
                let missing = if i.is_none() { ours } else { std_twin };
                violations.push(format!(
                    "{PARITY_GROUP}/{missing}: missing — parity guard needs both twins \
                     (re-run `cargo bench --bench interleave`)"
                ));
            }
        }
    }
    violations
}

/// A regression verdict for one entry present in both files.
#[derive(Debug, PartialEq)]
struct Delta {
    key: String,
    /// Signed throughput change in percent (positive = faster). For
    /// rate-less entries, derived from median time instead.
    change_pct: f64,
    regressed: bool,
}

/// Compare `current` against `baseline` entry-for-entry. Units must agree;
/// a unit mismatch is treated as a regression (the benchmark changed
/// meaning under the same name).
fn compare(current: &[Entry], baseline: &[Entry], max_regression_pct: f64) -> Vec<Delta> {
    let mut deltas = Vec::new();
    for base in baseline {
        let Some(cur) = current.iter().find(|e| e.key() == base.key()) else {
            continue;
        };
        let (change_pct, comparable) = match (&cur.rate, &base.rate) {
            (Some((c, cu)), Some((b, bu))) if cu == bu => ((c / b - 1.0) * 100.0, true),
            (None, None) => {
                // No throughput: lower median is better.
                let c = cur.median_ns as f64;
                let b = base.median_ns as f64;
                ((b / c - 1.0) * 100.0, true)
            }
            _ => (f64::NEG_INFINITY, false),
        };
        deltas.push(Delta {
            key: base.key(),
            change_pct,
            regressed: !comparable || change_pct < -max_regression_pct,
        });
    }
    deltas
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut results_path = None;
    let mut baseline_path = None;
    let mut max_regression_pct = DEFAULT_MAX_REGRESSION_PCT;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--against" => {
                let v = it.next().ok_or("--against requires a value")?;
                baseline_path = Some(v.clone());
            }
            "--max-regression" => {
                let v = it.next().ok_or("--max-regression requires a value")?;
                max_regression_pct = v
                    .parse::<f64>()
                    .ok()
                    .filter(|p| p.is_finite() && *p >= 0.0)
                    .ok_or_else(|| format!("bad --max-regression `{v}`"))?;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            path if results_path.is_none() => results_path = Some(path.to_string()),
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }
    let results_path = results_path.unwrap_or_else(|| "BENCH.json".to_string());
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let current = match validate(&read(&results_path)?, &results_path) {
        Ok(entries) => entries,
        Err(errors) => {
            for e in &errors {
                eprintln!("bench_check: {e}");
            }
            return Ok(ExitCode::FAILURE);
        }
    };
    println!(
        "{results_path}: {} entries across {} groups, schema OK",
        current.len(),
        {
            let mut groups: Vec<&str> = current.iter().map(|e| e.group.as_str()).collect();
            groups.sort_unstable();
            groups.dedup();
            groups.len()
        }
    );
    let parity = parity_violations(&current);
    if !parity.is_empty() {
        for v in &parity {
            eprintln!("bench_check: {v}");
        }
        return Ok(ExitCode::FAILURE);
    }
    println!(
        "interleave passthrough parity OK ({} twin pairs within {PARITY_FACTOR}x)",
        PARITY_PAIRS.len()
    );
    let Some(baseline_path) = baseline_path else {
        return Ok(ExitCode::SUCCESS);
    };
    let baseline = match validate(&read(&baseline_path)?, &baseline_path) {
        Ok(entries) => entries,
        Err(errors) => {
            for e in &errors {
                eprintln!("bench_check: {e}");
            }
            return Ok(ExitCode::FAILURE);
        }
    };
    let deltas = compare(&current, &baseline, max_regression_pct);
    let compared: Vec<&Delta> = deltas.iter().collect();
    let missing = baseline.len() - compared.len();
    if missing > 0 {
        println!(
            "{missing} baseline entr{} not in {results_path} (skipped)",
            if missing == 1 { "y" } else { "ies" }
        );
    }
    let mut failed = false;
    for d in &deltas {
        if d.regressed {
            failed = true;
            eprintln!(
                "bench_check: REGRESSION {}: {:+.1}% (threshold -{:.0}%)",
                d.key, d.change_pct, max_regression_pct
            );
        }
    }
    if failed {
        return Ok(ExitCode::FAILURE);
    }
    let worst = deltas
        .iter()
        .min_by(|a, b| a.change_pct.total_cmp(&b.change_pct));
    match worst {
        Some(w) => println!(
            "{} entries compared against {baseline_path}, none beyond -{:.0}% \
             (worst: {} at {:+.1}%)",
            deltas.len(),
            max_regression_pct,
            w.key,
            w.change_pct
        ),
        None => println!("no overlapping entries with {baseline_path}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("bench_check: {e}");
            eprintln!("usage: bench_check [RESULTS] [--against BASELINE] [--max-regression PCT]");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(group: &str, name: &str, median: u64, rate: Option<(f64, &str)>) -> String {
        let rate = match rate {
            Some((r, u)) => format!(r#", "rate": {r}, "rate_unit": "{u}""#),
            None => String::new(),
        };
        format!(
            r#"{{"group": "{group}", "name": "{name}", "median_ns": {median}, "min_ns": {median}{rate}}}"#
        )
    }

    fn doc(entries: &[String]) -> String {
        format!("[{}]", entries.join(","))
    }

    #[test]
    fn valid_document_parses() {
        let text = doc(&[
            entry("g", "a", 100, Some((5e6, "bytes_per_s"))),
            entry("g", "b", 100, None),
        ]);
        let entries = validate(&text, "t").unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rate, Some((5e6, "bytes_per_s".to_string())));
        assert_eq!(entries[1].rate, None);
    }

    #[test]
    fn schema_violations_are_each_reported() {
        let text = doc(&[
            entry("g", "dup", 100, None),
            entry("g", "dup", 100, None),
            entry("", "noname", 100, None),
            entry("g", "zero", 0, None),
            entry("g", "badunit", 100, Some((1.0, "furlongs_per_s"))),
            r#"{"group": "g", "name": "halfrate", "median_ns": 1, "min_ns": 1, "rate": 5.0}"#
                .to_string(),
            r#"{"group": "g", "name": "inverted", "median_ns": 5, "min_ns": 9}"#.to_string(),
        ]);
        let errors = validate(&text, "t").unwrap_err();
        assert_eq!(errors.len(), 6, "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("duplicate entry g/dup")));
        assert!(errors.iter().any(|e| e.contains("zero timing")));
        assert!(errors.iter().any(|e| e.contains("furlongs_per_s")));
        assert!(errors.iter().any(|e| e.contains("appear together")));
        assert!(errors.iter().any(|e| e.contains("min_ns exceeds")));
    }

    #[test]
    fn regressions_flagged_beyond_threshold() {
        let base = validate(
            &doc(&[
                entry("g", "rate", 100, Some((1000.0, "elements_per_s"))),
                entry("g", "time", 1000, None),
                entry("g", "gone", 100, None),
            ]),
            "base",
        )
        .unwrap();
        // rate dropped 30% (fail), time got 10% slower (pass at 20%).
        let cur = validate(
            &doc(&[
                entry("g", "rate", 100, Some((700.0, "elements_per_s"))),
                entry("g", "time", 1111, None),
                entry("g", "new", 100, None),
            ]),
            "cur",
        )
        .unwrap();
        let deltas = compare(&cur, &base, 20.0);
        assert_eq!(deltas.len(), 2, "entries missing on either side skip");
        let rate = deltas.iter().find(|d| d.key == "g/rate").unwrap();
        assert!(rate.regressed && rate.change_pct < -29.0);
        let time = deltas.iter().find(|d| d.key == "g/time").unwrap();
        assert!(!time.regressed, "{time:?}");
        // Tighter threshold flags the slowdown too.
        assert!(compare(&cur, &base, 5.0)
            .iter()
            .all(|d| d.regressed || d.key != "g/time"));
    }

    fn parity_doc(ours_median: u64, std_median: u64) -> Vec<String> {
        let mut rows = Vec::new();
        for (ours, std_twin) in PARITY_PAIRS {
            rows.push(entry(PARITY_GROUP, ours, ours_median, None));
            rows.push(entry(PARITY_GROUP, std_twin, std_median, None));
        }
        rows
    }

    #[test]
    fn parity_within_factor_passes() {
        let entries = validate(&doc(&parity_doc(140, 100)), "t").unwrap();
        assert_eq!(parity_violations(&entries), Vec::<String>::new());
    }

    #[test]
    fn parity_breach_and_missing_twin_flagged() {
        // 2x the std twin: every pair breaches the 1.5x passthrough limit.
        let entries = validate(&doc(&parity_doc(200, 100)), "t").unwrap();
        let violations = parity_violations(&entries);
        assert_eq!(violations.len(), PARITY_PAIRS.len(), "{violations:?}");
        assert!(violations[0].contains("no longer zero-cost"));

        // Dropping the std twins breaks the guard too — it must not pass
        // vacuously when the bench stops emitting rows.
        let ours_only: Vec<String> = PARITY_PAIRS
            .iter()
            .map(|(ours, _)| entry(PARITY_GROUP, ours, 100, None))
            .collect();
        let entries = validate(&doc(&ours_only), "t").unwrap();
        let violations = parity_violations(&entries);
        assert_eq!(violations.len(), PARITY_PAIRS.len());
        assert!(violations.iter().all(|v| v.contains("missing")));
    }

    #[test]
    fn unit_mismatch_is_a_regression() {
        let base = validate(
            &doc(&[entry("g", "a", 100, Some((1000.0, "elements_per_s")))]),
            "base",
        )
        .unwrap();
        let cur = validate(
            &doc(&[entry("g", "a", 100, Some((1000.0, "bytes_per_s")))]),
            "cur",
        )
        .unwrap();
        assert!(compare(&cur, &base, 20.0)[0].regressed);
    }
}
