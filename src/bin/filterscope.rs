//! The `filterscope` command-line tool.
//!
//! ```text
//! filterscope generate --scale 65536 --out ./logs     write per-day log files
//! filterscope analyze LOG...                          full report from log files
//! filterscope audit LOG... [--cpl OUT]                recover the policy (§5.4)
//! filterscope policy [--out FILE]                     dump the standard policy as CPL
//! filterscope report [--scale N]                      synthesize + analyze in one go
//! ```

use filterscope::analysis::comparison::compare;
use filterscope::analysis::filter_inference::FilterInference;
use filterscope::analysis::weather::WeatherReport;
use filterscope::logformat::{LogWriter, SchemaReader};
use filterscope::prelude::*;
use filterscope::proxy::{cpl, PolicyData};
use std::fs::File;
use std::io::{BufReader, BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  filterscope generate [--scale N] [--out DIR]\n  \
         filterscope analyze LOG... [--min-support N] [--geo FILE] [--categories FILE] [--json OUT]\n  \
         filterscope audit LOG... [--min-support N] [--cpl OUT]\n  \
         filterscope policy [--out FILE]\n  \
         filterscope report [--scale N] [--json OUT]\n  \
         filterscope weather LOG... [--min-support N]\n  \
         filterscope compare --a LOG --b LOG [--min-support N]"
    );
    ExitCode::from(2)
}

/// Minimal flag parsing: returns (positional args, flag lookup).
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: impl Iterator<Item = String>) -> Option<Args> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.peekable();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = it.next()?;
                flags.push((name.to_string(), value));
            } else {
                positional.push(arg);
            }
        }
        Some(Args { positional, flags })
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn flag_u64(&self, name: &str, default: u64) -> Option<u64> {
        match self.flag(name) {
            None => Some(default),
            Some(v) => v.parse().ok(),
        }
    }
}

fn cmd_generate(args: &Args) -> ExitCode {
    let Some(scale) = args.flag_u64("scale", 65_536) else {
        return usage();
    };
    let out_dir = PathBuf::from(args.flag("out").unwrap_or("./logs"));
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let Ok(config) = SynthConfig::new(scale) else {
        return usage();
    };
    let corpus = Corpus::new(config);
    eprintln!(
        "writing {} requests across {} day files to {}",
        corpus.total_volume(),
        corpus.config().period.days().len(),
        out_dir.display()
    );
    let results = corpus.par_map_days(|day, records| {
        let path = out_dir.join(format!("sg_access_{}.log", day.date));
        let file = File::create(&path).expect("create day file");
        let mut writer = LogWriter::new(BufWriter::new(file));
        for rec in records {
            writer.write_record(&rec).expect("write record");
        }
        let n = writer.records_written();
        writer.into_inner().expect("flush");
        (path, n)
    });
    for (path, n) in results {
        println!("{}  {n} records", path.display());
    }
    ExitCode::SUCCESS
}

fn ingest_files<F: FnMut(&LogRecord)>(paths: &[String], mut visit: F) -> Result<u64, ExitCode> {
    if paths.is_empty() {
        return Err(usage());
    }
    let mut malformed = 0u64;
    for p in paths {
        let file = File::open(Path::new(p)).map_err(|e| {
            eprintln!("cannot open {p}: {e}");
            ExitCode::FAILURE
        })?;
        let mut reader = SchemaReader::new(BufReader::new(file));
        loop {
            match reader.next_record() {
                Ok(Some(rec)) => visit(&rec),
                Ok(None) => break,
                Err(_) => malformed += 1,
            }
        }
    }
    Ok(malformed)
}

/// Build the analysis context, honoring `--geo` / `--categories` registry
/// files when given.
fn context_from_flags(args: &Args) -> Result<AnalysisContext, ExitCode> {
    let mut ctx = AnalysisContext::standard(None);
    if let Some(path) = args.flag("geo") {
        let text = std::fs::read_to_string(path).map_err(|e| {
            eprintln!("cannot read {path}: {e}");
            ExitCode::FAILURE
        })?;
        ctx.geo = filterscope::geoip::registry::load_db(&text).map_err(|e| {
            eprintln!("bad geo registry {path}: {e}");
            ExitCode::FAILURE
        })?;
    }
    if let Some(path) = args.flag("categories") {
        let text = std::fs::read_to_string(path).map_err(|e| {
            eprintln!("cannot read {path}: {e}");
            ExitCode::FAILURE
        })?;
        ctx.categories = filterscope::categorizer::registry::load_db(&text).map_err(|e| {
            eprintln!("bad category registry {path}: {e}");
            ExitCode::FAILURE
        })?;
    }
    Ok(ctx)
}

fn cmd_analyze(args: &Args) -> ExitCode {
    let Some(min_support) = args.flag_u64("min-support", 3) else {
        return usage();
    };
    let ctx = match context_from_flags(args) {
        Ok(c) => c,
        Err(code) => return code,
    };
    let mut suite = AnalysisSuite::new(min_support);
    let malformed = match ingest_files(&args.positional, |r| suite.ingest(&ctx, r)) {
        Ok(m) => m,
        Err(code) => return code,
    };
    eprintln!(
        "analyzed {} records ({malformed} malformed lines skipped)",
        suite.datasets.full
    );
    if let Some(path) = args.flag("json") {
        if let Err(e) = std::fs::write(path, suite.summary().to_json()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("summary written to {path}");
    }
    println!("{}", suite.render_all(&ctx));
    ExitCode::SUCCESS
}

fn cmd_audit(args: &Args) -> ExitCode {
    let Some(min_support) = args.flag_u64("min-support", 3) else {
        return usage();
    };
    let mut inference = FilterInference::new(&[]);
    let malformed = match ingest_files(&args.positional, |r| inference.ingest(r)) {
        Ok(m) => m,
        Err(code) => return code,
    };
    eprintln!("audited logs ({malformed} malformed lines skipped)");
    let keywords = inference.recover_keywords(min_support, 3);
    println!("recovered keywords: {keywords:?}");
    println!("recovered domains:");
    for (domain, ev) in inference.recover_domains(min_support) {
        println!("  {domain}  ({} censored requests)", ev.censored);
    }
    if let Some(out) = args.flag("cpl") {
        let policy = inference.export_policy(min_support, 3);
        if let Err(e) = std::fs::write(out, cpl::to_cpl(&policy)) {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("recovered policy written to {out}");
    }
    ExitCode::SUCCESS
}

fn cmd_policy(args: &Args) -> ExitCode {
    let text = cpl::to_cpl(&PolicyData::standard());
    match args.flag("out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("standard policy written to {path}");
        }
        None => {
            let mut stdout = std::io::stdout().lock();
            let _ = stdout.write_all(text.as_bytes());
        }
    }
    ExitCode::SUCCESS
}

fn cmd_report(args: &Args) -> ExitCode {
    let Some(scale) = args.flag_u64("scale", 8192) else {
        return usage();
    };
    let Ok(config) = SynthConfig::new(scale) else {
        return usage();
    };
    let corpus = Corpus::new(config);
    let ctx = AnalysisContext::standard(Some(corpus.relay_index()));
    let min_support = (corpus.total_volume() / 100_000).clamp(3, 500);
    let shards = corpus.par_map_days(|_, records| {
        let mut suite = AnalysisSuite::new(min_support);
        for r in records {
            suite.ingest(&ctx, &r);
        }
        suite
    });
    let mut suite = AnalysisSuite::new(min_support);
    for shard in shards {
        suite.merge(shard);
    }
    if let Some(path) = args.flag("json") {
        if let Err(e) = std::fs::write(path, suite.summary().to_json()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("summary written to {path}");
    }
    println!("{}", suite.render_all(&ctx));
    ExitCode::SUCCESS
}

fn cmd_weather(args: &Args) -> ExitCode {
    let Some(min_support) = args.flag_u64("min-support", 3) else {
        return usage();
    };
    let mut weather = WeatherReport::new(min_support, 3);
    let malformed = match ingest_files(&args.positional, |r| weather.ingest(r)) {
        Ok(m) => m,
        Err(code) => return code,
    };
    eprintln!("({malformed} malformed lines skipped)");
    println!("{}", weather.render());
    ExitCode::SUCCESS
}

fn cmd_compare(args: &Args) -> ExitCode {
    let Some(min_support) = args.flag_u64("min-support", 3) else {
        return usage();
    };
    let (Some(path_a), Some(path_b)) = (args.flag("a"), args.flag("b")) else {
        return usage();
    };
    let ctx = AnalysisContext::standard(None);
    let load = |path: &str| -> Result<AnalysisSuite, ExitCode> {
        let mut suite = AnalysisSuite::new(min_support);
        ingest_files(&[path.to_string()], |r| suite.ingest(&ctx, r))?;
        Ok(suite)
    };
    let a = match load(path_a) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let b = match load(path_b) {
        Ok(s) => s,
        Err(code) => return code,
    };
    println!("A = {path_a} ({} records)", a.datasets.full);
    println!("B = {path_b} ({} records)\n", b.datasets.full);
    println!("{}", compare(&a, &b).render());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut raw = std::env::args().skip(1);
    let Some(command) = raw.next() else {
        return usage();
    };
    let Some(args) = Args::parse(raw) else {
        return usage();
    };
    match command.as_str() {
        "generate" => cmd_generate(&args),
        "analyze" => cmd_analyze(&args),
        "audit" => cmd_audit(&args),
        "policy" => cmd_policy(&args),
        "report" => cmd_report(&args),
        "weather" => cmd_weather(&args),
        "compare" => cmd_compare(&args),
        _ => usage(),
    }
}
