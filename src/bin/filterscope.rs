//! The `filterscope` command-line tool.
//!
//! ```text
//! filterscope generate --scale 65536 --out ./logs     write per-day log files
//! filterscope analyze LOG...                          full report from log files
//! filterscope audit LOG... [--cpl OUT] [--lint]       recover the policy (§5.4)
//! filterscope policy [--out FILE]                     dump the standard policy as CPL
//! filterscope compile [POLICY] --out FILE [--farm]    build a binary policy artifact
//! filterscope lint [POLICY] [--against POLICY]        static policy analysis
//! filterscope report [--scale N]                      synthesize + analyze in one go
//! filterscope replay [--scale N]                      time every pipeline stage
//! filterscope analyses                                list the analysis registry
//! filterscope serve --snapshots DIR                   live streaming ingest daemon
//! filterscope stream [--scale N | LOG...]             replay a workload at a daemon
//! filterscope history LOG at|diff|series|ls           time-travel over a snapshot log
//! ```
//!
//! `analyze`, `audit`, `report` and `weather` accept `--analyses a,b,c`
//! (run only those) and `--skip x,y` (run the default set minus those);
//! keys come from `filterscope analyses`.

use filterscope::analysis::comparison::compare;
use filterscope::analysis::pipeline::{ParallelIngest, ShardSink};
use filterscope::analysis::registry::REGISTRY;
use filterscope::analysis::report::Table;
use filterscope::core::progress::fmt_secs;
use filterscope::core::{pool, Json, Progress};
use filterscope::logformat::fields::header_line;
use filterscope::logformat::RecordView;
use filterscope::logformat::SchemaReader;
use filterscope::policylint::{
    check_equivalence, lint_farm, lint_policy, skew_matrix, verify_artifact, LintReport,
};
use filterscope::prelude::*;
use filterscope::proxy::config::FarmConfig;
use filterscope::proxy::{artifact, cpl, PolicyData, ProfileKind};
use filterscope::snapstore::{
    decode_value, diff, metric_label, read_frames, series, suite_at, Frame, RecoveryReport,
};
use filterscope::stream::{
    install_sigint, stream_corpus, stream_files, ServeConfig, Server, StreamConfig,
};
use filterscope::synth::corpus::DayShard;
use filterscope::synth::{censor_preset, CENSOR_NAMES};
use std::fs::File;
use std::io::{BufReader, BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  filterscope generate [--scale N] [--out DIR] [--censor NAME] [--threads N]\n  \
         filterscope analyze LOG... [--min-support N] [--geo FILE] [--categories FILE] [--json OUT] [--threads N] [--analyses KEYS] [--skip KEYS]\n  \
         filterscope audit LOG... [--min-support N] [--cpl OUT] [--lint] [--threads N] [--analyses KEYS] [--skip KEYS]\n  \
         filterscope policy [--out FILE]\n  \
         filterscope compile [POLICY] --out FILE [--farm] [--seed N]\n  \
         filterscope lint [POLICY] [--against POLICY] [--json] [--deny warnings]\n  \
         filterscope report [--scale N] [--json OUT] [--threads N] [--analyses KEYS] [--skip KEYS]\n  \
         filterscope replay [--scale N] [--out DIR] [--threads N] [--bench-json FILE]\n  \
         filterscope weather LOG... [--min-support N] [--threads N] [--analyses KEYS] [--skip KEYS]\n  \
         filterscope compare --a LOG --b LOG [--min-support N]\n  \
         filterscope analyses\n  \
         filterscope serve --snapshots DIR [--listen ADDR] [--metrics ADDR] [--every-ms N] [--min-support N] [--queue N] [--policy-artifact FILE] [--censor NAME] [--snap-log FILE] [--snap-log-max-bytes N] [--analyses KEYS] [--skip KEYS]\n  \
         filterscope stream [LOG... | --scale N] [--censor NAME] [--connect ADDR] [--connections N] [--batch N] [--compress X]\n  \
         filterscope history LOG at --time T [--analysis KEY]\n  \
         filterscope history LOG diff --from T --to T\n  \
         filterscope history LOG series --analysis KEY [--step SECS] [--json]\n  \
         filterscope history LOG ls\n  \
         filterscope srclint [ROOT]\n\n\
         Flags accept `--flag value` or `--flag=value`; repeating a flag\n\
         is an error.\n\
         --censor selects the simulated censorship mechanism: blue-coat\n\
         (default), dns-poison, tcp-rst, blockpage, or the presets syria,\n\
         pakistan, turkmenistan; `serve --censor` declares the mechanism\n\
         the daemon expects to observe (reported on /metrics).\n\
         POLICY is `standard` or a CPL file; `lint` exits non-zero on error\n\
         findings (and on warnings too under `--deny warnings`).\n\
         `compile` writes a witness-checked binary artifact that\n\
         `serve --policy-artifact` loads zero-parse and hot-reloads on change.\n\
         --analyses/--skip take comma-separated keys from `filterscope analyses`.\n\
         `serve --snap-log` appends every snapshot cycle's suite delta to a\n\
         crash-safe frame log that `history` replays: `at` reconstructs the\n\
         full report as of any instant, `diff` compares two instants,\n\
         `series` windows one analysis over time, `ls` inventories frames.\n\
         T is epoch seconds, `YYYY-MM-DD`, or `YYYY-MM-DD HH:MM:SS`.\n\
         `replay` times every stage of the record pipeline (generate,\n\
         classify, write, parse, ingest, merge) and extrapolates to the\n\
         full study corpus; `--bench-json` merges the rates into a bench\n\
         results file.\n\
         --threads must be >= 1 and defaults to the available parallelism;\n\
         results are byte-identical for every thread count."
    );
    ExitCode::from(2)
}

/// Minimal flag parsing: returns (positional args, flag lookup).
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    /// Parse `raw` against one subcommand's flag vocabulary. `--flag value`
    /// and `--flag=value` are equivalent; flags outside `allowed`/`boolean`
    /// and value flags without a value are reported as errors rather than
    /// silently ignored. Flags in `boolean` take no value (`lint --json`).
    fn parse(
        raw: impl Iterator<Item = String>,
        allowed: &[&str],
        boolean: &[&str],
    ) -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw;
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let (name, value) = match name.split_once('=') {
                    Some((n, _)) if boolean.contains(&n) => {
                        return Err(format!("flag --{n} takes no value"));
                    }
                    Some((n, v)) => (n.to_string(), v.to_string()),
                    None if boolean.contains(&name) => (name.to_string(), "true".to_string()),
                    // A bare flag's value must not itself look like a flag:
                    // `analyze --json --threads 4` is a mistake, not a request
                    // to write the summary to a file named "--threads".
                    None => match it.next().filter(|v| !v.starts_with("--")) {
                        Some(v) => (name.to_string(), v),
                        None => return Err(format!("flag --{name} requires a value")),
                    },
                };
                if !allowed.contains(&name.as_str()) && !boolean.contains(&name.as_str()) {
                    return Err(format!("unknown flag --{name}"));
                }
                // A repeated flag is ambiguous (first-wins would silently
                // ignore the later value), so it is an error instead.
                if flags.iter().any(|(n, _)| *n == name) {
                    return Err(format!("flag --{name} given more than once"));
                }
                flags.push((name, value));
            } else {
                positional.push(arg);
            }
        }
        Ok(Args { positional, flags })
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Was a boolean flag given?
    fn has_flag(&self, name: &str) -> bool {
        self.flag(name).is_some()
    }

    fn flag_u64(&self, name: &str, default: u64) -> Option<u64> {
        match self.flag(name) {
            None => Some(default),
            Some(v) => v.parse().ok(),
        }
    }

    /// `--threads N` (>= 1); defaults to the available parallelism. Zero,
    /// negative, and non-numeric values are a named usage error — silently
    /// mapping `--threads 0` to a default would hide the typo.
    fn threads(&self) -> Result<usize, ExitCode> {
        match self.flag("threads") {
            None => Ok(pool::available_threads()),
            Some(v) => match v.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(n),
                _ => {
                    eprintln!("filterscope: --threads must be an integer >= 1, got `{v}`");
                    Err(usage())
                }
            },
        }
    }
}

/// Resolve `--censor NAME` to a profile ([`ProfileKind::BlueCoat`] when
/// absent). Unknown names list the full vocabulary rather than guessing.
fn censor_from_flag(args: &Args) -> Result<ProfileKind, ExitCode> {
    match args.flag("censor") {
        None => Ok(ProfileKind::BlueCoat),
        Some(name) => match censor_preset(name) {
            Some(kind) => Ok(kind),
            None => {
                eprintln!(
                    "filterscope: unknown censor `{name}` (expected one of: {})",
                    CENSOR_NAMES.join(", ")
                );
                Err(usage())
            }
        },
    }
}

/// Part-file path for one `(day × shard)` generation unit.
fn part_path(out_dir: &Path, unit: &DayShard) -> PathBuf {
    out_dir.join(format!(
        "sg_access_{}.log.part{:04}",
        unit.day.date, unit.shard
    ))
}

/// Write one shard's records to its part file, returning the record count.
/// One line buffer serves the whole shard ([`LogRecord::write_csv_into`]).
fn write_part(path: &Path, records: &mut dyn Iterator<Item = LogRecord>) -> std::io::Result<u64> {
    let mut writer = BufWriter::new(File::create(path)?);
    let mut written = 0u64;
    let mut line = String::new();
    for rec in records {
        line.clear();
        rec.write_csv_into(&mut line);
        line.push('\n');
        writer.write_all(line.as_bytes())?;
        written += 1;
    }
    writer.flush()?;
    Ok(written)
}

/// Concatenate a day's part files (in shard order) behind the ELFF header,
/// removing the parts. A day with zero records stays an empty file, exactly
/// as the sequential `LogWriter` path produced.
fn assemble_day(day_path: &Path, out_dir: &Path, units: &[DayShard]) -> std::io::Result<()> {
    let mut out = BufWriter::new(File::create(day_path)?);
    if units.iter().any(|u| !u.is_empty()) {
        writeln!(out, "#Software: SGOS 4.1.4")?;
        writeln!(out, "{}", header_line())?;
    }
    for unit in units {
        let part = part_path(out_dir, unit);
        let mut reader = File::open(&part)?;
        std::io::copy(&mut reader, &mut out)?;
        drop(reader);
        std::fs::remove_file(&part)?;
    }
    out.flush()?;
    Ok(())
}

fn cmd_generate(args: &Args) -> ExitCode {
    let Some(scale) = args.flag_u64("scale", 65_536) else {
        return usage();
    };
    let threads = match args.threads() {
        Ok(n) => n,
        Err(code) => return code,
    };
    let out_dir = PathBuf::from(args.flag("out").unwrap_or("./logs"));
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let Ok(config) = SynthConfig::new(scale) else {
        return usage();
    };
    let censor = match censor_from_flag(args) {
        Ok(kind) => kind,
        Err(code) => return code,
    };
    let corpus = Corpus::new(config.with_censor(censor));
    eprintln!(
        "writing {} requests ({} censor) across {} day files to {} on {threads} thread{}",
        corpus.total_volume(),
        censor.name(),
        corpus.config().period.days().len(),
        out_dir.display(),
        if threads == 1 { "" } else { "s" }
    );
    let progress = Progress::start();
    let days = match write_corpus(&corpus, &out_dir, threads, true) {
        Ok(days) => days,
        Err(failures) => {
            for f in &failures {
                eprintln!("generate failed: {f}");
            }
            return ExitCode::FAILURE;
        }
    };
    let total: u64 = days.iter().map(|(_, n)| n).sum();
    eprintln!("{}", progress.summary("generated", total));
    ExitCode::SUCCESS
}

/// Synthesize the whole corpus to per-day log files under `out_dir`: every
/// (day × shard) unit writes its slice into a part file, parts concatenate
/// in plan order behind the ELFF header. Returns `(day path, records)` in
/// period order, or the per-unit failure messages (parts are cleaned up).
/// `announce` prints each finished day file to stdout as `generate` does.
fn write_corpus(
    corpus: &Corpus,
    out_dir: &Path,
    threads: usize,
    announce: bool,
) -> Result<Vec<(PathBuf, u64)>, Vec<String>> {
    // I/O failures surface as per-unit errors instead of a worker panic.
    let plan = corpus.shard_plan(0);
    let part_results = corpus.par_map_day_shards(threads, 0, |unit, records| {
        let path = part_path(out_dir, &unit);
        write_part(&path, records).map_err(|e| format!("{}: {e}", path.display()))
    });
    let mut failures = Vec::new();
    let mut counts = Vec::with_capacity(plan.len());
    for (unit, result) in plan.iter().zip(part_results) {
        match result {
            Ok(n) => counts.push(n),
            Err(e) => {
                counts.push(0);
                failures.push(format!("day {}: {e}", unit.day.date));
            }
        }
    }
    if !failures.is_empty() {
        for unit in &plan {
            let _ = std::fs::remove_file(part_path(out_dir, unit));
        }
        return Err(failures);
    }
    let mut days = Vec::new();
    let mut i = 0;
    while i < plan.len() {
        let day = plan[i].day;
        let day_units = &plan[i..i + plan[i].shards];
        let day_records: u64 = counts[i..i + plan[i].shards].iter().sum();
        let day_path = out_dir.join(format!("sg_access_{}.log", day.date));
        if let Err(e) = assemble_day(&day_path, out_dir, day_units) {
            return Err(vec![format!("day {}: {e}", day.date)]);
        }
        if announce {
            println!("{}  {day_records} records", day_path.display());
        }
        days.push((day_path, day_records));
        i += plan[i].shards;
    }
    Ok(days)
}

fn ingest_files<F: FnMut(&LogRecord)>(paths: &[String], mut visit: F) -> Result<u64, ExitCode> {
    if paths.is_empty() {
        return Err(usage());
    }
    let mut malformed = 0u64;
    for p in paths {
        let file = File::open(Path::new(p)).map_err(|e| {
            eprintln!("cannot open {p}: {e}");
            ExitCode::FAILURE
        })?;
        let mut reader = SchemaReader::new(BufReader::new(file));
        loop {
            match reader.next_record() {
                Ok(Some(rec)) => visit(&rec),
                Ok(None) => break,
                Err(_) => malformed += 1,
            }
        }
    }
    Ok(malformed)
}

/// Build the analysis context, honoring `--geo` / `--categories` registry
/// files when given.
fn context_from_flags(args: &Args) -> Result<AnalysisContext, ExitCode> {
    let mut ctx = AnalysisContext::standard(None);
    if let Some(path) = args.flag("geo") {
        let text = std::fs::read_to_string(path).map_err(|e| {
            eprintln!("cannot read {path}: {e}");
            ExitCode::FAILURE
        })?;
        ctx.geo = filterscope::geoip::registry::load_db(&text).map_err(|e| {
            eprintln!("bad geo registry {path}: {e}");
            ExitCode::FAILURE
        })?;
    }
    if let Some(path) = args.flag("categories") {
        let text = std::fs::read_to_string(path).map_err(|e| {
            eprintln!("cannot read {path}: {e}");
            ExitCode::FAILURE
        })?;
        ctx.categories = filterscope::categorizer::registry::load_db(&text).map_err(|e| {
            eprintln!("bad category registry {path}: {e}");
            ExitCode::FAILURE
        })?;
    }
    Ok(ctx)
}

/// The sharded ingest driver: `--threads` workers, periodic ETA lines under
/// `eta_label`, and the shard size overridable through
/// `FILTERSCOPE_SHARD_BYTES` (tests force tiny shards to exercise boundary
/// handling; output is identical for any value).
fn ingest_driver(threads: usize, eta_label: &str) -> ParallelIngest {
    let mut ingest = ParallelIngest::new(threads).with_eta(eta_label);
    if let Some(bytes) = std::env::var("FILTERSCOPE_SHARD_BYTES")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        ingest = ingest.with_shard_bytes(bytes);
    }
    ingest
}

/// The positional log paths, or usage() if none were given.
fn log_paths(args: &Args) -> Result<Vec<PathBuf>, ExitCode> {
    if args.positional.is_empty() {
        return Err(usage());
    }
    Ok(args.positional.iter().map(PathBuf::from).collect())
}

/// The `--analyses`/`--skip` selection, or `default` when neither flag was
/// given (keeps fixed-product commands like `audit` on their minimal set).
fn selection_from_flags(args: &Args, default: Selection) -> Result<Selection, ExitCode> {
    if args.flag("analyses").is_none() && args.flag("skip").is_none() {
        return Ok(default);
    }
    Selection::from_flags(args.flag("analyses"), args.flag("skip")).map_err(|e| {
        eprintln!("{e}");
        ExitCode::from(2)
    })
}

fn cmd_analyze(args: &Args) -> ExitCode {
    let Some(min_support) = args.flag_u64("min-support", 3) else {
        return usage();
    };
    let threads = match args.threads() {
        Ok(n) => n,
        Err(code) => return code,
    };
    let paths = match log_paths(args) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let ctx = match context_from_flags(args) {
        Ok(c) => c,
        Err(code) => return code,
    };
    let selection = match selection_from_flags(args, Selection::default_suite()) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let ingest = ingest_driver(threads, "analyze");
    let params = SuiteParams::new(min_support);
    let (suite, stats) = match ingest.ingest_selected(&paths, &ctx, &params, &selection) {
        Ok(done) => done,
        Err(e) => {
            eprintln!("analyze failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("{}", stats.render());
    if let Some(path) = args.flag("json") {
        if let Err(e) = std::fs::write(path, suite.summary_json(&ctx)) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("summary written to {path}");
    }
    println!("{}", suite.render_all(&ctx));
    ExitCode::SUCCESS
}

fn cmd_audit(args: &Args) -> ExitCode {
    let Some(min_support) = args.flag_u64("min-support", 3) else {
        return usage();
    };
    let threads = match args.threads() {
        Ok(n) => n,
        Err(code) => return code,
    };
    let paths = match log_paths(args) {
        Ok(p) => p,
        Err(code) => return code,
    };
    // Audit recovers the policy blind (no known keyword list); `inference`
    // is always in the selection, co-selected analyses render after it.
    let mut selection = match selection_from_flags(args, Selection::pinned("inference")) {
        Ok(s) => s,
        Err(code) => return code,
    };
    selection.ensure("inference");
    let ctx = AnalysisContext::standard(None);
    let ingest = ingest_driver(threads, "audit");
    let params = SuiteParams::blind(min_support);
    let (suite, stats) = match ingest.ingest_selected(&paths, &ctx, &params, &selection) {
        Ok(done) => done,
        Err(e) => {
            eprintln!("audit failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("{}", stats.render());
    let inference = suite.inference();
    let keywords = inference.recover_keywords(min_support, 3);
    println!("recovered keywords: {keywords:?}");
    println!("recovered domains:");
    for (domain, ev) in inference.recover_domains(min_support) {
        println!("  {domain}  ({} censored requests)", ev.censored);
    }
    if let Some(out) = args.flag("cpl") {
        let policy = inference.export_policy(min_support, 3);
        if let Err(e) = std::fs::write(out, cpl::to_cpl(&policy)) {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("recovered policy written to {out}");
    }
    // `--lint`: statically audit the recovered policy and check it for
    // behavioural equivalence against the standard one — the inferred-vs-
    // truth loop in a single command.
    let mut lint_failed = false;
    if args.has_flag("lint") {
        let recovered = inference.export_policy(min_support, 3);
        let mut findings = lint_policy(&recovered);
        findings.extend(check_equivalence(
            &recovered,
            &PolicyData::standard(),
            "recovered",
            "standard",
        ));
        let report = LintReport::new("recovered", Some("standard".to_string()), findings, None);
        print!("{}", report.render());
        lint_failed = report.failing(false);
    }
    for analysis in suite.analyses() {
        if analysis.key() != "inference" {
            println!("{}", analysis.render(&ctx));
        }
    }
    if lint_failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_policy(args: &Args) -> ExitCode {
    let text = cpl::to_cpl(&PolicyData::standard());
    match args.flag("out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("standard policy written to {path}");
        }
        None => {
            let mut stdout = std::io::stdout().lock();
            let _ = stdout.write_all(text.as_bytes());
        }
    }
    ExitCode::SUCCESS
}

/// `filterscope compile [POLICY] --out FILE [--farm] [--seed N]`: serialize
/// a policy (and optionally the standard 7-proxy farm) into the binary
/// `FSCP` artifact that `serve --policy-artifact` opens zero-parse.
///
/// Before the artifact is published, the freshly encoded bytes are loaded
/// back and the deserialized engine is proven witness-equivalent to its
/// embedded source policy ([`verify_artifact`]) — a compiler bug can fail
/// this command, but can never ship a lying artifact. The write itself is
/// tmp-then-rename so a hot-reload watcher never observes a torn file.
fn cmd_compile(args: &Args) -> ExitCode {
    if args.positional.len() > 1 {
        return usage();
    }
    let Some(out) = args.flag("out") else {
        eprintln!("filterscope compile: --out FILE is required");
        return usage();
    };
    let Some(seed) = args.flag_u64("seed", 0) else {
        return usage();
    };
    let spec = args
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("standard");
    let (policy, name) = match load_policy(spec) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let farm = args.has_flag("farm").then(FarmConfig::default);
    let bytes = artifact::compile(&policy, seed, farm.as_ref());
    // Self-check: reload the exact bytes about to be published and prove
    // the deserialized engine matches the embedded source decision-for-
    // decision on synthesized witnesses.
    let compiled = match artifact::load(&bytes, None) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("compile self-check failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let findings = verify_artifact(&compiled);
    if !findings.is_empty() {
        eprintln!("compile self-check failed: artifact disagrees with {name}:");
        for f in &findings {
            eprintln!("  {}", f.render_line());
        }
        return ExitCode::FAILURE;
    }
    let tmp = format!("{out}.tmp");
    if let Err(e) = std::fs::write(&tmp, &bytes).and_then(|()| std::fs::rename(&tmp, out)) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "compiled {name} to {out} ({} bytes{})",
        bytes.len(),
        if farm.is_some() {
            ", with the 7-proxy farm"
        } else {
            ""
        }
    );
    ExitCode::SUCCESS
}

/// Resolve a policy spec (`standard` or a CPL file path) to policy data
/// plus its display name.
fn load_policy(spec: &str) -> Result<(PolicyData, String), ExitCode> {
    if spec == "standard" {
        return Ok((PolicyData::standard(), "standard".to_string()));
    }
    let text = std::fs::read_to_string(spec).map_err(|e| {
        eprintln!("cannot read {spec}: {e}");
        ExitCode::FAILURE
    })?;
    let policy = cpl::parse_cpl(&text).map_err(|e| {
        eprintln!("cannot parse {spec}: {e}");
        ExitCode::FAILURE
    })?;
    Ok((policy, spec.to_string()))
}

fn cmd_lint(args: &Args) -> ExitCode {
    if args.positional.len() > 1 {
        return usage();
    }
    match args.flag("deny") {
        None | Some("warnings") => {}
        Some(other) => {
            eprintln!("filterscope lint: --deny accepts only `warnings`, got `{other}`");
            return usage();
        }
    }
    let spec = args
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("standard");
    let (policy, name) = match load_policy(spec) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let mut findings = lint_policy(&policy);
    let farm = FarmConfig::default();
    findings.extend(lint_farm(&farm));
    let against_name = match args.flag("against") {
        Some(spec) => {
            let (other, other_name) = match load_policy(spec) {
                Ok(p) => p,
                Err(code) => return code,
            };
            findings.extend(check_equivalence(&policy, &other, &name, &other_name));
            Some(other_name)
        }
        None => None,
    };
    let report = LintReport::new(&name, against_name, findings, Some(skew_matrix(&farm)));
    if args.has_flag("json") {
        println!("{}", report.to_json().pretty());
    } else {
        print!("{}", report.render());
    }
    if report.failing(args.flag("deny").is_some()) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_report(args: &Args) -> ExitCode {
    let Some(scale) = args.flag_u64("scale", 8192) else {
        return usage();
    };
    let threads = match args.threads() {
        Ok(n) => n,
        Err(code) => return code,
    };
    let Ok(config) = SynthConfig::new(scale) else {
        return usage();
    };
    let corpus = Corpus::new(config);
    let ctx = AnalysisContext::standard(Some(corpus.relay_index()));
    let min_support = (corpus.total_volume() / 100_000).clamp(3, 500);
    let selection = match selection_from_flags(args, Selection::default_suite()) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let params = SuiteParams::new(min_support);
    let progress = Progress::start();
    // (day × shard) units, so a 39×-volume August day no longer pins the
    // run to one thread; shards merge in plan order for determinism.
    let shards = corpus.par_map_day_shards(threads, 0, |_, records| {
        let mut suite = AnalysisSuite::with_selection(&params, &selection);
        for r in records {
            suite.ingest(&ctx, &r.as_view());
        }
        suite
    });
    let mut suite = AnalysisSuite::with_selection(&params, &selection);
    for shard in shards {
        suite.merge(shard);
    }
    eprintln!(
        "{}",
        progress.summary_threads("synthesized and analyzed", corpus.total_volume(), threads)
    );
    if let Some(path) = args.flag("json") {
        if let Err(e) = std::fs::write(path, suite.summary_json(&ctx)) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("summary written to {path}");
    }
    println!("{}", suite.render_all(&ctx));
    ExitCode::SUCCESS
}

/// The paper's full corpus: 751,295,830 requests across ~600 GB of logs.
const FULL_CORPUS_RECORDS: u64 = 751_295_830;

/// One measured replay stage: marginal wall-clock seconds plus the volume
/// it moved (records always, bytes when the stage is byte-oriented).
struct ReplayStage {
    name: &'static str,
    secs: f64,
    records: u64,
    bytes: Option<u64>,
}

impl ReplayStage {
    fn records_per_s(&self) -> f64 {
        self.records as f64 / self.secs.max(1e-9)
    }

    fn row(&self) -> [String; 5] {
        [
            self.name.to_string(),
            format!("{:.2}", self.secs),
            format!("{:.0}", self.records_per_s()),
            match self.bytes {
                Some(b) => format!("{:.1}", b as f64 / self.secs.max(1e-9) / 1e6),
                None => "-".to_string(),
            },
            fmt_secs(self.secs * (FULL_CORPUS_RECORDS as f64 / self.records.max(1) as f64)),
        ]
    }
}

/// `filterscope replay`: run the record pipeline in staged passes — workload
/// generation, batched policy classification, day-file writing, block
/// parsing, analysis ingest, and the serial merge — timing each stage's
/// marginal cost, then extrapolate linearly to the paper's full corpus.
///
/// `--scale N` divides the full 751,295,830-request corpus exactly as
/// `generate`/`report` do, so a replay at any feasible scale measures the
/// same per-record work as the real thing.
fn cmd_replay(args: &Args) -> ExitCode {
    let Some(scale) = args.flag_u64("scale", 2048) else {
        return usage();
    };
    let threads = match args.threads() {
        Ok(n) => n,
        Err(code) => return code,
    };
    let out_dir = PathBuf::from(args.flag("out").unwrap_or("./replay-logs"));
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let Ok(config) = SynthConfig::new(scale) else {
        return usage();
    };
    let corpus = Corpus::new(config);
    let total = corpus.total_volume();
    eprintln!(
        "replaying {total} records (scale {scale}, 1/{scale} of the full corpus) on {threads} thread{}",
        if threads == 1 { "" } else { "s" }
    );

    // Pass 1: workload generation alone (no policy, no I/O).
    let p = Progress::start();
    let generated: u64 = corpus
        .par_map_day_requests(threads, 0, |_, it| it.count() as u64)
        .into_iter()
        .sum();
    let t_generate = p.elapsed_secs();

    // Pass 2: generation + batched policy classification.
    let p = Progress::start();
    let classified: u64 = corpus
        .par_map_day_shards(threads, 0, |_, it| it.count() as u64)
        .into_iter()
        .sum();
    let t_classify_pass = p.elapsed_secs();

    // Pass 3: generation + classification + day-file writing.
    let p = Progress::start();
    let days = match write_corpus(&corpus, &out_dir, threads, false) {
        Ok(days) => days,
        Err(failures) => {
            for f in &failures {
                eprintln!("replay failed: {f}");
            }
            return ExitCode::FAILURE;
        }
    };
    let t_write_pass = p.elapsed_secs();
    let paths: Vec<PathBuf> = days.iter().map(|(p, _)| p.clone()).collect();
    let bytes: u64 = paths
        .iter()
        .map(|p| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
        .sum();

    // Pass 4: block-parse every record back off disk into a no-op sink —
    // the ingest pipeline with the analysis cost subtracted.
    struct NullSink;
    impl ShardSink for NullSink {
        fn ingest(&mut self, _record: &RecordView<'_>) {}
        fn absorb(&mut self, _other: Self) {}
    }
    let p = Progress::start();
    let parse_stats = match ingest_driver(threads, "replay parse").run(&paths, || NullSink) {
        Ok((NullSink, stats)) => stats,
        Err(e) => {
            eprintln!("replay failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let t_parse = p.elapsed_secs();

    // Pass 5: the full analysis ingest (parse + every registered
    // accumulator + the serial plan-order merge).
    let ctx = AnalysisContext::standard(Some(corpus.relay_index()));
    let min_support = (total / 100_000).clamp(3, 500);
    let p = Progress::start();
    let (suite, ingest_stats) =
        match ingest_driver(threads, "replay ingest").ingest_suite(&paths, &ctx, min_support) {
            Ok(done) => done,
            Err(e) => {
                eprintln!("replay failed: {e}");
                return ExitCode::FAILURE;
            }
        };
    let t_ingest_pass = p.elapsed_secs();
    let t_merge = ingest_stats.merge_elapsed.as_secs_f64();
    drop(suite);

    // Record conservation: every pass must see the exact configured volume.
    if generated != total
        || classified != total
        || parse_stats.records != total
        || ingest_stats.records != total
        || parse_stats.malformed != 0
    {
        eprintln!(
            "replay failed: record counts diverged (expected {total}: generated {generated}, \
             classified {classified}, parsed {} with {} malformed, ingested {})",
            parse_stats.records, parse_stats.malformed, ingest_stats.records
        );
        return ExitCode::FAILURE;
    }

    let stages = [
        ReplayStage {
            name: "generate",
            secs: t_generate,
            records: total,
            bytes: None,
        },
        ReplayStage {
            name: "classify",
            secs: (t_classify_pass - t_generate).max(0.0),
            records: total,
            bytes: None,
        },
        ReplayStage {
            name: "write",
            secs: (t_write_pass - t_classify_pass).max(0.0),
            records: total,
            bytes: Some(bytes),
        },
        ReplayStage {
            name: "parse",
            secs: t_parse,
            records: total,
            bytes: Some(bytes),
        },
        ReplayStage {
            name: "ingest",
            secs: (t_ingest_pass - t_merge - t_parse).max(0.0),
            records: total,
            bytes: None,
        },
        ReplayStage {
            name: "merge",
            secs: t_merge,
            records: total,
            bytes: None,
        },
    ];
    let end_to_end = ReplayStage {
        name: "end-to-end",
        secs: t_write_pass + t_ingest_pass,
        records: total,
        bytes: Some(bytes),
    };

    let mut table = Table::new(
        format!("Replay at scale {scale} ({total} records, {bytes} bytes, {threads} threads)"),
        &["Stage", "Seconds", "Records/s", "MB/s", "Full corpus"],
    );
    for stage in &stages {
        table.row(stage.row());
    }
    table.row(end_to_end.row());
    print!("{}", table.render());
    println!(
        "full corpus = {FULL_CORPUS_RECORDS} records (~{:.0} GB at this record size), \
         extrapolated linearly from 1/{scale} scale",
        bytes as f64 * (FULL_CORPUS_RECORDS as f64 / total as f64) / 1e9
    );

    if let Some(path) = args.flag("bench-json") {
        if let Err(e) = merge_replay_bench(path, &stages, &end_to_end) {
            eprintln!("cannot update {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("replay rates merged into {path}");
    }
    ExitCode::SUCCESS
}

/// Merge the replay stage rates into a bench-results JSON file (the format
/// the bench harness writes under `FILTERSCOPE_BENCH_JSON`): existing
/// entries of the `replay` group are replaced, everything else is kept.
fn merge_replay_bench(
    path: &str,
    stages: &[ReplayStage],
    end_to_end: &ReplayStage,
) -> Result<(), String> {
    let mut entries = match std::fs::read_to_string(path) {
        Ok(text) => match Json::parse(&text).map_err(|e| format!("bad JSON: {e}"))? {
            Json::Arr(items) => items,
            _ => return Err("expected a top-level array".to_string()),
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.to_string()),
    };
    entries.retain(|entry| entry.get("group") != Some(&Json::Str("replay".to_string())));
    for stage in stages.iter().chain([end_to_end]) {
        let ns = (stage.secs * 1e9) as u64;
        let mut obj = Json::object();
        obj.push("group", Json::Str("replay".to_string()));
        obj.push("name", Json::Str(stage.name.to_string()));
        obj.push("median_ns", Json::UInt(ns));
        obj.push("min_ns", Json::UInt(ns));
        match stage.bytes {
            Some(b) => {
                obj.push("rate", Json::Float(b as f64 / stage.secs.max(1e-9)));
                obj.push("rate_unit", Json::Str("bytes_per_s".to_string()));
            }
            None => {
                obj.push("rate", Json::Float(stage.records_per_s()));
                obj.push("rate_unit", Json::Str("elements_per_s".to_string()));
            }
        }
        entries.push(obj);
    }
    std::fs::write(path, Json::Arr(entries).pretty()).map_err(|e| e.to_string())
}

fn cmd_weather(args: &Args) -> ExitCode {
    let Some(min_support) = args.flag_u64("min-support", 3) else {
        return usage();
    };
    let threads = match args.threads() {
        Ok(n) => n,
        Err(code) => return code,
    };
    let paths = match log_paths(args) {
        Ok(p) => p,
        Err(code) => return code,
    };
    // Weather is a fixed-product command: its own analysis is always in the
    // selection, co-selected analyses render after the churn table.
    let mut selection = match selection_from_flags(args, Selection::pinned("weather")) {
        Ok(s) => s,
        Err(code) => return code,
    };
    selection.ensure("weather");
    let ctx = AnalysisContext::standard(None);
    let ingest = ingest_driver(threads, "weather");
    let params = SuiteParams::new(min_support);
    let (suite, stats) = match ingest.ingest_selected(&paths, &ctx, &params, &selection) {
        Ok(done) => done,
        Err(e) => {
            eprintln!("weather failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("{}", stats.render());
    println!("{}", suite.weather().render());
    for analysis in suite.analyses() {
        if analysis.key() != "weather" {
            println!("{}", analysis.render(&ctx));
        }
    }
    ExitCode::SUCCESS
}

fn cmd_compare(args: &Args) -> ExitCode {
    let Some(min_support) = args.flag_u64("min-support", 3) else {
        return usage();
    };
    let (Some(path_a), Some(path_b)) = (args.flag("a"), args.flag("b")) else {
        return usage();
    };
    let ctx = AnalysisContext::standard(None);
    let load = |path: &str| -> Result<AnalysisSuite, ExitCode> {
        let mut suite = AnalysisSuite::new(min_support);
        ingest_files(&[path.to_string()], |r| suite.ingest(&ctx, &r.as_view()))?;
        Ok(suite)
    };
    let a = match load(path_a) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let b = match load(path_b) {
        Ok(s) => s,
        Err(code) => return code,
    };
    println!("A = {path_a} ({} records)", a.datasets().full);
    println!("B = {path_b} ({} records)\n", b.datasets().full);
    println!("{}", compare(&a, &b).render());
    ExitCode::SUCCESS
}

fn cmd_serve(args: &Args) -> ExitCode {
    let Some(min_support) = args.flag_u64("min-support", 3) else {
        return usage();
    };
    let Some(every_ms) = args.flag_u64("every-ms", 1000) else {
        return usage();
    };
    let Some(queue) = args.flag_u64("queue", 16) else {
        return usage();
    };
    let Some(snapshot_dir) = args.flag("snapshots") else {
        eprintln!("filterscope serve: --snapshots DIR is required");
        return usage();
    };
    // 64 MiB default keeps an always-on daemon's log bounded; 0 disables
    // compaction (the log then grows without limit).
    let Some(snap_log_max_bytes) = args.flag_u64("snap-log-max-bytes", 64 * 1024 * 1024) else {
        return usage();
    };
    let selection = match selection_from_flags(args, Selection::default_suite()) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let expected_censor = match args.flag("censor") {
        None => None,
        Some(_) => match censor_from_flag(args) {
            Ok(kind) => Some(kind),
            Err(code) => return code,
        },
    };
    let config = ServeConfig {
        listen: args.flag("listen").unwrap_or("127.0.0.1:4742").to_string(),
        metrics: args.flag("metrics").map(str::to_string),
        snapshot_dir: PathBuf::from(snapshot_dir),
        snapshot_every: std::time::Duration::from_millis(every_ms.max(1)),
        params: SuiteParams::new(min_support),
        selection,
        queue_batches: queue.clamp(1, 4096) as usize,
        policy_artifact: args.flag("policy-artifact").map(PathBuf::from),
        expected_censor,
        snap_log: args.flag("snap-log").map(PathBuf::from),
        snap_log_max_bytes,
    };
    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The addresses go to stdout (flushed) so a parent process can resolve
    // ephemeral ports; everything else the daemon prints goes to stderr.
    match server.local_addr() {
        Ok(addr) => println!("listening on {addr}"),
        Err(e) => {
            eprintln!("serve failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(addr) = server.metrics_addr() {
        println!("metrics on {addr}");
    }
    let _ = std::io::stdout().flush();
    let ctx = AnalysisContext::standard(None);
    let shutdown = install_sigint();
    match server.run(&ctx, shutdown) {
        Ok(summary) => {
            eprintln!(
                "served {} records over {} connection{} ({} dropped, {} parse errors); \
                 {} snapshot{} written",
                summary.records,
                summary.connections,
                if summary.connections == 1 { "" } else { "s" },
                summary.dropped_connections,
                summary.parse_errors,
                summary.snapshots,
                if summary.snapshots == 1 { "" } else { "s" },
            );
            if summary.policy_version > 0 {
                eprintln!(
                    "policy artifact at version {} ({} reload{}, {} rejected)",
                    summary.policy_version,
                    summary.policy_reloads,
                    if summary.policy_reloads == 1 { "" } else { "s" },
                    summary.policy_reload_failures,
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_stream(args: &Args) -> ExitCode {
    let Some(connections) = args.flag_u64("connections", 7) else {
        return usage();
    };
    let Some(batch) = args.flag_u64("batch", 500) else {
        return usage();
    };
    let compress = match args.flag("compress") {
        None => 0.0,
        Some(v) => match v.parse::<f64>() {
            Ok(x) if x.is_finite() && x >= 0.0 => x,
            _ => return usage(),
        },
    };
    let cfg = StreamConfig {
        connect: args.flag("connect").unwrap_or("127.0.0.1:4742").to_string(),
        connections: connections.clamp(1, 512) as usize,
        batch_lines: batch.clamp(1, 100_000) as usize,
        compress,
    };
    let progress = Progress::start();
    let result = if args.positional.is_empty() {
        let Some(scale) = args.flag_u64("scale", 65_536) else {
            return usage();
        };
        let Ok(config) = SynthConfig::new(scale) else {
            return usage();
        };
        let censor = match censor_from_flag(args) {
            Ok(kind) => kind,
            Err(code) => return code,
        };
        stream_corpus(&Corpus::new(config.with_censor(censor)), &cfg)
    } else {
        // Replayed files carry whatever mechanism produced them; a
        // `--censor` here would be silently ignored, so reject it.
        if args.flag("censor").is_some() {
            eprintln!("filterscope stream: --censor only applies to synthetic workloads (--scale)");
            return usage();
        }
        let paths: Vec<PathBuf> = args.positional.iter().map(PathBuf::from).collect();
        stream_files(&paths, &cfg)
    };
    match result {
        Ok(summary) => {
            eprintln!(
                "{} ({} batches, {} payload bytes, {} connection{})",
                progress.summary("streamed", summary.lines),
                summary.batches,
                summary.bytes,
                summary.per_connection.len(),
                if summary.per_connection.len() == 1 {
                    ""
                } else {
                    "s"
                },
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("stream failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parse a `--time`-style instant: epoch seconds, `YYYY-MM-DD`
/// (midnight), or `YYYY-MM-DD HH:MM:SS` (`T` separator also accepted).
fn parse_instant(s: &str) -> Result<u64, String> {
    if !s.is_empty() && s.chars().all(|c| c.is_ascii_digit()) {
        return s.parse().map_err(|_| format!("bad instant `{s}`"));
    }
    let (date, time) = match s.split_once([' ', 'T']) {
        Some((d, t)) => (d, t),
        None => (s, "00:00:00"),
    };
    Timestamp::parse_fields(date, time)
        .map(|t| t.epoch_seconds().max(0) as u64)
        .map_err(|e| format!("bad instant `{s}`: {e}"))
}

/// Render an epoch instant as `YYYY-MM-DD HH:MM:SS`.
fn fmt_instant(t: u64) -> String {
    Timestamp::from_epoch_seconds(t.min(i64::MAX as u64) as i64).to_string()
}

/// `filterscope history LOG (at|diff|series|ls)`: windowed time-travel
/// queries over a `serve --snap-log` frame log. Every subcommand starts
/// from the same read: decode the clean frame prefix, then fold/inspect.
fn cmd_history(args: &Args) -> ExitCode {
    let (Some(log), Some(sub), true) = (
        args.positional.first(),
        args.positional.get(1),
        args.positional.len() == 2,
    ) else {
        eprintln!("filterscope history: expected `history LOG (at|diff|series|ls)`");
        return usage();
    };
    let (frames, report) = match read_frames(Path::new(log)) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("cannot read snapshot log {log}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match sub.as_str() {
        "at" => history_at(args, &frames),
        "diff" => history_diff(args, &frames),
        "series" => history_series(args, &frames),
        "ls" => history_ls(log, &frames, &report),
        other => {
            eprintln!("filterscope history: unknown subcommand `{other}`");
            usage()
        }
    }
}

/// `history LOG at --time T [--analysis KEY]`: reconstruct the suite as
/// of `T` and render it — the whole report by default (byte-identical to
/// `analyze` over the same records), or one registry analysis.
fn history_at(args: &Args, frames: &[Frame]) -> ExitCode {
    let Some(time) = args.flag("time") else {
        eprintln!("filterscope history at: --time T is required");
        return usage();
    };
    let t = match parse_instant(time) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("filterscope history at: {e}");
            return usage();
        }
    };
    let view = match suite_at(frames, t) {
        Ok(Some(view)) => view,
        Ok(None) => {
            eprintln!("no logged state at or before {}", fmt_instant(t));
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("history at failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "state as of {} ({} records, {} parse errors, {} frame{})",
        fmt_instant(t),
        view.records,
        view.parse_errors,
        view.frames_folded,
        if view.frames_folded == 1 { "" } else { "s" },
    );
    let ctx = AnalysisContext::standard(None);
    match args.flag("analysis") {
        None => println!("{}", view.suite.render_all(&ctx)),
        Some(key) => match view.suite.analyses().iter().find(|a| a.key() == key) {
            Some(analysis) => println!("{}", analysis.render(&ctx)),
            None => {
                eprintln!("analysis `{key}` is not in the logged suite's selection");
                return ExitCode::FAILURE;
            }
        },
    }
    ExitCode::SUCCESS
}

/// `history LOG diff --from A --to B`: what changed between two instants
/// — headline counters plus per-category and per-domain censored deltas.
fn history_diff(args: &Args, frames: &[Frame]) -> ExitCode {
    let (Some(from), Some(to)) = (args.flag("from"), args.flag("to")) else {
        eprintln!("filterscope history diff: --from T and --to T are required");
        return usage();
    };
    let (a, b) = match (parse_instant(from), parse_instant(to)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("filterscope history diff: {e}");
            return usage();
        }
    };
    let d = match diff(frames, a, b) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("history diff failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}  ->  {}", fmt_instant(d.from_ts), fmt_instant(d.to_ts));
    println!(
        "records:            {} -> {}  (+{})",
        d.records.0,
        d.records.1,
        d.records.1.saturating_sub(d.records.0)
    );
    println!(
        "censored (sampled): {} -> {}  (+{})",
        d.censored.0,
        d.censored.1,
        d.censored.1.saturating_sub(d.censored.0)
    );
    let table = |title: &str, label: &str, rows: &[filterscope::snapstore::DiffRow]| {
        if rows.is_empty() {
            println!("{title}: no change");
            return;
        }
        let mut t = Table::new(title, &[label, "From", "To", "Delta"]);
        for row in rows {
            t.row([
                row.name.clone(),
                row.from.to_string(),
                row.to.to_string(),
                format!("+{}", row.delta()),
            ]);
        }
        print!("{}", t.render());
    };
    table(
        "Censored categories that changed",
        "Category",
        &d.categories,
    );
    table("Censored domains that changed", "Domain", &d.domains);
    ExitCode::SUCCESS
}

/// `history LOG series --analysis KEY [--step SECS] [--json]`: one
/// analysis's headline metric per `step`-second window across the log.
fn history_series(args: &Args, frames: &[Frame]) -> ExitCode {
    let Some(key) = args.flag("analysis") else {
        eprintln!("filterscope history series: --analysis KEY is required");
        return usage();
    };
    let Some(step) = args.flag_u64("step", 86_400) else {
        return usage();
    };
    let points = match series(frames, key, step) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("history series failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.has_flag("json") {
        let mut arr = Vec::with_capacity(points.len());
        for p in &points {
            let mut obj = Json::object();
            obj.push("t0", Json::UInt(p.t0));
            obj.push("t1", Json::UInt(p.t1));
            obj.push("value", Json::UInt(p.value));
            obj.push("cumulative", Json::UInt(p.cumulative));
            arr.push(obj);
        }
        println!("{}", Json::Arr(arr).pretty());
        return ExitCode::SUCCESS;
    }
    let mut t = Table::new(
        format!("{key} per {step}s window"),
        &["Window start", metric_label(key), "Cumulative"],
    );
    for p in &points {
        t.row([
            fmt_instant(p.t0),
            p.value.to_string(),
            p.cumulative.to_string(),
        ]);
    }
    print!("{}", t.render());
    ExitCode::SUCCESS
}

/// `history LOG ls`: the frame inventory plus an integrity verdict.
fn history_ls(log: &str, frames: &[Frame], report: &RecoveryReport) -> ExitCode {
    let mut t = Table::new(
        format!("{log}: {} frames", frames.len()),
        &[
            "Seq",
            "Kind",
            "Timestamp",
            "Key",
            "Bytes",
            "Records",
            "Parse errors",
        ],
    );
    for f in frames {
        // Counters are shown only for frames whose value decodes as a
        // suite payload; foreign keys still list structurally.
        let (records, errors) = match decode_value(&f.value) {
            Ok(v) => (v.records.to_string(), v.parse_errors.to_string()),
            Err(_) => ("-".to_string(), "-".to_string()),
        };
        t.row([
            f.seq.to_string(),
            f.kind.label().to_string(),
            fmt_instant(f.ts),
            f.key.clone(),
            f.value.len().to_string(),
            records,
            errors,
        ]);
    }
    print!("{}", t.render());
    if report.truncated_bytes > 0 {
        println!(
            "integrity: torn tail — the last {} bytes are not a complete \
             frame (truncated on the daemon's next open)",
            report.truncated_bytes
        );
    } else {
        println!("integrity: every frame CRC-checked clean");
    }
    ExitCode::SUCCESS
}

/// List the analysis registry: one row per key, in paper order.
fn cmd_analyses() -> ExitCode {
    let mut t = Table::new(
        "Analyses (paper order)",
        &["Key", "Default", "Cost", "Paper artifacts"],
    );
    for entry in REGISTRY {
        t.row([
            entry.key.to_string(),
            if entry.in_default_suite { "yes" } else { "no" }.to_string(),
            entry.cost.label().to_string(),
            entry.artifacts.to_string(),
        ]);
    }
    print!("{}", t.render());
    ExitCode::SUCCESS
}

/// `filterscope srclint [ROOT]` — run the source-invariant lint over the
/// workspace (same scan as the standalone `srclint` binary in tier-1).
fn cmd_srclint(args: &Args) -> ExitCode {
    let root = args.positional.first().map(String::as_str).unwrap_or(".");
    match interleave::srclint::check_workspace(std::path::Path::new(root)) {
        Ok(violations) if violations.is_empty() => {
            println!("srclint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("srclint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("srclint: cannot scan {root}: {e}");
            ExitCode::from(2)
        }
    }
}

/// Boolean flags (no value) of one subcommand.
fn bool_flags(command: &str) -> &'static [&'static str] {
    match command {
        "lint" => &["json"],
        "audit" => &["lint"],
        "compile" => &["farm"],
        "history" => &["json"],
        _ => &[],
    }
}

/// The flag vocabulary of one subcommand ([`Args::parse`] rejects the rest).
fn allowed_flags(command: &str) -> Option<&'static [&'static str]> {
    Some(match command {
        "generate" => &["scale", "out", "censor", "threads"],
        "analyze" => &[
            "min-support",
            "geo",
            "categories",
            "json",
            "threads",
            "analyses",
            "skip",
        ],
        "audit" => &["min-support", "cpl", "threads", "analyses", "skip"],
        "policy" => &["out"],
        "compile" => &["out", "seed"],
        "lint" => &["against", "deny"],
        "report" => &["scale", "json", "threads", "analyses", "skip"],
        "replay" => &["scale", "out", "threads", "bench-json"],
        "weather" => &["min-support", "threads", "analyses", "skip"],
        "compare" => &["a", "b", "min-support"],
        "analyses" => &[],
        "serve" => &[
            "snapshots",
            "listen",
            "metrics",
            "every-ms",
            "min-support",
            "queue",
            "policy-artifact",
            "censor",
            "snap-log",
            "snap-log-max-bytes",
            "analyses",
            "skip",
        ],
        "history" => &["time", "from", "to", "analysis", "step"],
        "srclint" => &[],
        "stream" => &[
            "connect",
            "connections",
            "batch",
            "compress",
            "scale",
            "censor",
        ],
        _ => return None,
    })
}

fn main() -> ExitCode {
    let mut raw = std::env::args().skip(1);
    let Some(command) = raw.next() else {
        return usage();
    };
    let Some(allowed) = allowed_flags(&command) else {
        return usage();
    };
    let args = match Args::parse(raw, allowed, bool_flags(&command)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("filterscope {command}: {e}");
            return usage();
        }
    };
    match command.as_str() {
        "generate" => cmd_generate(&args),
        "analyze" => cmd_analyze(&args),
        "audit" => cmd_audit(&args),
        "policy" => cmd_policy(&args),
        "compile" => cmd_compile(&args),
        "lint" => cmd_lint(&args),
        "report" => cmd_report(&args),
        "replay" => cmd_replay(&args),
        "weather" => cmd_weather(&args),
        "compare" => cmd_compare(&args),
        "analyses" => cmd_analyses(),
        "serve" => cmd_serve(&args),
        "stream" => cmd_stream(&args),
        "history" => cmd_history(&args),
        "srclint" => cmd_srclint(&args),
        _ => usage(),
    }
}
