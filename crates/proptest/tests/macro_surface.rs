//! End-to-end exercise of the macro surface the workspace tests rely on.

use proptest::prelude::*;

#[derive(Debug, Clone, PartialEq)]
enum Label {
    Fixed,
    Named(String),
    Numbered(u64),
}

fn arb_label() -> impl Strategy<Value = Label> {
    prop_oneof![
        Just(Label::Fixed),
        "[a-z_]{1,20}".prop_map(Label::Named),
        any::<u64>().prop_map(Label::Numbered),
    ]
}

proptest! {
    /// Doc comments and attributes pass through the macro.
    #[test]
    fn strings_match_their_pattern(s in "[a-z0-9.-]{1,40}", n in 0u8..24) {
        prop_assert!((1..=40).contains(&s.len()), "len {} out of range", s.len());
        prop_assert!(s.chars().all(|c| {
            c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '-'
        }));
        prop_assert_ne!(u64::from(n), 24);
    }

    #[test]
    fn oneof_and_collections_compose(
        labels in proptest::collection::vec(arb_label(), 1..10),
        pair in ("[a-z.]{2,12}", "/[A-Za-z.]{1,14}"),
    ) {
        prop_assert!(!labels.is_empty());
        prop_assert!(pair.1.starts_with('/'));
    }

    #[test]
    fn perturb_hands_out_a_usable_rng(shuffled in Just(()).prop_perturb(|_, mut rng| {
        let mut order: Vec<usize> = (0..8).collect();
        for i in (1..order.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        order
    })) {
        let mut sorted = shuffled.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..8).collect::<Vec<usize>>());
    }
}
