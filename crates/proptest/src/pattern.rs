//! Generator for the regex subset proptest string strategies use.
//!
//! Supported syntax: literal characters, `\`-escapes (`\.`, `\n`, `\\`),
//! character classes `[a-z0-9.-]` (ranges, literal `-` at either end,
//! escapes), groups `( ... )` with `|` alternation, and `{m}` / `{m,n}`
//! repetition of the preceding element. That covers every pattern in the
//! workspace's property tests; anything outside the subset panics loudly at
//! generation time rather than silently producing wrong strings.

use crate::rng::TestRng;

/// One parsed regex element.
#[derive(Debug, Clone)]
enum Node {
    /// A literal character.
    Lit(char),
    /// A character class as inclusive ranges.
    Class(Vec<(char, char)>),
    /// A group: alternation over sequences.
    Alt(Vec<Vec<Node>>),
    /// `{m,n}` repetition of an element.
    Repeat(Box<Node>, u32, u32),
}

/// A compiled pattern, ready to sample.
#[derive(Debug, Clone)]
pub struct Pattern {
    seq: Vec<Node>,
}

impl Pattern {
    /// Compile `pattern`, panicking on syntax outside the supported subset.
    pub fn compile(pattern: &str) -> Pattern {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let alts = parse_alternation(&chars, &mut pos);
        assert!(
            pos == chars.len(),
            "unsupported regex {pattern:?}: trailing input at {pos}"
        );
        let seq = if alts.len() == 1 {
            alts.into_iter().next().unwrap()
        } else {
            vec![Node::Alt(alts)]
        };
        Pattern { seq }
    }

    /// Sample one string matching the pattern.
    pub fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for node in &self.seq {
            emit(node, rng, &mut out);
        }
        out
    }
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| *hi as u64 - *lo as u64 + 1)
                .sum();
            let mut pick = rng.below(total);
            for (lo, hi) in ranges {
                let span = *hi as u64 - *lo as u64 + 1;
                if pick < span {
                    out.push(char::from_u32(*lo as u32 + pick as u32).expect("class range"));
                    return;
                }
                pick -= span;
            }
            unreachable!("class pick within total");
        }
        Node::Alt(alts) => {
            let seq = &alts[rng.below(alts.len() as u64) as usize];
            for n in seq {
                emit(n, rng, out);
            }
        }
        Node::Repeat(inner, lo, hi) => {
            let count = rng.in_range(*lo as u64, *hi as u64);
            for _ in 0..count {
                emit(inner, rng, out);
            }
        }
    }
}

/// Parse alternation (`a|b|c`) until end of input or a closing `)`.
fn parse_alternation(chars: &[char], pos: &mut usize) -> Vec<Vec<Node>> {
    let mut alts = Vec::new();
    let mut seq = Vec::new();
    while *pos < chars.len() {
        match chars[*pos] {
            ')' => break,
            '|' => {
                *pos += 1;
                alts.push(std::mem::take(&mut seq));
            }
            _ => {
                let node = parse_element(chars, pos);
                let node = parse_repeat(chars, pos, node);
                seq.push(node);
            }
        }
    }
    alts.push(seq);
    alts
}

/// Parse one atom: literal, escape, class, or group.
fn parse_element(chars: &[char], pos: &mut usize) -> Node {
    match chars[*pos] {
        '[' => {
            *pos += 1;
            parse_class(chars, pos)
        }
        '(' => {
            *pos += 1;
            let alts = parse_alternation(chars, pos);
            assert!(
                *pos < chars.len() && chars[*pos] == ')',
                "unsupported regex: unterminated group"
            );
            *pos += 1;
            Node::Alt(alts)
        }
        '\\' => {
            *pos += 1;
            let c = escaped(chars, pos);
            Node::Lit(c)
        }
        c => {
            assert!(
                !matches!(c, '*' | '+' | '?' | '{' | '}' | ']' | '.'),
                "unsupported regex metacharacter {c:?}"
            );
            *pos += 1;
            Node::Lit(c)
        }
    }
}

/// Decode the character after a `\`.
fn escaped(chars: &[char], pos: &mut usize) -> char {
    assert!(*pos < chars.len(), "unsupported regex: trailing backslash");
    let c = chars[*pos];
    *pos += 1;
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

/// Parse the body of a `[...]` class (after the opening bracket).
fn parse_class(chars: &[char], pos: &mut usize) -> Node {
    let mut ranges = Vec::new();
    assert!(
        *pos < chars.len() && chars[*pos] != '^',
        "unsupported regex: negated class"
    );
    while *pos < chars.len() && chars[*pos] != ']' {
        let lo = if chars[*pos] == '\\' {
            *pos += 1;
            escaped(chars, pos)
        } else {
            let c = chars[*pos];
            *pos += 1;
            c
        };
        // `a-z` range, unless the `-` is the final character of the class.
        if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
            *pos += 1;
            let hi = if chars[*pos] == '\\' {
                *pos += 1;
                escaped(chars, pos)
            } else {
                let c = chars[*pos];
                *pos += 1;
                c
            };
            assert!(lo <= hi, "unsupported regex: inverted class range");
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
    assert!(*pos < chars.len(), "unsupported regex: unterminated class");
    *pos += 1; // consume ']'
    assert!(!ranges.is_empty(), "unsupported regex: empty class");
    Node::Class(ranges)
}

/// Parse an optional `{m}` / `{m,n}` suffix.
fn parse_repeat(chars: &[char], pos: &mut usize, node: Node) -> Node {
    if *pos >= chars.len() || chars[*pos] != '{' {
        return node;
    }
    *pos += 1;
    let lo = parse_number(chars, pos);
    let hi = if chars.get(*pos) == Some(&',') {
        *pos += 1;
        parse_number(chars, pos)
    } else {
        lo
    };
    assert!(
        chars.get(*pos) == Some(&'}'),
        "unsupported regex: unterminated repetition"
    );
    *pos += 1;
    assert!(lo <= hi, "unsupported regex: inverted repetition bounds");
    Node::Repeat(Box::new(node), lo, hi)
}

fn parse_number(chars: &[char], pos: &mut usize) -> u32 {
    let start = *pos;
    let mut n = 0u32;
    while let Some(d) = chars.get(*pos).and_then(|c| c.to_digit(10)) {
        n = n * 10 + d;
        *pos += 1;
    }
    assert!(*pos > start, "unsupported regex: missing repetition bound");
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(pattern: &str, n: usize) -> Vec<String> {
        let p = Pattern::compile(pattern);
        let mut rng = TestRng::new(0xBEEF);
        (0..n).map(|_| p.sample(&mut rng)).collect()
    }

    #[test]
    fn class_with_ranges_and_literals() {
        for s in samples("[a-z0-9.-]{1,40}", 200) {
            assert!((1..=40).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '-'));
        }
    }

    #[test]
    fn grouped_repetition() {
        for s in samples("(/[a-zA-Z0-9._%-]{0,12}){0,4}", 200) {
            if !s.is_empty() {
                assert!(s.starts_with('/'), "{s:?}");
            }
            assert!(s.split('/').count() <= 5, "{s:?}");
        }
    }

    #[test]
    fn alternation() {
        for s in samples("[a-z]{2,8}\\.(com|net|org|il)", 100) {
            let (host, tld) = s.rsplit_once('.').unwrap();
            assert!((2..=8).contains(&host.len()), "{s:?}");
            assert!(["com", "net", "org", "il"].contains(&tld), "{s:?}");
        }
    }

    #[test]
    fn printable_ascii_class() {
        for s in samples("[ -~]{0,60}", 100) {
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn escaped_newline_in_class() {
        let all: String = samples("[ -~\\n]{0,300}", 50).concat();
        assert!(all.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
    }

    #[test]
    fn literal_prefix() {
        for s in samples("#Fields:[ -~]{0,120}", 50) {
            assert!(s.starts_with("#Fields:"), "{s:?}");
        }
    }

    #[test]
    fn exhausts_small_space() {
        let seen: std::collections::HashSet<String> = samples("[ab]{1}", 100).into_iter().collect();
        assert_eq!(seen.len(), 2);
    }
}
