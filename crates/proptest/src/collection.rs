//! Collection strategies (`proptest::collection::vec`).

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// A vector whose length is uniform over `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn length_stays_in_range() {
        let s = vec(any::<u32>(), 1..10);
        let mut rng = TestRng::new(5);
        for _ in 0..300 {
            let v = s.generate(&mut rng);
            assert!((1..10).contains(&v.len()));
        }
    }

    #[test]
    fn nested_tuples_work() {
        let s = vec((any::<u32>(), 4u8..=32, 0usize..6), 0..25);
        let mut rng = TestRng::new(6);
        let v = s.generate(&mut rng);
        assert!(v.len() < 25);
    }
}
