//! The deterministic case runner behind the [`crate::proptest!`] macro.

use crate::rng::{splitmix, TestRng};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default number of cases per property.
pub const DEFAULT_CASES: u64 = 64;

/// How many cases to run (`PROPTEST_CASES` env override).
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|n| *n > 0)
        .unwrap_or(DEFAULT_CASES)
}

/// FNV-1a over the test name: a stable per-test seed base.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run `body` over deterministically seeded cases. On a failing case, the
/// case index and seed are reported before the panic is re-raised (there is
/// no shrinking in this shim).
pub fn run<F>(name: &str, mut body: F)
where
    F: FnMut(&mut TestRng),
{
    let base = name_seed(name);
    for case in 0..case_count() {
        let seed = splitmix(base ^ splitmix(case));
        let mut rng = TestRng::new(seed);
        if let Err(panic) = catch_unwind(AssertUnwindSafe(|| body(&mut rng))) {
            eprintln!("proptest shim: property {name:?} failed at case {case} (seed {seed:#x})");
            resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_case_deterministically() {
        let mut first = Vec::new();
        run("runs_every_case", |rng| first.push(rng.next_u64()));
        let mut second = Vec::new();
        run("runs_every_case", |rng| second.push(rng.next_u64()));
        assert_eq!(first.len() as u64, case_count());
        assert_eq!(first, second);
    }

    #[test]
    fn different_names_get_different_streams() {
        let mut a = Vec::new();
        run("stream_a", |rng| a.push(rng.next_u64()));
        let mut b = Vec::new();
        run("stream_b", |rng| b.push(rng.next_u64()));
        assert_ne!(a, b);
    }

    #[test]
    fn failures_propagate() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run("always_fails", |_| panic!("expected"));
        }));
        assert!(result.is_err());
    }
}
