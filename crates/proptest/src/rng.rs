//! Deterministic test RNG (splitmix64).

/// The RNG handed to strategies and `prop_perturb` closures.
///
/// Splitmix64: tiny state, good 64-bit avalanche, and — the property that
/// matters here — fully deterministic from its seed.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

/// One splitmix64 step on a bare state word.
pub fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seed an RNG.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift reduction; the slight modulo bias is irrelevant for
        // test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Split off an independent child RNG (for by-value `prop_perturb`).
    pub fn fork(&mut self) -> TestRng {
        TestRng::new(splitmix(self.next_u64()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn in_range_is_inclusive() {
        let mut r = TestRng::new(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.in_range(3, 5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
    }
}
