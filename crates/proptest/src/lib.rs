//! Offline drop-in subset of the [proptest](https://crates.io/crates/proptest)
//! API, implementing exactly the surface this workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map`, `prop_perturb`, and `boxed`;
//! * regex-subset string strategies (`"[a-z]{1,4}"`, groups, alternation,
//!   `{m,n}` repetition, escapes);
//! * integer range strategies (`0u8..24`, `4u8..=32`, …), [`any`], [`Just`],
//!   tuple strategies, [`collection::vec`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`] and [`prop_assert_ne!`] macros.
//!
//! The build environment has no network access to crates.io, so the real
//! proptest cannot be fetched; this crate keeps the workspace's property
//! tests running unmodified. Cases are generated deterministically from a
//! hash of the test name (no time/OS entropy), so failures reproduce across
//! runs. There is no shrinking: on failure the runner reports the case
//! index and re-raises the panic. `PROPTEST_CASES` overrides the per-test
//! case count (default 64).

#![forbid(unsafe_code)]

pub mod collection;
pub mod pattern;
pub mod rng;
pub mod runner;
pub mod strategy;

pub use rng::TestRng;
pub use strategy::{any, Just, Strategy};

/// What the proptest prelude exports, to the extent the workspace uses it.
pub mod prelude {
    pub use crate::rng::TestRng;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declare property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over deterministically generated
/// cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::runner::run(stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                    $body
                });
            }
        )*
    };
}

/// Choose uniformly among heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::Strategy::boxed($arm)),+
        ])
    };
}

/// Property-test assertion (alias of `assert!`; the shim runner reports the
/// failing case before re-raising the panic).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-test equality assertion (alias of `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-test inequality assertion (alias of `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
