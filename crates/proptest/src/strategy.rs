//! The [`Strategy`] trait and the combinators the workspace's tests use.

use crate::pattern::Pattern;
use crate::rng::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of test values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with a pure function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Transform produced values with access to an independent RNG.
    fn prop_perturb<O, F>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, TestRng) -> O,
    {
        Perturb { inner: self, f }
    }

    /// Erase the concrete strategy type (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// String strategy: a `&str` is interpreted as a regex-subset pattern.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        Pattern::compile(self).sample(rng)
    }
}

/// Types with a canonical "uniform over the whole domain" strategy.
pub trait Arbitrary {
    /// Draw one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}
arbitrary_ints!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// Uniform strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    (self.start as u64 + rng.below(self.end as u64 - self.start as u64)) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.in_range(*self.start() as u64, *self.end() as u64) as $t
                }
            }
        )*
    };
}
range_strategies!(u8, u16, u32, u64, usize);

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_perturb`].
#[derive(Debug, Clone)]
pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Perturb<S, F>
where
    S: Strategy,
    F: Fn(S::Value, TestRng) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        let value = self.inner.generate(rng);
        (self.f)(value, rng.fork())
    }
}

/// Uniform choice among type-erased strategies ([`crate::prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from at least one arm.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let ix = rng.below(self.arms.len() as u64) as usize;
        self.arms[ix].generate(rng)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident),+))*) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*
    };
}
tuple_strategies! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_any() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (3u8..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let w = (4u8..=32).generate(&mut rng);
            assert!((4..=32).contains(&w));
            let _: u64 = any::<u64>().generate(&mut rng);
        }
    }

    #[test]
    fn map_and_perturb() {
        let mut rng = TestRng::new(2);
        let doubled = (1u32..5).prop_map(|v| v * 2).generate(&mut rng);
        assert!(doubled % 2 == 0 && doubled < 10);
        let forked = Just(7u64)
            .prop_perturb(|v, mut r| v + (r.next_u64() % 2))
            .generate(&mut rng);
        assert!(forked == 7 || forked == 8);
    }

    #[test]
    fn union_hits_every_arm() {
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut rng = TestRng::new(3);
        let seen: std::collections::HashSet<u8> = (0..100).map(|_| u.generate(&mut rng)).collect();
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::new(4);
        let (a, b, c) = (any::<u32>(), 4u8..=32, 0usize..6).generate(&mut rng);
        let _ = a;
        assert!((4..=32).contains(&b));
        assert!(c < 6);
    }
}
