//! Space-Saving heavy hitters (Metwally, Agrawal, El Abbadi 2005).
//!
//! Exact counting of 751 M requests across tens of millions of distinct
//! domains is memory-hungry; the top-10 tables only need the heavy hitters.
//! Space-Saving guarantees: with capacity `k`, every key whose true count
//! exceeds `N/k` is present, and each reported count overestimates the true
//! count by at most the recorded `error`.

use std::collections::HashMap;
use std::hash::Hash;

#[derive(Debug, Clone)]
struct Slot<K> {
    key: K,
    count: u64,
    /// Upper bound on the overestimation of `count`.
    error: u64,
}

/// The Space-Saving sketch.
#[derive(Debug, Clone)]
pub struct SpaceSaving<K: Eq + Hash + Clone> {
    capacity: usize,
    slots: Vec<Slot<K>>,
    index: HashMap<K, usize>,
    items_seen: u64,
}

impl<K: Eq + Hash + Clone> SpaceSaving<K> {
    /// Sketch with room for `capacity` monitored keys (must be ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpaceSaving {
            capacity,
            slots: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity),
            items_seen: 0,
        }
    }

    /// Observe one occurrence of `key`.
    pub fn observe(&mut self, key: K) {
        self.observe_n(key, 1);
    }

    /// Observe `n` occurrences of `key`.
    pub fn observe_n(&mut self, key: K, n: u64) {
        self.items_seen += n;
        if let Some(&i) = self.index.get(&key) {
            self.slots[i].count += n;
            return;
        }
        if self.slots.len() < self.capacity {
            self.index.insert(key.clone(), self.slots.len());
            self.slots.push(Slot {
                key,
                count: n,
                error: 0,
            });
            return;
        }
        // Evict the minimum-count slot.
        let (mi, _) = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.count)
            .expect("capacity >= 1");
        let min_count = self.slots[mi].count;
        let old_key = self.slots[mi].key.clone();
        self.index.remove(&old_key);
        self.index.insert(key.clone(), mi);
        self.slots[mi] = Slot {
            key,
            count: min_count + n,
            error: min_count,
        };
    }

    /// Total items observed.
    pub fn items_seen(&self) -> u64 {
        self.items_seen
    }

    /// The monitored keys with estimated counts and error bounds, count
    /// descending. `(key, estimated_count, max_overestimate)`.
    pub fn entries(&self) -> Vec<(K, u64, u64)> {
        let mut v: Vec<_> = self
            .slots
            .iter()
            .map(|s| (s.key.clone(), s.count, s.error))
            .collect();
        v.sort_by_key(|e| std::cmp::Reverse(e.1));
        v
    }

    /// The top `n` keys whose *guaranteed* count (estimate − error) is
    /// largest.
    pub fn top_guaranteed(&self, n: usize) -> Vec<(K, u64)> {
        let mut v: Vec<_> = self
            .slots
            .iter()
            .map(|s| (s.key.clone(), s.count - s.error))
            .collect();
        v.sort_by_key(|e| std::cmp::Reverse(e.1));
        v.truncate(n);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::CountMap;

    #[test]
    fn exact_when_under_capacity() {
        let mut s = SpaceSaving::new(10);
        for k in ["a", "a", "b", "c", "a"] {
            s.observe(k);
        }
        let e = s.entries();
        assert_eq!(e[0], ("a", 3, 0));
        assert_eq!(s.items_seen(), 5);
    }

    #[test]
    fn heavy_hitters_survive_eviction() {
        // Zipf-ish stream: key i appears ~ 10000/i times.
        let mut s = SpaceSaving::new(20);
        let mut exact: CountMap<u32> = CountMap::new();
        for i in 1u32..=200 {
            let reps = 10_000 / i;
            for _ in 0..reps {
                s.observe(i);
                exact.bump(i);
            }
        }
        // Space-Saving guarantee: any key with count > N/k is monitored.
        let threshold = s.items_seen() / 20;
        let monitored: std::collections::HashSet<u32> =
            s.entries().into_iter().map(|(k, _, _)| k).collect();
        for (k, c) in exact.iter() {
            if c > threshold {
                assert!(monitored.contains(k), "heavy key {k} (count {c}) evicted");
            }
        }
        // Estimates never underestimate by more than `error` allows.
        for (k, est, err) in s.entries() {
            let true_count = exact.get(&k);
            assert!(est >= true_count, "estimate below truth for {k}");
            assert!(est - err <= true_count, "error bound violated for {k}");
        }
    }

    #[test]
    fn top_guaranteed_orders_by_lower_bound() {
        let mut s = SpaceSaving::new(2);
        for _ in 0..100 {
            s.observe("big");
        }
        for k in ["x", "y", "z"] {
            s.observe(k);
        }
        let top = s.top_guaranteed(1);
        assert_eq!(top[0].0, "big");
        assert!(top[0].1 >= 100);
    }

    #[test]
    fn capacity_zero_is_clamped() {
        let mut s = SpaceSaving::new(0);
        s.observe(1u8);
        assert_eq!(s.entries().len(), 1);
    }

    #[test]
    fn observe_n_bulk() {
        let mut s = SpaceSaving::new(4);
        s.observe_n("k", 42);
        assert_eq!(s.entries()[0], ("k", 42, 0));
    }
}
