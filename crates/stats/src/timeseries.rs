//! Binned time series (Figs. 5–9 all reduce to these).

use filterscope_core::Timestamp;

/// A count series over fixed-width time bins starting at an origin.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    origin: Timestamp,
    bin_secs: u32,
    bins: Vec<u64>,
    /// Events before the origin or beyond the horizon.
    out_of_range: u64,
}

impl TimeSeries {
    /// A series of `bin_count` bins of `bin_secs` seconds from `origin`.
    pub fn new(origin: Timestamp, bin_secs: u32, bin_count: usize) -> Self {
        TimeSeries {
            origin,
            bin_secs: bin_secs.max(1),
            bins: vec![0; bin_count],
            out_of_range: 0,
        }
    }

    /// A series covering `[origin, end)`.
    pub fn spanning(origin: Timestamp, end: Timestamp, bin_secs: u32) -> Self {
        let bin_secs = bin_secs.max(1);
        let span = (end.epoch_seconds() - origin.epoch_seconds()).max(0) as u64;
        let bins = span.div_ceil(bin_secs as u64) as usize;
        Self::new(origin, bin_secs, bins)
    }

    /// Record one event at `ts`.
    pub fn record(&mut self, ts: Timestamp) {
        self.record_n(ts, 1);
    }

    /// Record `n` events at `ts`.
    pub fn record_n(&mut self, ts: Timestamp, n: u64) {
        let ix = ts.bin_index(self.origin, self.bin_secs);
        if ix >= 0 && (ix as usize) < self.bins.len() {
            self.bins[ix as usize] += n;
        } else {
            self.out_of_range += n;
        }
    }

    /// The bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total in-range events.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Events outside the covered span.
    pub fn out_of_range(&self) -> u64 {
        self.out_of_range
    }

    /// Bin width in seconds.
    pub fn bin_secs(&self) -> u32 {
        self.bin_secs
    }

    /// Start instant of bin `i`.
    pub fn bin_start(&self, i: usize) -> Timestamp {
        self.origin.plus_seconds(i as i64 * self.bin_secs as i64)
    }

    /// Each bin normalized by the series total (all zeros when empty) —
    /// the Fig. 5(b) transformation.
    pub fn normalized(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.bins.len()];
        }
        self.bins.iter().map(|&c| c as f64 / total as f64).collect()
    }

    /// Element-wise ratio against another series on the same grid: the
    /// paper's RCV (relative censored volume, Fig. 6) is
    /// `censored.ratio_against(&all)`. Bins where `denom` is zero yield 0.
    pub fn ratio_against(&self, denom: &TimeSeries) -> Vec<f64> {
        debug_assert_eq!(self.bins.len(), denom.bins.len());
        debug_assert_eq!(self.bin_secs, denom.bin_secs);
        self.bins
            .iter()
            .zip(denom.bins.iter())
            .map(|(&n, &d)| if d == 0 { 0.0 } else { n as f64 / d as f64 })
            .collect()
    }

    /// Merge another series on the same grid into this one.
    ///
    /// # Panics
    /// Panics if the grids differ (origin, bin width, or bin count).
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(self.origin, other.origin, "merge: different origins");
        assert_eq!(self.bin_secs, other.bin_secs, "merge: different bin widths");
        assert_eq!(self.bins.len(), other.bins.len(), "merge: different spans");
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += b;
        }
        self.out_of_range += other.out_of_range;
    }

    /// Add raw bin counts (plus an out-of-range tally) into this series:
    /// the rehydration path for persisted snapshots, where the grid is
    /// reconstructed by the caller and only the counts travel.
    ///
    /// # Panics
    /// Panics if `bins` is longer than this series' grid.
    pub fn add_bins(&mut self, bins: &[u64], out_of_range: u64) {
        assert!(
            bins.len() <= self.bins.len(),
            "add_bins: {} counts into a {}-bin grid",
            bins.len(),
            self.bins.len()
        );
        for (a, b) in self.bins.iter_mut().zip(bins.iter()) {
            *a += b;
        }
        self.out_of_range += out_of_range;
    }

    /// The index and value of the peak bin (`None` when all bins are zero).
    pub fn peak(&self) -> Option<(usize, u64)> {
        let (i, &v) = self.bins.iter().enumerate().max_by_key(|(_, v)| **v)?;
        (v > 0).then_some((i, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(d: &str, t: &str) -> Timestamp {
        Timestamp::parse_fields(d, t).unwrap()
    }

    #[test]
    fn records_into_five_minute_bins() {
        let origin = ts("2011-08-01", "00:00:00");
        let mut s = TimeSeries::new(origin, 300, 12); // one hour
        s.record(ts("2011-08-01", "00:00:00"));
        s.record(ts("2011-08-01", "00:04:59"));
        s.record(ts("2011-08-01", "00:05:00"));
        s.record(ts("2011-08-01", "00:59:59"));
        s.record(ts("2011-08-01", "01:00:00")); // out of range
        s.record(ts("2011-07-31", "23:59:59")); // out of range
        assert_eq!(s.bins()[0], 2);
        assert_eq!(s.bins()[1], 1);
        assert_eq!(s.bins()[11], 1);
        assert_eq!(s.total(), 4);
        assert_eq!(s.out_of_range(), 2);
    }

    #[test]
    fn spanning_rounds_up() {
        let s = TimeSeries::spanning(
            ts("2011-08-01", "00:00:00"),
            ts("2011-08-06", "00:00:00"),
            300,
        );
        assert_eq!(s.bins().len(), 5 * 288);
        let t = TimeSeries::spanning(
            ts("2011-08-01", "00:00:00"),
            ts("2011-08-01", "00:07:00"),
            300,
        );
        assert_eq!(t.bins().len(), 2);
    }

    #[test]
    fn normalization_sums_to_one() {
        let origin = ts("2011-08-03", "00:00:00");
        let mut s = TimeSeries::new(origin, 60, 10);
        for m in [0u32, 1, 1, 2] {
            s.record(origin.plus_seconds(m as i64 * 60));
        }
        let norm = s.normalized();
        assert!((norm.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((norm[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn rcv_ratio() {
        let origin = ts("2011-08-03", "00:00:00");
        let mut censored = TimeSeries::new(origin, 300, 2);
        let mut all = TimeSeries::new(origin, 300, 2);
        censored.record_n(origin, 2);
        all.record_n(origin, 100);
        all.record_n(origin.plus_seconds(300), 50);
        let rcv = censored.ratio_against(&all);
        assert!((rcv[0] - 0.02).abs() < 1e-9);
        assert_eq!(rcv[1], 0.0);
    }

    #[test]
    fn peak_detection() {
        let origin = ts("2011-08-03", "00:00:00");
        let mut s = TimeSeries::new(origin, 300, 4);
        assert_eq!(s.peak(), None);
        s.record_n(origin.plus_seconds(600), 7);
        s.record_n(origin, 3);
        assert_eq!(s.peak(), Some((2, 7)));
        assert_eq!(s.bin_start(2), ts("2011-08-03", "00:10:00"));
    }
}
