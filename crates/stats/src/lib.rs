//! # filterscope-stats
//!
//! The statistics toolkit behind the paper's tables and figures: counters
//! and exact top-N, a Space-Saving sketch for approximate heavy hitters over
//! unbounded streams, histograms and empirical CDFs (Figs. 4 and 10),
//! binned time series (Figs. 5–8), cosine similarity between sparse count
//! vectors (Table 6), confidence intervals for proportions (the Dsample
//! justification in §3.3), and power-law diagnostics (Fig. 2).

#![forbid(unsafe_code)]

pub mod cdf;
pub mod counter;
pub mod histogram;
pub mod powerlaw;
pub mod proportion;
pub mod similarity;
pub mod summary;
pub mod timeseries;
pub mod topk;

pub use cdf::Ecdf;
pub use counter::CountMap;
pub use histogram::Histogram;
pub use proportion::proportion_ci;
pub use similarity::cosine_similarity;
pub use summary::OnlineStats;
pub use timeseries::TimeSeries;
pub use topk::SpaceSaving;
