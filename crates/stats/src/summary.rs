//! Streaming summary statistics and concentration measures.

/// Welford's online mean/variance plus min/max — single pass, O(1) memory,
/// numerically stable.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation (NaN is ignored).
    pub fn record(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator (Chan et al. parallel formula).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Gini coefficient of a set of non-negative counts: 0 = perfectly even,
/// →1 = fully concentrated. Used to quantify how heavy-headed the
/// requests-per-domain distribution is (Fig. 2's skew, as one number).
pub fn gini(counts: &mut [u64]) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    counts.sort_unstable();
    let n = counts.len() as f64;
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    // G = (2·Σ i·x_i) / (n·Σ x) − (n+1)/n, with 1-based ranks over sorted x.
    let weighted: f64 = counts
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    (2.0 * weighted) / (n * total as f64) - (n + 1.0) / n
}

/// Share of the total held by the largest `k` counts ("top-k concentration").
pub fn top_k_share(counts: &mut [u64], k: usize) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 || k == 0 {
        return 0.0;
    }
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let top: u64 = counts.iter().take(k).sum();
    top as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for x in xs {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn merge_equals_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.7 - 3.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn empty_and_nan_handling() {
        let mut s = OnlineStats::new();
        s.record(f64::NAN);
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        let mut other = OnlineStats::new();
        other.record(1.0);
        s.merge(&other);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn gini_extremes() {
        // Even distribution → 0.
        let mut even = vec![5u64; 10];
        assert!(gini(&mut even).abs() < 1e-12);
        // One holder → (n-1)/n.
        let mut one = vec![0, 0, 0, 100];
        assert!((gini(&mut one) - 0.75).abs() < 1e-12);
        // Empty / all-zero → 0.
        assert_eq!(gini(&mut []), 0.0);
        assert_eq!(gini(&mut [0, 0]), 0.0);
    }

    #[test]
    fn gini_is_scale_invariant() {
        let mut a = vec![1u64, 2, 3, 4];
        let mut b = vec![10u64, 20, 30, 40];
        assert!((gini(&mut a) - gini(&mut b)).abs() < 1e-12);
    }

    #[test]
    fn top_k_share_basics() {
        let mut counts = vec![50u64, 30, 10, 5, 5];
        assert!((top_k_share(&mut counts, 1) - 0.5).abs() < 1e-12);
        assert!((top_k_share(&mut counts, 2) - 0.8).abs() < 1e-12);
        assert!((top_k_share(&mut counts, 100) - 1.0).abs() < 1e-12);
        assert_eq!(top_k_share(&mut [], 3), 0.0);
    }
}
