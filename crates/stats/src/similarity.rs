//! Cosine similarity between sparse count vectors (Table 6).
//!
//! The paper compares proxies by the cosine similarity of their
//! censored-domain count vectors:
//! `cos(A,B) = Σ AᵢBᵢ / (√ΣAᵢ² · √ΣBᵢ²)`.

use std::collections::HashMap;
use std::hash::Hash;

/// Cosine similarity of two sparse non-negative count vectors.
///
/// Returns 0 when either vector is all-zero (the paper's convention for
/// proxies with no censored traffic would make the measure undefined;
/// 0 = "not at all similar" is the conservative choice).
pub fn cosine_similarity<K: Eq + Hash>(a: &HashMap<K, u64>, b: &HashMap<K, u64>) -> f64 {
    let dot: f64 = a
        .iter()
        .filter_map(|(k, &av)| b.get(k).map(|&bv| av as f64 * bv as f64))
        .sum();
    let na: f64 = a
        .values()
        .map(|&v| (v as f64) * (v as f64))
        .sum::<f64>()
        .sqrt();
    let nb: f64 = b
        .values()
        .map(|&v| (v as f64) * (v as f64))
        .sum::<f64>()
        .sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// The full pairwise similarity matrix for `n` vectors, as a row-major
/// `n × n` table with unit diagonal.
pub fn similarity_matrix<K: Eq + Hash>(vectors: &[HashMap<K, u64>]) -> Vec<Vec<f64>> {
    let n = vectors.len();
    let mut m = vec![vec![0.0; n]; n];
    for (i, row_vec) in vectors.iter().enumerate() {
        m[i][i] = 1.0;
        for (j, col_vec) in vectors.iter().enumerate().skip(i + 1) {
            let s = cosine_similarity(row_vec, col_vec);
            m[i][j] = s;
            m[j][i] = s;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(pairs: &[(&'static str, u64)]) -> HashMap<&'static str, u64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn identical_vectors_are_one() {
        let a = map(&[("facebook.com", 10), ("skype.com", 5)]);
        assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_vectors_are_zero() {
        let a = map(&[("metacafe.com", 100)]);
        let b = map(&[("skype.com", 100)]);
        assert_eq!(cosine_similarity(&a, &b), 0.0);
    }

    #[test]
    fn scale_invariance() {
        let a = map(&[("x", 1), ("y", 2)]);
        let b = map(&[("x", 10), ("y", 20)]);
        assert!((cosine_similarity(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_value() {
        // cos([1,1],[1,0]) = 1/√2
        let a = map(&[("x", 1), ("y", 1)]);
        let b = map(&[("x", 1)]);
        assert!((cosine_similarity(&a, &b) - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn empty_vectors() {
        let a = map(&[]);
        let b = map(&[("x", 3)]);
        assert_eq!(cosine_similarity(&a, &b), 0.0);
        assert_eq!(cosine_similarity(&a, &a), 0.0);
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let vs = vec![
            map(&[("a", 3), ("b", 1)]),
            map(&[("a", 1)]),
            map(&[("c", 7)]),
        ];
        let m = similarity_matrix(&vs);
        for (i, row) in m.iter().enumerate() {
            assert!((row[i] - 1.0).abs() < 1e-12);
            for (j, v) in row.iter().enumerate() {
                assert!((v - m[j][i]).abs() < 1e-12);
                assert!((-1.0..=1.0 + 1e-12).contains(v));
            }
        }
        assert_eq!(m[0][2], 0.0);
    }
}
