//! Empirical CDFs (Fig. 4b, Fig. 10).

/// An empirical cumulative distribution function over `f64` samples.
#[derive(Debug, Clone, Default)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from samples (NaNs are dropped).
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| !x.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs after filter"));
        Ecdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Is the sample set empty?
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// F(x) = fraction of samples ≤ x. Returns 0 for an empty CDF.
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&s| s <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: the smallest sample s with F(s) ≥ q. Returns `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let ix = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        Some(self.sorted[ix - 1])
    }

    /// `(x, F(x))` points suitable for plotting, one per distinct sample.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (i, &x) in self.sorted.iter().enumerate() {
            let y = (i + 1) as f64 / n;
            match out.last_mut() {
                Some(last) if last.0 == x => last.1 = y,
                _ => out.push((x, y)),
            }
        }
        out
    }

    /// Median, if any samples exist.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_and_quantiles() {
        let c = Ecdf::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.fraction_le(0.5), 0.0);
        assert_eq!(c.fraction_le(2.0), 0.5);
        assert_eq!(c.fraction_le(10.0), 1.0);
        assert_eq!(c.quantile(0.5), Some(2.0));
        assert_eq!(c.quantile(1.0), Some(4.0));
        assert_eq!(c.quantile(0.0), Some(1.0));
        assert_eq!(c.median(), Some(2.0));
    }

    #[test]
    fn duplicate_samples_collapse_in_points() {
        let c = Ecdf::from_samples([1.0, 1.0, 2.0]);
        let pts = c.points();
        assert_eq!(pts.len(), 2);
        assert!((pts[0].1 - 2.0 / 3.0).abs() < 1e-9);
        assert!((pts[1].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_nan_handling() {
        let c = Ecdf::from_samples([f64::NAN]);
        assert!(c.is_empty());
        assert_eq!(c.fraction_le(0.0), 0.0);
        assert_eq!(c.quantile(0.5), None);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let c = Ecdf::from_samples([3.0, 1.0, 2.0]);
        assert_eq!(c.quantile(0.34), Some(2.0));
        assert_eq!(c.len(), 3);
    }
}
