//! Exact counting.

use std::collections::HashMap;
use std::hash::Hash;

/// A hash-map counter with merge and top-N extraction.
#[derive(Debug, Clone)]
pub struct CountMap<K: Eq + Hash> {
    counts: HashMap<K, u64>,
    total: u64,
}

impl<K: Eq + Hash> Default for CountMap<K> {
    fn default() -> Self {
        CountMap {
            counts: HashMap::new(),
            total: 0,
        }
    }
}

impl<K: Eq + Hash> CountMap<K> {
    /// Empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to `key`'s count.
    pub fn add(&mut self, key: K, n: u64) {
        *self.counts.entry(key).or_insert(0) += n;
        self.total += n;
    }

    /// Increment `key` by one.
    pub fn bump(&mut self, key: K) {
        self.add(key, 1);
    }

    /// Count for `key` (0 when absent).
    pub fn get<Q>(&self, key: &Q) -> u64
    where
        K: std::borrow::Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Sum of all counts.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct keys.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Is the counter empty?
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Merge another counter into this one.
    pub fn merge(&mut self, other: CountMap<K>) {
        for (k, v) in other.counts {
            *self.counts.entry(k).or_insert(0) += v;
        }
        self.total += other.total;
    }

    /// Iterate `(key, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.counts.iter().map(|(k, v)| (k, *v))
    }

    /// Consume into the underlying map.
    pub fn into_map(self) -> HashMap<K, u64> {
        self.counts
    }
}

impl<K: Eq + Hash + Clone + Ord> CountMap<K> {
    /// The `n` largest entries, by count descending, ties broken by key for
    /// deterministic output.
    pub fn top_n(&self, n: usize) -> Vec<(K, u64)> {
        let mut items: Vec<(K, u64)> = self.counts.iter().map(|(k, v)| (k.clone(), *v)).collect();
        items.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        items.truncate(n);
        items
    }

    /// All entries sorted by count descending (ties by key).
    pub fn sorted(&self) -> Vec<(K, u64)> {
        self.top_n(usize::MAX)
    }
}

impl<K: Eq + Hash> FromIterator<K> for CountMap<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        let mut m = CountMap::new();
        for k in iter {
            m.bump(k);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_totals() {
        let mut c = CountMap::new();
        c.bump("a");
        c.bump("a");
        c.add("b", 5);
        assert_eq!(c.get("a"), 2);
        assert_eq!(c.get("b"), 5);
        assert_eq!(c.get("z"), 0);
        assert_eq!(c.total(), 7);
        assert_eq!(c.distinct(), 2);
    }

    #[test]
    fn top_n_is_deterministic_on_ties() {
        let c: CountMap<&str> = ["x", "y", "z", "y"].into_iter().collect();
        assert_eq!(c.top_n(2), vec![("y", 2), ("x", 1)]);
        assert_eq!(c.top_n(10).len(), 3);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a: CountMap<&str> = ["p", "q"].into_iter().collect();
        let b: CountMap<&str> = ["q", "r"].into_iter().collect();
        a.merge(b);
        assert_eq!(a.get("q"), 2);
        assert_eq!(a.total(), 4);
        assert_eq!(a.distinct(), 3);
    }
}
