//! Fixed-width histograms (Fig. 4a: censored requests per user).

/// A histogram over `u64` values with fixed-width bins and an overflow bin.
#[derive(Debug, Clone)]
pub struct Histogram {
    bin_width: u64,
    bins: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    max_seen: u64,
}

impl Histogram {
    /// `bin_count` bins of `bin_width` each; values ≥ `bin_count*bin_width`
    /// land in the overflow bin.
    pub fn new(bin_width: u64, bin_count: usize) -> Self {
        Histogram {
            bin_width: bin_width.max(1),
            bins: vec![0; bin_count.max(1)],
            overflow: 0,
            count: 0,
            sum: 0,
            max_seen: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.max_seen = self.max_seen.max(value);
        let bin = (value / self.bin_width) as usize;
        if bin < self.bins.len() {
            self.bins[bin] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max_seen
    }

    /// `(bin lower bound, count)` for every regular bin.
    pub fn bins(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .map(|(i, c)| (i as u64 * self.bin_width, *c))
    }

    /// Count in the overflow bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Fraction of values in bin `i` (0 when empty).
    pub fn fraction(&self, i: usize) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let c = self.bins.get(i).copied().unwrap_or(0);
        c as f64 / self.count as f64
    }

    /// Merge another histogram with the same geometry into this one.
    ///
    /// # Panics
    /// Panics if bin width or bin count differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bin_width, other.bin_width, "merge: bin width");
        assert_eq!(self.bins.len(), other.bins.len(), "merge: bin count");
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.max_seen = self.max_seen.max(other.max_seen);
    }

    /// Approximate quantile (`q` in `[0,1]`) from bin boundaries: the lower
    /// bound of the bin where the cumulative count crosses `q·N`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut cum = 0;
        for (lo, c) in self.bins() {
            cum += c;
            if cum >= target {
                return lo;
            }
        }
        self.bins.len() as u64 * self.bin_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_assignment() {
        let mut h = Histogram::new(10, 3); // [0,10) [10,20) [20,30) + overflow
        for v in [0, 9, 10, 25, 300] {
            h.record(v);
        }
        let bins: Vec<_> = h.bins().collect();
        assert_eq!(bins, vec![(0, 2), (10, 1), (20, 1)]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 300);
    }

    #[test]
    fn mean_and_fraction() {
        let mut h = Histogram::new(1, 10);
        for v in [1, 2, 3] {
            h.record(v);
        }
        assert!((h.mean() - 2.0).abs() < 1e-9);
        assert!((h.fraction(1) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(h.fraction(9), 0.0);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::new(1, 100);
        for v in 0..100 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert!((h.quantile(0.5) as i64 - 50).unsigned_abs() <= 1);
        assert_eq!(h.quantile(1.0), 99);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new(5, 5);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn degenerate_parameters_clamp() {
        let mut h = Histogram::new(0, 0);
        h.record(7);
        assert_eq!(h.count(), 1);
    }
}
