//! Power-law diagnostics for Fig. 2 (requests-per-domain distribution).
//!
//! Fig. 2 plots the *frequency of frequencies*: for each request count `c`,
//! how many domains received exactly `c` requests. A Zipfian workload shows
//! a straight line on log-log axes. [`frequency_of_frequencies`] computes
//! the plot data and [`fit_alpha`] estimates the tail exponent with the
//! continuous-approximation MLE (Clauset–Shalizi–Newman 2009, eq. 3.1):
//! `α ≈ 1 + n / Σ ln(xᵢ / (xmin − ½))`.

use crate::counter::CountMap;
use std::hash::Hash;

/// `(request count, number of domains with that count)` sorted ascending —
/// the Fig. 2 series.
pub fn frequency_of_frequencies<K: Eq + Hash>(counts: &CountMap<K>) -> Vec<(u64, u64)> {
    let mut fof: CountMap<u64> = CountMap::new();
    for (_, c) in counts.iter() {
        fof.bump(c);
    }
    let mut v: Vec<(u64, u64)> = fof.iter().map(|(k, c)| (*k, c)).collect();
    v.sort_unstable();
    v
}

/// MLE of the power-law exponent for samples ≥ `xmin`. Returns `None` when
/// fewer than 2 samples qualify.
pub fn fit_alpha(samples: impl IntoIterator<Item = u64>, xmin: u64) -> Option<f64> {
    let xmin = xmin.max(1);
    let shift = xmin as f64 - 0.5;
    let mut n = 0u64;
    let mut log_sum = 0.0f64;
    for x in samples {
        if x >= xmin {
            n += 1;
            log_sum += (x as f64 / shift).ln();
        }
    }
    if n < 2 || log_sum <= 0.0 {
        return None;
    }
    Some(1.0 + n as f64 / log_sum)
}

/// Convenience: fit the exponent of the requests-per-domain distribution.
pub fn fit_domain_alpha<K: Eq + Hash>(counts: &CountMap<K>, xmin: u64) -> Option<f64> {
    // Hash-map iteration order varies per process, and float summation is
    // not associative: summing the logs in that order leaks an ulp of
    // run-to-run jitter into the estimate. Sort first so the fit is a pure
    // function of the count multiset.
    let mut samples: Vec<u64> = counts.iter().map(|(_, c)| c).collect();
    samples.sort_unstable();
    fit_alpha(samples, xmin)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_of_frequencies_basics() {
        let mut c: CountMap<&str> = CountMap::new();
        for (k, n) in [("a", 1), ("b", 1), ("c", 3), ("d", 3), ("e", 10)] {
            c.add(k, n);
        }
        let fof = frequency_of_frequencies(&c);
        assert_eq!(fof, vec![(1, 2), (3, 2), (10, 1)]);
    }

    #[test]
    fn alpha_recovers_known_exponent() {
        // Draw deterministically from a discrete power law with α = 2.5 via
        // inverse transform on a low-discrepancy sequence.
        let alpha = 2.5f64;
        let samples: Vec<u64> = (1..20_000u64)
            .map(|i| {
                let u = (i as f64 + 0.5) / 20_000.0;
                // P(X >= x) = x^{-(α-1)} → x = u^{-1/(α-1)}
                u.powf(-1.0 / (alpha - 1.0)).floor() as u64
            })
            .filter(|&x| x >= 1)
            .collect();
        // Flooring continuous draws biases small values; fit the tail only.
        let est = fit_alpha(samples, 10).unwrap();
        assert!((est - alpha).abs() < 0.25, "estimated {est}");
    }

    #[test]
    fn too_few_samples_is_none() {
        assert_eq!(fit_alpha([5], 1), None);
        assert_eq!(fit_alpha([], 1), None);
        // All samples below xmin.
        assert_eq!(fit_alpha([1, 2, 3], 10), None);
    }

    #[test]
    fn xmin_zero_is_clamped() {
        assert!(fit_alpha([2, 3, 4, 5, 9], 0).is_some());
    }
}
