//! Confidence intervals for proportions.
//!
//! §3.3 justifies the 4 % sample with the standard normal-approximation
//! interval for proportions (Jain, *The Art of Computer Systems Performance
//! Analysis*, ch. 13.9.2): for sample proportion p over n observations, the
//! 95 % interval is `p ± z·√(p(1−p)/n)`.

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    pub lower: f64,
    pub upper: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }

    /// Does the interval contain `x`?
    pub fn contains(&self, x: f64) -> bool {
        self.lower <= x && x <= self.upper
    }
}

/// z quantiles for common confidence levels.
fn z_for(confidence: f64) -> f64 {
    // Two-sided standard normal quantiles.
    if confidence >= 0.999 {
        3.2905
    } else if confidence >= 0.99 {
        2.5758
    } else if confidence >= 0.95 {
        1.9600
    } else if confidence >= 0.90 {
        1.6449
    } else {
        1.2816 // 80%
    }
}

/// Normal-approximation CI for a proportion: `successes` out of `n` at the
/// given confidence level (clamped to `[0,1]`). `n == 0` yields the vacuous
/// interval `[0,1]`.
pub fn proportion_ci(successes: u64, n: u64, confidence: f64) -> ConfidenceInterval {
    if n == 0 {
        return ConfidenceInterval {
            lower: 0.0,
            upper: 1.0,
        };
    }
    let p = successes as f64 / n as f64;
    let z = z_for(confidence);
    let hw = z * (p * (1.0 - p) / n as f64).sqrt();
    ConfidenceInterval {
        lower: (p - hw).max(0.0),
        upper: (p + hw).min(1.0),
    }
}

/// Two-proportion z-test: is `a = a_success/a_n` significantly different
/// from `b = b_success/b_n`? Returns the z statistic (`None` when either
/// sample is empty or the pooled proportion is degenerate 0/1 in both).
///
/// `|z| > 1.96` ⇒ significant at 95 %, `> 2.58` at 99 %.
pub fn two_proportion_z(a_success: u64, a_n: u64, b_success: u64, b_n: u64) -> Option<f64> {
    if a_n == 0 || b_n == 0 {
        return None;
    }
    let p1 = a_success as f64 / a_n as f64;
    let p2 = b_success as f64 / b_n as f64;
    let pooled = (a_success + b_success) as f64 / (a_n + b_n) as f64;
    let se = (pooled * (1.0 - pooled) * (1.0 / a_n as f64 + 1.0 / b_n as f64)).sqrt();
    if se == 0.0 {
        // Both samples unanimous and identical — no evidence of difference.
        return if (p1 - p2).abs() < f64::EPSILON {
            Some(0.0)
        } else {
            None
        };
    }
    Some((p1 - p2) / se)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sample_size_bound() {
        // §3.3: "for a sample size of n = 32M, the actual proportion ... lies
        // in an interval of ±0.0001 around the proportion p ... with 95%
        // probability". Worst case is p = 0.5.
        let ci = proportion_ci(16_000_000, 32_000_000, 0.95);
        assert!(ci.half_width() <= 0.0002, "half width {}", ci.half_width());
        assert!(ci.half_width() >= 0.00015);
    }

    #[test]
    fn interval_contains_point_estimate() {
        let ci = proportion_ci(30, 100, 0.95);
        assert!(ci.contains(0.3));
        assert!(!ci.contains(0.5));
    }

    #[test]
    fn degenerate_proportions() {
        let all = proportion_ci(100, 100, 0.95);
        assert_eq!(all.upper, 1.0);
        assert_eq!(all.half_width(), 0.0);
        let none = proportion_ci(0, 100, 0.95);
        assert_eq!(none.lower, 0.0);
        assert_eq!(none.half_width(), 0.0);
    }

    #[test]
    fn zero_n_is_vacuous() {
        let ci = proportion_ci(0, 0, 0.95);
        assert_eq!(ci.lower, 0.0);
        assert_eq!(ci.upper, 1.0);
    }

    #[test]
    fn wider_confidence_wider_interval() {
        let c90 = proportion_ci(50, 200, 0.90);
        let c99 = proportion_ci(50, 200, 0.99);
        assert!(c99.half_width() > c90.half_width());
    }

    #[test]
    fn z_test_detects_real_differences() {
        // 10% vs 20% over large samples: clearly significant.
        let z = two_proportion_z(1_000, 10_000, 2_000, 10_000).unwrap();
        assert!(z.abs() > 10.0, "z {z}");
        assert!(z < 0.0, "first proportion is smaller");
        // Identical proportions: z ≈ 0.
        let z = two_proportion_z(500, 5_000, 100, 1_000).unwrap();
        assert!(z.abs() < 1e-9);
        // Small samples with same rate: not significant.
        let z = two_proportion_z(1, 10, 2, 10).unwrap();
        assert!(z.abs() < 1.96);
    }

    #[test]
    fn z_test_degenerate_cases() {
        assert_eq!(two_proportion_z(0, 0, 1, 10), None);
        assert_eq!(two_proportion_z(1, 10, 0, 0), None);
        // Both unanimous at the same value: defined, zero.
        assert_eq!(two_proportion_z(10, 10, 5, 5), Some(0.0));
        assert_eq!(two_proportion_z(0, 10, 0, 5), Some(0.0));
    }
}
