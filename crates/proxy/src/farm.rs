//! The seven-proxy farm: routing, filtering, logging.
//!
//! Routing reproduces the paper's observations in §5.1–§5.2: overall load is
//! near-uniform across the proxies, but *domain-based redirection*
//! concentrates specific censored domains on specific appliances —
//! `metacafe.com` ≳95 % on SG-48, Instant-Messaging domains biased toward
//! SG-48/SG-45 — which is what produces the similarity structure of Table 6
//! and SG-48's censored-traffic spikes in Fig. 7.

use crate::cache::CacheModel;
use crate::config::FarmConfig;
use crate::decision::Decision;
use crate::engine::PolicyEngine;
use crate::errors::ErrorModel;
use crate::hashing::{decision_hash, per_mille};
use crate::request::Request;
use filterscope_core::ProxyId;
use filterscope_logformat::url::base_domain_of;
use filterscope_logformat::{ExceptionId, FilterResult, LogRecord, Method, SAction};
use filterscope_tor::RelayIndex;
use std::sync::Arc;

/// The deployment: compiled policy + per-proxy configs + overlays.
pub struct ProxyFarm {
    config: FarmConfig,
    engine: PolicyEngine,
    errors: ErrorModel,
    cache: CacheModel,
    /// Which proxies are accepting traffic (the July window has only SG-42).
    active: Vec<ProxyId>,
}

// The parallel pipelines share one farm per day kind across shards behind
// an `Arc`; `process` takes `&self`, and this pins down that no interior
// mutability may creep in and silently break that sharing.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ProxyFarm>()
};

impl ProxyFarm {
    /// Build the standard farm. `relays` enables Tor-aware rules.
    pub fn new(config: FarmConfig, relays: Option<Arc<RelayIndex>>) -> Self {
        let engine = PolicyEngine::standard(relays, config.seed);
        let errors = ErrorModel::new(config.seed, config.error_per_cent_mille);
        let cache = CacheModel::new(config.seed, config.proxied_per_cent_mille);
        ProxyFarm {
            config,
            engine,
            errors,
            cache,
            active: ProxyId::ALL.to_vec(),
        }
    }

    /// Standard farm with default config and no Tor awareness.
    pub fn standard() -> Self {
        Self::new(FarmConfig::default(), None)
    }

    /// A farm running an arbitrary policy (ablated, recovered, or parsed
    /// from CPL) instead of the standard rule set.
    pub fn with_policy(
        config: FarmConfig,
        policy: &crate::policy_data::PolicyData,
        relays: Option<Arc<RelayIndex>>,
    ) -> Self {
        let engine = PolicyEngine::from_data(policy, relays, config.seed);
        let errors = ErrorModel::new(config.seed, config.error_per_cent_mille);
        let cache = CacheModel::new(config.seed, config.proxied_per_cent_mille);
        ProxyFarm {
            config,
            engine,
            errors,
            cache,
            active: ProxyId::ALL.to_vec(),
        }
    }

    /// Restrict which proxies accept traffic (e.g. only SG-42 in July).
    pub fn set_active(&mut self, proxies: &[ProxyId]) {
        assert!(!proxies.is_empty(), "at least one active proxy required");
        self.active = proxies.to_vec();
    }

    /// Builder-style [`Self::set_active`], for wrapping a configured farm
    /// straight into an `Arc` shared across pipeline shards.
    pub fn with_active(mut self, proxies: &[ProxyId]) -> Self {
        self.set_active(proxies);
        self
    }

    /// The currently active proxies.
    pub fn active(&self) -> &[ProxyId] {
        &self.active
    }

    /// Shared access to the compiled policy (for analyses and tests).
    pub fn engine(&self) -> &PolicyEngine {
        &self.engine
    }

    /// Route a request to a proxy: uniform hash placement with the
    /// domain-based specialization overrides of [`config::ROUTE_BIASES`]
    /// (shared with the static skew report in `filterscope-policylint`).
    pub fn route(&self, req: &Request) -> ProxyId {
        let seed = self.config.seed;
        let key = req.identity_bytes();
        let h = decision_hash(seed, "route", &key);
        let pm = per_mille(decision_hash(seed, "route-special", &key));

        if self.active.len() == ProxyId::COUNT {
            let base = base_domain_of(&req.url.host);
            let is_ip = req.url.host_is_ip();
            for bias in crate::config::ROUTE_BIASES {
                if !bias.selects(&base, is_ip) {
                    continue;
                }
                if let Some(proxy) = bias.target(pm) {
                    return proxy;
                }
            }
        }
        self.active[(h % self.active.len() as u64) as usize]
    }

    /// Process a request end to end: route, decide, apply cache/error
    /// overlays, and produce the log record the appliance would write.
    pub fn process(&self, req: &Request) -> LogRecord {
        let proxy = self.route(req);
        self.process_on(req, proxy)
    }

    /// Process on a specific proxy (bypasses routing).
    pub fn process_on(&self, req: &Request, proxy: ProxyId) -> LogRecord {
        let cfg = &self.config.proxies[proxy.index()];
        let decision = self.engine.decide(cfg, req);
        let categories = self.engine.category_label(cfg, decision).to_string();
        let cache_hit = self.cache.is_cache_hit(req);

        // Outcome resolution.
        let (filter_result, s_action, exception, sc_status, sc_bytes) = if decision.is_censored() {
            let exception = decision.exception();
            if cache_hit {
                // PROXIED rows for censored URLs sometimes lose the
                // exception — the inconsistency §3.3 observes.
                let exc = if self.cache.drops_exception(req) {
                    ExceptionId::None
                } else {
                    exception
                };
                (FilterResult::Proxied, SAction::TcpHit, exc, 403u16, 0u64)
            } else {
                let action = match decision {
                    Decision::Redirect(_) => SAction::TcpPolicyRedirect,
                    _ => SAction::TcpDenied,
                };
                let status = match decision {
                    Decision::Redirect(_) => 302,
                    _ => 403,
                };
                (FilterResult::Denied, action, exception, status, 0)
            }
        } else if cache_hit {
            (
                FilterResult::Proxied,
                SAction::TcpHit,
                ExceptionId::None,
                200,
                req.response_bytes,
            )
        } else if let Some(err) = self.errors.sample(req) {
            let status = match err {
                ExceptionId::DnsUnresolvedHostname | ExceptionId::DnsServerFailure => 503,
                ExceptionId::InvalidRequest => 400,
                _ => 503,
            };
            (FilterResult::Denied, SAction::TcpErrMiss, err, status, 0)
        } else {
            let action = if req.method == Method::Connect {
                SAction::TcpTunneled
            } else {
                SAction::TcpNcMiss
            };
            (
                FilterResult::Observed,
                action,
                ExceptionId::None,
                200,
                req.response_bytes,
            )
        };

        let served = filter_result != FilterResult::Denied;
        // A transparent proxy never sees inside a TLS tunnel: CONNECT
        // records carry only the endpoint — no path, query or extension
        // (this absence is exactly the paper's no-MITM evidence, §4).
        let url = if req.method == Method::Connect {
            filterscope_logformat::RequestUrl {
                scheme: req.url.scheme.clone(),
                host: req.url.host.clone(),
                port: req.url.port,
                path: "-".into(),
                query: String::new(),
            }
        } else {
            req.url.clone()
        };
        let uri_ext = url
            .extension()
            .filter(|e| *e != "-")
            .unwrap_or("")
            .to_string();
        let content_type = if !served || req.method == Method::Connect {
            String::new()
        } else {
            content_type_for(&uri_ext).to_string()
        };

        LogRecord {
            timestamp: req.timestamp,
            time_taken_ms: time_taken(req, filter_result),
            client: req.client,
            sc_status,
            s_action,
            sc_bytes,
            cs_bytes: 300 + (url.path.len() + url.query.len()) as u64,
            method: req.method.clone(),
            url,
            uri_ext,
            username: String::new(),
            hierarchy: if served {
                "DIRECT".into()
            } else {
                "NONE".into()
            },
            // A host of literally "-" would collide with the absent-field
            // marker on disk; such a degenerate supplier is logged as absent.
            supplier: if served && req.url.host != "-" {
                req.url.host.clone()
            } else {
                String::new()
            },
            content_type,
            user_agent: req.user_agent.clone(),
            filter_result,
            categories,
            virus_id: String::new(),
            s_ip: proxy.s_ip(),
            sitename: "SG-HTTP-Service".into(),
            exception,
        }
    }
}

/// Plausible `time-taken` values: censored decisions are local and fast;
/// served requests include origin round trips.
fn time_taken(req: &Request, fr: FilterResult) -> u32 {
    let h = decision_hash(0x71AE, "time-taken", &req.identity_bytes());
    match fr {
        FilterResult::Denied => 1 + (h % 30) as u32,
        FilterResult::Proxied => 1 + (h % 15) as u32,
        FilterResult::Observed => 40 + (h % 900) as u32,
    }
}

/// Content type from extension (only for served responses).
fn content_type_for(ext: &str) -> &'static str {
    match ext {
        "js" => "application/x-javascript",
        "css" => "text/css",
        "png" => "image/png",
        "jpg" | "jpeg" => "image/jpeg",
        "gif" => "image/gif",
        "flv" => "video/x-flv",
        "swf" => "application/x-shockwave-flash",
        "xml" => "text/xml",
        "json" => "application/json",
        "ico" => "image/x-icon",
        "" | "php" | "html" | "htm" | "asp" | "aspx" => "text/html",
        _ => "application/octet-stream",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use filterscope_core::Timestamp;
    use filterscope_logformat::{RequestClass, RequestUrl};

    fn ts(t: &str) -> Timestamp {
        Timestamp::parse_fields("2011-08-03", t).unwrap()
    }

    #[test]
    fn censored_request_produces_denied_record() {
        let farm = ProxyFarm::standard();
        let req = Request::get(
            ts("09:00:00"),
            RequestUrl::http("metacafe.com", "/watch/123"),
        );
        let rec = farm.process_on(&req, ProxyId::Sg48);
        // Either censored-denied or censored-proxied (cache overlay).
        assert!(rec.exception.is_policy() || rec.filter_result == FilterResult::Proxied);
        if rec.filter_result == FilterResult::Denied {
            assert_eq!(RequestClass::of(&rec), RequestClass::Censored);
            assert_eq!(rec.sc_status, 403);
            assert_eq!(rec.sc_bytes, 0);
            assert_eq!(rec.categories, "none"); // SG-48 names it `none`
        }
    }

    #[test]
    fn allowed_request_produces_observed_record() {
        let farm = ProxyFarm::standard();
        // Pick a URL that neither errors nor caches under the default seed.
        let mut found = false;
        for i in 0..50 {
            let req = Request::get(
                ts("09:00:00"),
                RequestUrl::http(format!("ok{i}.example"), "/index.html"),
            );
            let rec = farm.process_on(&req, ProxyId::Sg42);
            if rec.filter_result == FilterResult::Observed {
                assert_eq!(RequestClass::of(&rec), RequestClass::Allowed);
                assert_eq!(rec.sc_status, 200);
                assert!(rec.sc_bytes > 0);
                assert_eq!(rec.supplier, rec.url.host);
                assert_eq!(rec.categories, "unavailable");
                assert_eq!(rec.uri_ext, "html");
                found = true;
                break;
            }
        }
        assert!(found, "no plain-allowed record in 50 URLs");
    }

    #[test]
    fn redirect_logs_policy_redirect_action() {
        let farm = ProxyFarm::standard();
        let req = Request::get(
            ts("10:00:00"),
            RequestUrl::http("upload.youtube.com", "/up"),
        );
        let rec = farm.process_on(&req, ProxyId::Sg42);
        if rec.filter_result == FilterResult::Denied {
            assert_eq!(rec.exception, ExceptionId::PolicyRedirect);
            assert_eq!(rec.s_action, SAction::TcpPolicyRedirect);
            assert_eq!(rec.sc_status, 302);
        }
    }

    #[test]
    fn facebook_page_gets_blocked_sites_category() {
        let farm = ProxyFarm::standard();
        let req = Request::get(
            ts("10:00:00"),
            RequestUrl::http("www.facebook.com", "/Syrian.Revolution").with_query("ref=ts"),
        );
        let rec = farm.process_on(&req, ProxyId::Sg42);
        assert_eq!(rec.categories, "Blocked sites; unavailable");
        let rec48 = farm.process_on(&req, ProxyId::Sg48);
        assert_eq!(rec48.categories, "Blocked sites");
    }

    #[test]
    fn metacafe_routes_to_sg48() {
        let farm = ProxyFarm::standard();
        let mut sg48 = 0;
        let n = 1000;
        for i in 0..n {
            let req = Request::get(
                ts("09:00:00"),
                RequestUrl::http("www.metacafe.com", format!("/watch/{i}")),
            );
            if farm.route(&req) == ProxyId::Sg48 {
                sg48 += 1;
            }
        }
        assert!(sg48 > 930, "metacafe on SG-48: {sg48}/{n}");
    }

    #[test]
    fn generic_traffic_spreads_across_proxies() {
        let farm = ProxyFarm::standard();
        let mut counts = [0u32; 7];
        let n = 7000;
        for i in 0..n {
            let req = Request::get(
                ts("09:00:00"),
                RequestUrl::http(format!("site{i}.example"), "/"),
            );
            counts[farm.route(&req).index()] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!((600..1500).contains(c), "proxy {i} got {c} of {n} requests");
        }
    }

    #[test]
    fn restricted_active_set_routes_only_there() {
        let mut farm = ProxyFarm::standard();
        farm.set_active(&[ProxyId::Sg42]);
        for i in 0..100 {
            let req = Request::get(
                ts("09:00:00"),
                RequestUrl::http(format!("s{i}.example"), "/"),
            );
            assert_eq!(farm.route(&req), ProxyId::Sg42);
        }
    }

    #[test]
    fn processing_is_deterministic() {
        let farm = ProxyFarm::standard();
        let req = Request::get(
            ts("09:00:00"),
            RequestUrl::http("facebook.com", "/plugins/like.php"),
        );
        assert_eq!(farm.process(&req), farm.process(&req));
    }

    #[test]
    fn connect_tunnel_records_ssl_scheme() {
        let farm = ProxyFarm::standard();
        let req = Request::connect(ts("11:00:00"), "mail.example.org");
        let rec = farm.process_on(&req, ProxyId::Sg42);
        assert_eq!(rec.url.scheme, "ssl");
        assert_eq!(rec.method, Method::Connect);
        if rec.filter_result == FilterResult::Observed {
            assert_eq!(rec.s_action, SAction::TcpTunneled);
        }
    }

    #[test]
    fn israeli_connect_by_ip_is_censored() {
        let farm = ProxyFarm::standard();
        let req = Request::connect(ts("11:00:00"), "84.229.10.10");
        let rec = farm.process_on(&req, ProxyId::Sg47);
        assert!(
            rec.exception.is_policy() || rec.filter_result == FilterResult::Proxied,
            "{rec:?}"
        );
    }
}
