//! The seven-proxy farm: routing, filtering, logging.
//!
//! Routing reproduces the paper's observations in §5.1–§5.2: overall load is
//! near-uniform across the proxies, but *domain-based redirection*
//! concentrates specific censored domains on specific appliances —
//! `metacafe.com` ≳95 % on SG-48, Instant-Messaging domains biased toward
//! SG-48/SG-45 — which is what produces the similarity structure of Table 6
//! and SG-48's censored-traffic spikes in Fig. 7.

use crate::cache::CacheModel;
use crate::config::FarmConfig;
use crate::engine::PolicyEngine;
use crate::errors::ErrorModel;
use crate::hashing::{decision_hash, per_mille};
use crate::profile::{CensorProfile, ProfileContext};
use crate::request::Request;
use filterscope_core::ProxyId;
use filterscope_logformat::url::base_domain_of;
use filterscope_logformat::LogRecord;
use filterscope_tor::RelayIndex;
use std::sync::Arc;

/// The deployment: compiled policy + per-proxy configs + overlays + the
/// censorship mechanism ([`CensorProfile`]) that turns verdicts into
/// records.
pub struct ProxyFarm {
    config: FarmConfig,
    engine: PolicyEngine,
    errors: ErrorModel,
    cache: CacheModel,
    profile: Box<dyn CensorProfile>,
    /// Which proxies are accepting traffic (the July window has only SG-42).
    active: Vec<ProxyId>,
}

// The parallel pipelines share one farm per day kind across shards behind
// an `Arc`; `process` takes `&self`, and this pins down that no interior
// mutability may creep in and silently break that sharing.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ProxyFarm>()
};

impl ProxyFarm {
    /// Build the standard farm. `relays` enables Tor-aware rules.
    pub fn new(config: FarmConfig, relays: Option<Arc<RelayIndex>>) -> Self {
        let engine = PolicyEngine::standard(relays, config.seed);
        let errors = ErrorModel::new(config.seed, config.error_per_cent_mille);
        let cache = CacheModel::new(config.seed, config.proxied_per_cent_mille);
        let profile = config.profile.build();
        ProxyFarm {
            config,
            engine,
            errors,
            cache,
            profile,
            active: ProxyId::ALL.to_vec(),
        }
    }

    /// Standard farm with default config and no Tor awareness.
    pub fn standard() -> Self {
        Self::new(FarmConfig::default(), None)
    }

    /// A farm running an arbitrary policy (ablated, recovered, or parsed
    /// from CPL) instead of the standard rule set.
    pub fn with_policy(
        config: FarmConfig,
        policy: &crate::policy_data::PolicyData,
        relays: Option<Arc<RelayIndex>>,
    ) -> Self {
        let engine = PolicyEngine::from_data(policy, relays, config.seed);
        let errors = ErrorModel::new(config.seed, config.error_per_cent_mille);
        let cache = CacheModel::new(config.seed, config.proxied_per_cent_mille);
        let profile = config.profile.build();
        ProxyFarm {
            config,
            engine,
            errors,
            cache,
            profile,
            active: ProxyId::ALL.to_vec(),
        }
    }

    /// Restrict which proxies accept traffic (e.g. only SG-42 in July).
    pub fn set_active(&mut self, proxies: &[ProxyId]) {
        assert!(!proxies.is_empty(), "at least one active proxy required");
        self.active = proxies.to_vec();
    }

    /// Builder-style [`Self::set_active`], for wrapping a configured farm
    /// straight into an `Arc` shared across pipeline shards.
    pub fn with_active(mut self, proxies: &[ProxyId]) -> Self {
        self.set_active(proxies);
        self
    }

    /// The currently active proxies.
    pub fn active(&self) -> &[ProxyId] {
        &self.active
    }

    /// Shared access to the compiled policy (for analyses and tests).
    pub fn engine(&self) -> &PolicyEngine {
        &self.engine
    }

    /// The censorship mechanism this farm runs.
    pub fn profile(&self) -> &dyn CensorProfile {
        self.profile.as_ref()
    }

    /// Route a request to a proxy: uniform hash placement with the
    /// domain-based specialization overrides of [`config::ROUTE_BIASES`]
    /// (shared with the static skew report in `filterscope-policylint`).
    pub fn route(&self, req: &Request) -> ProxyId {
        let seed = self.config.seed;
        let key = req.identity_bytes();
        let h = decision_hash(seed, "route", &key);
        let pm = per_mille(decision_hash(seed, "route-special", &key));

        if self.active.len() == ProxyId::COUNT {
            let base = base_domain_of(&req.url.host);
            let is_ip = req.url.host_is_ip();
            for bias in crate::config::ROUTE_BIASES {
                if !bias.selects(&base, is_ip) {
                    continue;
                }
                if let Some(proxy) = bias.target(pm) {
                    return proxy;
                }
            }
        }
        self.active[(h % self.active.len() as u64) as usize]
    }

    /// Process a request end to end: route, decide, apply cache/error
    /// overlays, and produce the log record the appliance would write.
    pub fn process(&self, req: &Request) -> LogRecord {
        let proxy = self.route(req);
        self.process_on(req, proxy)
    }

    /// Process on a specific proxy (bypasses routing): resolve the policy
    /// verdict, then let the configured [`CensorProfile`] shape the record
    /// — the mechanism owns status/action/byte-count semantics, the farm
    /// owns routing and policy.
    pub fn process_on(&self, req: &Request, proxy: ProxyId) -> LogRecord {
        let mut filter_buf = String::new();
        self.process_on_with_buf(req, proxy, &mut filter_buf)
    }

    /// Process a whole batch of requests, appending the produced records to
    /// `out` in request order. One scratch buffer serves every policy
    /// evaluation in the batch (the scalar path allocates it per request);
    /// output is element-for-element identical to [`ProxyFarm::process`].
    pub fn process_batch(&self, reqs: &[Request], out: &mut Vec<LogRecord>) {
        out.reserve(reqs.len());
        let mut filter_buf = String::new();
        for req in reqs {
            let proxy = self.route(req);
            out.push(self.process_on_with_buf(req, proxy, &mut filter_buf));
        }
    }

    /// [`ProxyFarm::process_on`] against a caller-owned scratch buffer (see
    /// [`PolicyEngine::decide_with_buf`]).
    fn process_on_with_buf(
        &self,
        req: &Request,
        proxy: ProxyId,
        filter_buf: &mut String,
    ) -> LogRecord {
        let cfg = &self.config.proxies[proxy.index()];
        let verdict = self.engine.verdict_with_buf(cfg, req, filter_buf);
        self.profile.render(&ProfileContext {
            req,
            proxy,
            verdict,
            cache: &self.cache,
            errors: &self.errors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use filterscope_core::Timestamp;
    use filterscope_logformat::{
        ExceptionId, FilterResult, Method, RequestClass, RequestUrl, SAction,
    };

    fn ts(t: &str) -> Timestamp {
        Timestamp::parse_fields("2011-08-03", t).unwrap()
    }

    #[test]
    fn process_batch_is_identical_to_the_scalar_path() {
        let farm = ProxyFarm::standard();
        let reqs: Vec<Request> = [
            "example.com",
            "metacafe.com",      // blocked domain
            "proxy-bypass.test", // keyword in host
            "facebook.com",      // custom-category host
            "all4syria.info",    // redirect host
            "1.2.3.4",           // literal-IP host
            "plain.example",
        ]
        .iter()
        .enumerate()
        .map(|(i, host)| {
            Request::get(
                ts(&format!("09:00:{:02}", i)),
                RequestUrl::http(*host, "/some/path"),
            )
        })
        .collect();
        let want: Vec<LogRecord> = reqs.iter().map(|r| farm.process(r)).collect();
        let mut got = Vec::new();
        farm.process_batch(&reqs, &mut got);
        assert_eq!(got, want);
        // Appends without clearing, preserving caller-owned contents.
        let mut appended = vec![want[0].clone()];
        farm.process_batch(&reqs[..2], &mut appended);
        assert_eq!(appended.len(), 3);
        assert_eq!(appended[1..], want[..2]);
    }

    #[test]
    fn censored_request_produces_denied_record() {
        let farm = ProxyFarm::standard();
        let req = Request::get(
            ts("09:00:00"),
            RequestUrl::http("metacafe.com", "/watch/123"),
        );
        let rec = farm.process_on(&req, ProxyId::Sg48);
        // Either censored-denied or censored-proxied (cache overlay).
        assert!(rec.exception.is_policy() || rec.filter_result == FilterResult::Proxied);
        if rec.filter_result == FilterResult::Denied {
            assert_eq!(RequestClass::of(&rec), RequestClass::Censored);
            assert_eq!(rec.sc_status, 403);
            assert_eq!(rec.sc_bytes, 0);
            assert_eq!(rec.categories, "none"); // SG-48 names it `none`
        }
    }

    #[test]
    fn allowed_request_produces_observed_record() {
        let farm = ProxyFarm::standard();
        // Pick a URL that neither errors nor caches under the default seed.
        let mut found = false;
        for i in 0..50 {
            let req = Request::get(
                ts("09:00:00"),
                RequestUrl::http(format!("ok{i}.example"), "/index.html"),
            );
            let rec = farm.process_on(&req, ProxyId::Sg42);
            if rec.filter_result == FilterResult::Observed {
                assert_eq!(RequestClass::of(&rec), RequestClass::Allowed);
                assert_eq!(rec.sc_status, 200);
                assert!(rec.sc_bytes > 0);
                assert_eq!(rec.supplier, rec.url.host);
                assert_eq!(rec.categories, "unavailable");
                assert_eq!(rec.uri_ext, "html");
                found = true;
                break;
            }
        }
        assert!(found, "no plain-allowed record in 50 URLs");
    }

    #[test]
    fn redirect_logs_policy_redirect_action() {
        let farm = ProxyFarm::standard();
        let req = Request::get(
            ts("10:00:00"),
            RequestUrl::http("upload.youtube.com", "/up"),
        );
        let rec = farm.process_on(&req, ProxyId::Sg42);
        if rec.filter_result == FilterResult::Denied {
            assert_eq!(rec.exception, ExceptionId::PolicyRedirect);
            assert_eq!(rec.s_action, SAction::TcpPolicyRedirect);
            assert_eq!(rec.sc_status, 302);
        }
    }

    #[test]
    fn facebook_page_gets_blocked_sites_category() {
        let farm = ProxyFarm::standard();
        let req = Request::get(
            ts("10:00:00"),
            RequestUrl::http("www.facebook.com", "/Syrian.Revolution").with_query("ref=ts"),
        );
        let rec = farm.process_on(&req, ProxyId::Sg42);
        assert_eq!(rec.categories, "Blocked sites; unavailable");
        let rec48 = farm.process_on(&req, ProxyId::Sg48);
        assert_eq!(rec48.categories, "Blocked sites");
    }

    #[test]
    fn metacafe_routes_to_sg48() {
        let farm = ProxyFarm::standard();
        let mut sg48 = 0;
        let n = 1000;
        for i in 0..n {
            let req = Request::get(
                ts("09:00:00"),
                RequestUrl::http("www.metacafe.com", format!("/watch/{i}")),
            );
            if farm.route(&req) == ProxyId::Sg48 {
                sg48 += 1;
            }
        }
        assert!(sg48 > 930, "metacafe on SG-48: {sg48}/{n}");
    }

    #[test]
    fn generic_traffic_spreads_across_proxies() {
        let farm = ProxyFarm::standard();
        let mut counts = [0u32; 7];
        let n = 7000;
        for i in 0..n {
            let req = Request::get(
                ts("09:00:00"),
                RequestUrl::http(format!("site{i}.example"), "/"),
            );
            counts[farm.route(&req).index()] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!((600..1500).contains(c), "proxy {i} got {c} of {n} requests");
        }
    }

    #[test]
    fn restricted_active_set_routes_only_there() {
        let mut farm = ProxyFarm::standard();
        farm.set_active(&[ProxyId::Sg42]);
        for i in 0..100 {
            let req = Request::get(
                ts("09:00:00"),
                RequestUrl::http(format!("s{i}.example"), "/"),
            );
            assert_eq!(farm.route(&req), ProxyId::Sg42);
        }
    }

    #[test]
    fn processing_is_deterministic() {
        let farm = ProxyFarm::standard();
        let req = Request::get(
            ts("09:00:00"),
            RequestUrl::http("facebook.com", "/plugins/like.php"),
        );
        assert_eq!(farm.process(&req), farm.process(&req));
    }

    #[test]
    fn connect_tunnel_records_ssl_scheme() {
        let farm = ProxyFarm::standard();
        let req = Request::connect(ts("11:00:00"), "mail.example.org");
        let rec = farm.process_on(&req, ProxyId::Sg42);
        assert_eq!(rec.url.scheme, "ssl");
        assert_eq!(rec.method, Method::Connect);
        if rec.filter_result == FilterResult::Observed {
            assert_eq!(rec.s_action, SAction::TcpTunneled);
        }
    }

    #[test]
    fn israeli_connect_by_ip_is_censored() {
        let farm = ProxyFarm::standard();
        let req = Request::connect(ts("11:00:00"), "84.229.10.10");
        let rec = farm.process_on(&req, ProxyId::Sg47);
        assert!(
            rec.exception.is_policy() || rec.filter_result == FilterResult::Proxied,
            "{rec:?}"
        );
    }
}
