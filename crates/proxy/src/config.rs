//! Policy data and per-proxy configuration.
//!
//! The rule content encodes what §5.4–§6 of the paper recovered from the
//! logs: the five keywords, the suspected-domain list (105 domains in the
//! paper; a curated equivalent here, spanning the same Table 9 category
//! mix), the Israeli subnet blocks, the 11 redirect hosts of Table 7, and
//! the narrow Facebook-page patterns of Table 14.

use filterscope_core::ProxyId;

/// The five blacklisted keywords (Table 10). Substring-matched,
/// case-insensitively, against `host + path + ?query`.
pub const KEYWORDS: [&str; 5] = [
    "proxy",
    "hotspotshield",
    "ultrareach",
    "israel",
    "ultrasurf",
];

/// Domain suffixes for which no request is allowed (the paper's 105
/// "suspected" domains, §5.4/Table 8, spanning the Table 9 category mix;
/// `.il` blocks the whole Israeli ccTLD).
pub const BLOCKED_DOMAINS: &[&str] = &[
    // Instant messaging / VoIP (IM dominates censored volume, Table 9)
    "skype.com",
    "jumblo.com",
    "live.com",
    "ceipmsn.com",
    // Streaming media
    "metacafe.com",
    "dailymotion.com",
    "justin.tv",
    "ustream.tv",
    "vimeo.com",
    "tvkeys.net",
    // Education / reference
    "wikimedia.org",
    "wikipedia.org",
    "wiktionary.org",
    "scribd.com",
    // Online shopping
    "amazon.com",
    "souq.com",
    // Social networking (the always-censored OSNs of Table 13)
    "badoo.com",
    "netlog.com",
    "salamworld.com",
    "muslimup.com",
    "waatny.com",
    "shabakat-sy.net",
    // Israeli ccTLD, blocked wholesale
    "il",
    // General news / opposition (the largest category by domain count)
    "aawsat.com",
    "alquds.co.uk",
    "all4syria.info",
    "islammemo.cc",
    "new-syria.com",
    "free-syria.com",
    "syriarevolutionnews.com",
    "elaph.com",
    "alhiwar.net",
    "levantnews.com",
    "syriapol.com",
    "damaspost.net",
    "shaamtimes.net",
    "zamanalwsl.net",
    "souriahouria.com",
    "alkarama-sy.org",
    "halabnews.net",
    "homsrevolution.com",
    "darayanews.org",
    "ugarit-news.org",
    "sooryoon.net",
    "syriantube.net",
    "barada-tv.net",
    "orient-news.net",
    "al-sham-news.com",
    "freedomdays-sy.org",
    "tahrirsouri.com",
    "wattan-news.net",
    "syrialeaks.org",
    "deraa-news.com",
    "idlibnews.net",
    "kafranbel.org",
    "douma-coord.org",
    "lattakianews.net",
    // Internet services
    "jumpertel.net",
    "callserve.net",
    "voipcheap.net",
    "net2phone.net",
    "pc2call.net",
    "anymedia-sy.net",
    // Entertainment
    "6arab.com",
    "shobiklobik.com",
    "arabseed.net",
    "cima4u.net",
    // Forums / bulletin boards
    "jeddahbikers.com",
    "montadayat.org",
    "damascus-forum.com",
    "shabablek.com",
    "alnilin.com",
    "absba.org",
    "syria-forum.net",
    "freesyriatalk.org",
    // Religion
    "islamway.com",
    "islamdoor-sy.net",
    // Uncategorized long tail ("NA" in Table 9)
    "mirror-sy1.net",
    "mirror-sy2.net",
    "hostbox-dam.net",
    "cachefarm.info",
    "relay-station.info",
    "openpage.cc",
    "doorway.cc",
    "pagegate.cc",
    "linkpost.cc",
    "webdoor.cc",
];

/// Blocked destination subnets (Israeli space). Table 12 distinguishes two
/// groups: subnets that are almost always censored (`84.229.0.0/16`,
/// `46.120.0.0/15`, `89.138.0.0/15`) and subnets where allowed traffic
/// dominates (`212.150.0.0/16`, `212.235.64.0/19`) — the policy evidently
/// blocked only narrower slices of the latter two, which is what this rule
/// set encodes. The engine also consults these for CONNECT tunnels whose
/// `cs-host` is a literal address.
pub const BLOCKED_SUBNETS: [&str; 5] = [
    "84.229.0.0/16",
    "46.120.0.0/15",
    "89.138.0.0/15",
    "212.235.64.0/20",
    "212.150.160.0/21",
];

/// Hosts whose requests are redirected rather than denied (Table 7 minus
/// the Facebook entries, which are matched by the custom category below).
pub const REDIRECT_HOSTS: [&str; 9] = [
    "upload.youtube.com",
    "competition.mbc.net",
    "sharek.aljazeera.net",
    "upload.dailymotion.com",
    "share.metacafe.com",
    "submit.all4syria.info",
    "post.shaamtimes.net",
    "upload.syriantube.net",
    "contribute.barada-tv.net",
];

/// The targeted Facebook pages (Table 14). Matching is **case-sensitive**
/// and narrow: only the exact path with one of [`CUSTOM_CATEGORY_QUERIES`]
/// falls into the custom category — the paper shows the same page with an
/// extended query (`...&ajaxpipe=1&...`) escaping the rule.
pub const FACEBOOK_BLOCKED_PAGES: [&str; 12] = [
    "Syrian.Revolution",
    "Syrian.revolution",
    "syria.news.F.N.N",
    "ShaamNews",
    "fffm14",
    "barada.channel",
    "DaysOfRage",
    "Syrian.R.V",
    "YouthFreeSyria",
    "sooryoon",
    "Freedom.Of.Syria",
    "SyrianDayOfRage",
];

/// Query strings covered by the custom-category rules (everything else on a
/// targeted page path is allowed).
pub const CUSTOM_CATEGORY_QUERIES: [&str; 4] = ["", "ref=ts", "sk=wall", "ref=search"];

/// Facebook frontends the page rules apply to.
pub const FACEBOOK_HOSTS: [&str; 3] = ["www.facebook.com", "facebook.com", "ar-ar.facebook.com"];

/// What a routing specialization selects on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteSelector {
    /// Requests whose base domain is one of these.
    BaseDomains(&'static [&'static str]),
    /// Requests whose `cs-host` is a literal IPv4 address.
    LiteralIp,
}

/// One domain-based routing specialization (§5.1–§5.2): traffic matching
/// `selector` is concentrated on specific proxies instead of being placed
/// uniformly. `bands` are cumulative per-mille cut-offs over the request's
/// routing hash: the first `(proxy, cut)` with `hash‰ < cut` wins; a hash at
/// or past the last cut falls back to uniform placement.
#[derive(Debug, Clone, Copy)]
pub struct RouteBias {
    /// Which requests this bias applies to.
    pub selector: RouteSelector,
    /// Cumulative per-mille bands, ascending.
    pub bands: &'static [(ProxyId, u32)],
}

impl RouteBias {
    /// Does this bias select a request with the given base domain / IP-ness?
    pub fn selects(&self, base_domain: &str, host_is_ip: bool) -> bool {
        match self.selector {
            RouteSelector::BaseDomains(domains) => domains.contains(&base_domain),
            RouteSelector::LiteralIp => host_is_ip,
        }
    }

    /// The proxy a routing hash of `pm`‰ lands on, if any band covers it.
    pub fn target(&self, pm: u64) -> Option<ProxyId> {
        self.bands
            .iter()
            .find(|&&(_, cut)| pm < cut as u64)
            .map(|&(p, _)| p)
    }

    /// The per-mille share of selected traffic each proxy receives through
    /// this bias (the remainder is placed uniformly).
    pub fn share_per_mille(&self, proxy: ProxyId) -> u32 {
        let mut prev = 0;
        for &(p, cut) in self.bands {
            if p == proxy {
                return cut - prev;
            }
            prev = cut;
        }
        0
    }

    /// A stable human label for the selector (skew-report row heading).
    pub fn label(&self) -> String {
        match self.selector {
            RouteSelector::BaseDomains(domains) => domains.join("+"),
            RouteSelector::LiteralIp => "literal-IP hosts".to_string(),
        }
    }
}

/// The farm's routing specializations, in evaluation order (§5.2):
/// `metacafe.com` ≳95 % on SG-48, Instant-Messaging domains biased toward
/// SG-48/SG-45, literal-IP destinations biased toward SG-47.
pub const ROUTE_BIASES: &[RouteBias] = &[
    RouteBias {
        selector: RouteSelector::BaseDomains(&["metacafe.com"]),
        bands: &[(ProxyId::Sg48, 955)],
    },
    RouteBias {
        selector: RouteSelector::BaseDomains(&["skype.com", "live.com", "ceipmsn.com"]),
        bands: &[(ProxyId::Sg48, 500), (ProxyId::Sg45, 750)],
    },
    RouteBias {
        selector: RouteSelector::LiteralIp,
        bands: &[(ProxyId::Sg47, 600)],
    },
];

/// Per-proxy configuration.
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// Which appliance this is.
    pub id: ProxyId,
    /// `cs-categories` value for uncategorized URLs: `unavailable` on five
    /// proxies, `none` on SG-43 and SG-48 (§4, §5.2).
    pub default_category: &'static str,
    /// `cs-categories` value for custom-category hits.
    pub blocked_category: &'static str,
    /// Does this proxy run the (intermittent) Tor-relay rule? Only SG-44 in
    /// the paper, with a trace amount on SG-48 (§7.1).
    pub tor_rule_per_mille_cap: u32,
}

impl ProxyConfig {
    /// The deployment configuration for `id`, as inferred by the paper.
    pub fn standard(id: ProxyId) -> Self {
        let none_style = matches!(id, ProxyId::Sg43 | ProxyId::Sg48);
        ProxyConfig {
            id,
            default_category: if none_style { "none" } else { "unavailable" },
            blocked_category: if none_style {
                "Blocked sites"
            } else {
                "Blocked sites; unavailable"
            },
            tor_rule_per_mille_cap: match id {
                ProxyId::Sg44 => 900,
                ProxyId::Sg48 => 1,
                _ => 0,
            },
        }
    }
}

/// Farm-level configuration.
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// Per-proxy configs, indexed by [`ProxyId::index`].
    pub proxies: Vec<ProxyConfig>,
    /// Seed for all deterministic decisions (errors, cache, Tor windows).
    pub seed: u64,
    /// Overall network-error rate, per 100 000 requests (Table 3: ~5 310).
    pub error_per_cent_mille: u32,
    /// Cache (PROXIED) rate, per 100 000 requests (Table 3: ~470).
    pub proxied_per_cent_mille: u32,
    /// The censorship mechanism the deployment runs. The policy tiers are
    /// mechanism-independent; this selects how a decision manifests in the
    /// log (see [`crate::profile`]).
    pub profile: crate::profile::ProfileKind,
}

impl FarmConfig {
    /// The December-2012 regime: "Starting December 2012, Tor relays and
    /// bridges have reportedly been blocked" — every proxy blocks every
    /// known relay endpoint, unconditionally.
    pub fn tor_blocked_era() -> Self {
        let mut cfg = FarmConfig::default();
        for p in &mut cfg.proxies {
            p.tor_rule_per_mille_cap = 1000;
        }
        cfg
    }
}

impl Default for FarmConfig {
    fn default() -> Self {
        FarmConfig {
            proxies: ProxyId::ALL
                .iter()
                .map(|p| ProxyConfig::standard(*p))
                .collect(),
            seed: 0x5947_2011, // "SY 2011"
            error_per_cent_mille: 5_310,
            proxied_per_cent_mille: 470,
            profile: crate::profile::ProfileKind::BlueCoat,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_labels_follow_paper() {
        let sg42 = ProxyConfig::standard(ProxyId::Sg42);
        assert_eq!(sg42.default_category, "unavailable");
        assert_eq!(sg42.blocked_category, "Blocked sites; unavailable");
        let sg43 = ProxyConfig::standard(ProxyId::Sg43);
        assert_eq!(sg43.default_category, "none");
        assert_eq!(sg43.blocked_category, "Blocked sites");
        let sg48 = ProxyConfig::standard(ProxyId::Sg48);
        assert_eq!(sg48.default_category, "none");
    }

    #[test]
    fn only_sg44_runs_the_tor_rule_materially() {
        for p in ProxyId::ALL {
            let cap = ProxyConfig::standard(p).tor_rule_per_mille_cap;
            match p {
                ProxyId::Sg44 => assert!(cap > 100),
                ProxyId::Sg48 => assert!((1..10).contains(&cap)),
                _ => assert_eq!(cap, 0),
            }
        }
    }

    #[test]
    fn blocklists_contain_paper_entries() {
        assert!(BLOCKED_DOMAINS.contains(&"metacafe.com"));
        assert!(BLOCKED_DOMAINS.contains(&"il"));
        assert!(BLOCKED_DOMAINS.contains(&"badoo.com"));
        assert!(KEYWORDS.contains(&"proxy"));
        assert!(FACEBOOK_BLOCKED_PAGES.contains(&"Syrian.Revolution"));
        assert!(REDIRECT_HOSTS.contains(&"upload.youtube.com"));
        // Category breadth: at least 8 distinct Table 9 buckets represented.
        assert!(BLOCKED_DOMAINS.len() >= 80);
    }

    #[test]
    fn route_biases_encode_the_paper_specializations() {
        // metacafe.com → SG-48 at 955‰; IM split 500/250; IPs → SG-47 at 600.
        let metacafe = &ROUTE_BIASES[0];
        assert!(metacafe.selects("metacafe.com", false));
        assert!(!metacafe.selects("skype.com", false));
        assert_eq!(metacafe.target(0), Some(ProxyId::Sg48));
        assert_eq!(metacafe.target(954), Some(ProxyId::Sg48));
        assert_eq!(metacafe.target(955), None);
        assert_eq!(metacafe.share_per_mille(ProxyId::Sg48), 955);
        assert_eq!(metacafe.share_per_mille(ProxyId::Sg42), 0);

        let im = &ROUTE_BIASES[1];
        assert_eq!(im.target(499), Some(ProxyId::Sg48));
        assert_eq!(im.target(500), Some(ProxyId::Sg45));
        assert_eq!(im.target(750), None);
        assert_eq!(im.share_per_mille(ProxyId::Sg45), 250);

        let ip = &ROUTE_BIASES[2];
        assert!(ip.selects("84.229.0.1", true));
        assert!(!ip.selects("84.229.0.1", false));
        assert_eq!(ip.target(599), Some(ProxyId::Sg47));
        assert_eq!(ip.label(), "literal-IP hosts");
        assert_eq!(im.label(), "skype.com+live.com+ceipmsn.com");
    }

    #[test]
    fn tor_blocked_era_blocks_everywhere() {
        let f = FarmConfig::tor_blocked_era();
        assert!(f.proxies.iter().all(|p| p.tor_rule_per_mille_cap == 1000));
    }

    #[test]
    fn default_farm_has_seven_proxies() {
        let f = FarmConfig::default();
        assert_eq!(f.proxies.len(), 7);
        for (i, p) in f.proxies.iter().enumerate() {
            assert_eq!(p.id.index(), i);
        }
    }
}
