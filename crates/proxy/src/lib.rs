//! # filterscope-proxy
//!
//! A behavioural simulator of the Blue Coat SG-9000 filtering deployment the
//! paper studied: seven transparent proxies on the STE backbone, each
//! running a policy built from the four trigger families the paper recovers
//! in §5.4 —
//!
//! 1. **keyword rules** — a substring blacklist over `host + path + query`
//!    (`proxy`, `hotspotshield`, `ultrareach`, `israel`, `ultrasurf`);
//! 2. **URL/domain rules** — a suffix blacklist of ~105 domains, including
//!    the whole `.il` ccTLD;
//! 3. **IP rules** — destination-subnet blocks (Israeli space, Table 12);
//! 4. **custom-category rules** — the narrow "Blocked sites" category
//!    targeting specific Facebook pages with `policy_redirect` (§6), plus
//!    the redirect hosts of Table 7.
//!
//! plus the per-proxy quirks the paper observes: SG-44 alone censors Tor
//! circuit traffic, intermittently (§7.1, Fig. 9); SG-48 receives ~95 % of
//! `metacafe.com` traffic through domain-based routing (§5.2); SG-43/SG-48
//! name the default category `none` where the others say `unavailable`.
//!
//! The farm consumes [`Request`]s and emits [`filterscope_logformat::LogRecord`]s
//! exactly as the appliances would have logged them, including cache
//! (`PROXIED`) outcomes and the network-error mix of Table 3. Everything is
//! deterministic: outcomes are pure functions of (request, config), so a
//! regenerated corpus is byte-identical.

#![forbid(unsafe_code)]

pub mod artifact;
pub mod cache;
pub mod config;
pub mod cpl;
pub mod decision;
pub mod engine;
pub mod errors;
pub mod farm;
pub mod hashing;
pub mod policy_data;
pub mod profile;
pub mod request;

pub use artifact::CompiledPolicy;
pub use config::{FarmConfig, ProxyConfig};
pub use decision::{Decision, Trigger};
pub use engine::{PolicyEngine, Verdict};
pub use farm::ProxyFarm;
pub use policy_data::{PolicyData, RuleFamily};
pub use profile::{CensorProfile, ProfileKind};
pub use request::Request;
