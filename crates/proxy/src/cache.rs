//! The cache (`PROXIED`) overlay.
//!
//! ~0.47 % of requests resolve from the appliance cache and are logged
//! `PROXIED` (§3.3). The paper notes the exception breakdown inside
//! `PROXIED` "resembles that of the overall traffic", and that `PROXIED`
//! rows are *inconsistent*: requests to consistently-censored URLs
//! sometimes appear `PROXIED` with no exception at all. The model
//! reproduces both: cache hits are a per-(URL, time-bucket) hash draw, the
//! underlying decision's exception is usually preserved, and a fraction of
//! censored cache hits lose their exception (the logged inconsistency).

use crate::hashing::{decision_hash, per_cent_mille, per_mille};
use crate::request::Request;

/// Deterministic cache model.
#[derive(Debug, Clone)]
pub struct CacheModel {
    seed: u64,
    /// Cache-hit probability per 100 000 requests.
    rate_per_cent_mille: u32,
    /// Per-mille of censored cache hits whose exception is dropped in the
    /// log (the paper's observed inconsistency).
    drop_exception_per_mille: u32,
}

impl CacheModel {
    /// Model with the given hit rate and a default 400‰ exception-drop rate.
    pub fn new(seed: u64, rate_per_cent_mille: u32) -> Self {
        CacheModel {
            seed,
            rate_per_cent_mille,
            drop_exception_per_mille: 400,
        }
    }

    /// Is this request served from cache?
    ///
    /// Hashes URL identity plus a 10-minute time bucket: the same URL tends
    /// to hit or miss consistently within a bucket (cache residency), while
    /// different URLs are independent.
    pub fn is_cache_hit(&self, req: &Request) -> bool {
        let mut key = req.identity_bytes();
        let bucket = req.timestamp.epoch_seconds() / 600;
        key.extend_from_slice(&bucket.to_le_bytes());
        let h = decision_hash(self.seed, "cache-hit", &key);
        per_cent_mille(h) < self.rate_per_cent_mille as u64
    }

    /// For a censored request served from cache: is the policy exception
    /// dropped from the log record?
    pub fn drops_exception(&self, req: &Request) -> bool {
        let key = req.identity_bytes();
        let h = decision_hash(self.seed, "cache-drop-exc", &key);
        per_mille(h) < self.drop_exception_per_mille as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use filterscope_core::Timestamp;
    use filterscope_logformat::RequestUrl;

    fn t0() -> Timestamp {
        Timestamp::parse_fields("2011-08-03", "12:00:00").unwrap()
    }

    #[test]
    fn hit_rate_converges() {
        let m = CacheModel::new(3, 470);
        let n = 300_000;
        let hits = (0..n)
            .filter(|i| {
                m.is_cache_hit(&Request::get(
                    t0(),
                    RequestUrl::http(format!("h{i}.com"), "/"),
                ))
            })
            .count() as f64;
        let rate = hits / n as f64;
        assert!((rate - 0.0047).abs() < 0.001, "rate {rate}");
    }

    #[test]
    fn same_url_same_bucket_is_stable() {
        let m = CacheModel::new(3, 50_000);
        let url = RequestUrl::http("popular.com", "/asset.js");
        let a = m.is_cache_hit(&Request::get(t0(), url.clone()));
        let b = m.is_cache_hit(&Request::get(t0().plus_seconds(30), url.clone()));
        assert_eq!(a, b, "same 10-minute bucket must agree");
    }

    #[test]
    fn drop_rate_is_partial() {
        let m = CacheModel::new(3, 470);
        let n = 10_000;
        let drops = (0..n)
            .filter(|i| {
                m.drops_exception(&Request::get(
                    t0(),
                    RequestUrl::http(format!("c{i}.com"), "/"),
                ))
            })
            .count() as f64;
        let rate = drops / n as f64;
        assert!((rate - 0.4).abs() < 0.03, "rate {rate}");
    }
}
