//! Pluggable censorship mechanisms ("censor profiles").
//!
//! The paper reconstructs one censor — Syria's Blue Coat proxy farm — but
//! related work documents structurally different mechanisms measured the
//! same way: Pakistan's DNS poisoning + blockpage injection and
//! Turkmenistan's RST-based bidirectional IP blocking. [`CensorProfile`]
//! carves the mechanism out of the decision path: the farm routes and the
//! [`crate::engine::PolicyEngine`] produces a [`Verdict`]; the profile
//! turns `(request, verdict)` into the 26-field ELFF record that mechanism
//! would leave behind. The *policy* (what is censored) is shared across
//! profiles; only the observable footprint (how denial looks on the wire)
//! varies — which is exactly what lets `MechanismInference` in
//! `filterscope-analysis` recover the mechanism from logs alone.
//!
//! Per-mechanism censored-record signatures:
//!
//! | profile | censored record looks like |
//! |---|---|
//! | `blue-coat` | `DENIED` 403/302, zero body, `NONE` hierarchy, plus `PROXIED` cache leaks |
//! | `dns-poison` | `DENIED`, status `-` (0), zero bytes both ways — the name never resolved |
//! | `tcp-rst` | `DENIED`, status `-` (0), partial `sc-bytes` from the torn connection |
//! | `blockpage` | `OBSERVED` 200/302 with the canonical blockpage body, policy exception intact |
//!
//! Every profile keeps the policy exception (`policy_denied` /
//! `policy_redirect`) on censored records, so the classification layer
//! (`RequestClass::of_parts`) still counts them as censored and all 20
//! analyses run unchanged over mechanism-diverse traffic.

use crate::cache::CacheModel;
use crate::engine::Verdict;
use crate::errors::{ErrorModel, ERROR_MIX};
use crate::hashing::decision_hash;
use crate::request::Request;
use filterscope_core::ProxyId;
use filterscope_logformat::{ExceptionId, FilterResult, LogRecord, Method, SAction};

/// The mechanisms the simulator can run, in canonical order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfileKind {
    /// Transparent filtering proxy (the paper's Blue Coat SG-9000 farm).
    BlueCoat,
    /// Resolver-level DNS poisoning: NXDOMAIN or a forged A record.
    DnsPoison,
    /// On-path RST injection tearing down the connection mid-transfer.
    TcpRst,
    /// On-path HTTP injection answering with a canonical blockpage.
    BlockpageInject,
}

impl ProfileKind {
    /// All profiles, in canonical order (the order `MechanismInference`
    /// reports votes in).
    pub const ALL: [ProfileKind; 4] = [
        ProfileKind::BlueCoat,
        ProfileKind::DnsPoison,
        ProfileKind::TcpRst,
        ProfileKind::BlockpageInject,
    ];

    /// Stable CLI/metrics name.
    pub fn name(self) -> &'static str {
        match self {
            ProfileKind::BlueCoat => "blue-coat",
            ProfileKind::DnsPoison => "dns-poison",
            ProfileKind::TcpRst => "tcp-rst",
            ProfileKind::BlockpageInject => "blockpage",
        }
    }

    /// Position in [`Self::ALL`] (vote-array index in the inference).
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|k| *k == self).expect("in ALL")
    }

    /// Parse a mechanism name (the inverse of [`Self::name`]). Country
    /// presets (`pakistan`, `turkmenistan`, …) live in `filterscope-synth`.
    pub fn parse(name: &str) -> Option<ProfileKind> {
        ProfileKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// Construct the implementation for this mechanism.
    pub fn build(self) -> Box<dyn CensorProfile> {
        match self {
            ProfileKind::BlueCoat => Box::new(BlueCoatProxy),
            ProfileKind::DnsPoison => Box::new(DnsPoison),
            ProfileKind::TcpRst => Box::new(TcpRst),
            ProfileKind::BlockpageInject => Box::new(BlockpageInject),
        }
    }
}

/// Everything a profile may consult when rendering one request: the request
/// itself, where it was routed, the resolved policy verdict, and the
/// deterministic cache/error overlays (which each mechanism applies — or
/// ignores — according to its own semantics).
pub struct ProfileContext<'a> {
    /// The classified request.
    pub req: &'a Request,
    /// The appliance / vantage the record is attributed to.
    pub proxy: ProxyId,
    /// The compiled policy's decision + category label for this request.
    pub verdict: Verdict,
    /// Cache overlay (only meaningful for proxy-shaped mechanisms).
    pub cache: &'a CacheModel,
    /// Network-error overlay; profiles draw kinds from their own mix.
    pub errors: &'a ErrorModel,
}

/// One censorship mechanism: a pure function from classified request +
/// policy verdict to the log record that mechanism would produce.
///
/// Implementations must be deterministic (same context, same record) and
/// stateless — farms are shared `Send + Sync` across pipeline shards.
pub trait CensorProfile: Send + Sync {
    /// Which mechanism this is.
    fn kind(&self) -> ProfileKind;

    /// Stable name, for CLI flags and metrics labels.
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// The exception mix this mechanism's error overlay draws from
    /// (weights per 10 000 of error traffic; see
    /// [`ErrorModel::sample_from`]).
    fn error_mix(&self) -> &'static [(ExceptionId, u32)];

    /// Turn one decided request into the record the censor would log.
    fn render(&self, ctx: &ProfileContext<'_>) -> LogRecord;
}

/// The resolved outcome quintet every profile reduces a request to before
/// rendering; [`finish`] turns it into the proxy-shaped base record, which
/// non-proxy mechanisms then adjust field-by-field.
struct Outcome {
    filter_result: FilterResult,
    s_action: SAction,
    exception: ExceptionId,
    sc_status: u16,
    sc_bytes: u64,
}

/// Render the 26-field record for `outcome` — the Blue Coat record shape,
/// extracted verbatim from the pre-profile `ProxyFarm::process_on` so the
/// `blue-coat` profile stays byte-identical to the pre-refactor simulator.
fn finish(ctx: &ProfileContext<'_>, outcome: Outcome) -> LogRecord {
    let req = ctx.req;
    let Outcome {
        filter_result,
        s_action,
        exception,
        sc_status,
        sc_bytes,
    } = outcome;

    let served = filter_result != FilterResult::Denied;
    // A transparent proxy never sees inside a TLS tunnel: CONNECT
    // records carry only the endpoint — no path, query or extension
    // (this absence is exactly the paper's no-MITM evidence, §4).
    let url = if req.method == Method::Connect {
        filterscope_logformat::RequestUrl {
            scheme: req.url.scheme.clone(),
            host: req.url.host.clone(),
            port: req.url.port,
            path: "-".into(),
            query: String::new(),
        }
    } else {
        req.url.clone()
    };
    let uri_ext = url
        .extension()
        .filter(|e| *e != "-")
        .unwrap_or("")
        .to_string();
    let content_type = if !served || req.method == Method::Connect {
        String::new()
    } else {
        content_type_for(&uri_ext).to_string()
    };

    LogRecord {
        timestamp: req.timestamp,
        time_taken_ms: time_taken(req, filter_result),
        client: req.client,
        sc_status,
        s_action,
        sc_bytes,
        cs_bytes: 300 + (url.path.len() + url.query.len()) as u64,
        method: req.method.clone(),
        url,
        uri_ext,
        username: String::new(),
        hierarchy: if served {
            "DIRECT".into()
        } else {
            "NONE".into()
        },
        // A host of literally "-" would collide with the absent-field
        // marker on disk; such a degenerate supplier is logged as absent.
        supplier: if served && req.url.host != "-" {
            req.url.host.clone()
        } else {
            String::new()
        },
        content_type,
        user_agent: req.user_agent.clone(),
        filter_result,
        categories: ctx.verdict.categories.to_string(),
        virus_id: String::new(),
        s_ip: ctx.proxy.s_ip(),
        sitename: "SG-HTTP-Service".into(),
        exception,
    }
}

/// The non-censored path shared by the on-path mechanisms (DNS, RST,
/// blockpage): no proxy cache exists at their vantage, so allowed traffic
/// is either struck by a mechanism-scoped network error or observed intact.
fn render_uncensored(profile: &dyn CensorProfile, ctx: &ProfileContext<'_>) -> LogRecord {
    let req = ctx.req;
    let outcome = if let Some(err) = ctx.errors.sample_from(req, profile.error_mix()) {
        let status = match err {
            ExceptionId::DnsUnresolvedHostname | ExceptionId::DnsServerFailure => 503,
            ExceptionId::InvalidRequest => 400,
            _ => 503,
        };
        Outcome {
            filter_result: FilterResult::Denied,
            s_action: SAction::TcpErrMiss,
            exception: err,
            sc_status: status,
            sc_bytes: 0,
        }
    } else {
        let action = if req.method == Method::Connect {
            SAction::TcpTunneled
        } else {
            SAction::TcpNcMiss
        };
        Outcome {
            filter_result: FilterResult::Observed,
            s_action: action,
            exception: ExceptionId::None,
            sc_status: 200,
            sc_bytes: req.response_bytes,
        }
    };
    finish(ctx, outcome)
}

/// Today's behaviour: the transparent Blue Coat proxy farm, with the cache
/// (`PROXIED`) overlay and the full Table 3 error mix. Byte-identical to
/// the pre-profile simulator by construction — the outcome resolution and
/// the record shape are the extracted `process_on` body, unchanged.
pub struct BlueCoatProxy;

impl CensorProfile for BlueCoatProxy {
    fn kind(&self) -> ProfileKind {
        ProfileKind::BlueCoat
    }

    fn error_mix(&self) -> &'static [(ExceptionId, u32)] {
        &ERROR_MIX
    }

    fn render(&self, ctx: &ProfileContext<'_>) -> LogRecord {
        let req = ctx.req;
        let decision = ctx.verdict.decision;
        let cache_hit = ctx.cache.is_cache_hit(req);

        // Outcome resolution.
        let outcome = if decision.is_censored() {
            let exception = decision.exception();
            if cache_hit {
                // PROXIED rows for censored URLs sometimes lose the
                // exception — the inconsistency §3.3 observes.
                let exc = if ctx.cache.drops_exception(req) {
                    ExceptionId::None
                } else {
                    exception
                };
                Outcome {
                    filter_result: FilterResult::Proxied,
                    s_action: SAction::TcpHit,
                    exception: exc,
                    sc_status: 403,
                    sc_bytes: 0,
                }
            } else {
                Outcome {
                    filter_result: FilterResult::Denied,
                    s_action: if decision.is_redirect() {
                        SAction::TcpPolicyRedirect
                    } else {
                        SAction::TcpDenied
                    },
                    exception,
                    sc_status: if decision.is_redirect() { 302 } else { 403 },
                    sc_bytes: 0,
                }
            }
        } else if cache_hit {
            Outcome {
                filter_result: FilterResult::Proxied,
                s_action: SAction::TcpHit,
                exception: ExceptionId::None,
                sc_status: 200,
                sc_bytes: req.response_bytes,
            }
        } else if let Some(err) = ctx.errors.sample_from(req, self.error_mix()) {
            let status = match err {
                ExceptionId::DnsUnresolvedHostname | ExceptionId::DnsServerFailure => 503,
                ExceptionId::InvalidRequest => 400,
                _ => 503,
            };
            Outcome {
                filter_result: FilterResult::Denied,
                s_action: SAction::TcpErrMiss,
                exception: err,
                sc_status: status,
                sc_bytes: 0,
            }
        } else {
            let action = if req.method == Method::Connect {
                SAction::TcpTunneled
            } else {
                SAction::TcpNcMiss
            };
            Outcome {
                filter_result: FilterResult::Observed,
                s_action: action,
                exception: ExceptionId::None,
                sc_status: 200,
                sc_bytes: req.response_bytes,
            }
        };

        finish(ctx, outcome)
    }
}

/// The forged answer a poisoned resolver returns for the forged-A minority
/// (a TEST-NET-2 address, recognisably not the origin).
pub const FORGED_A_SUPPLIER: &str = "198.51.100.7";

/// DNS poisoning mix: the resolver vantage only ever observes resolution
/// failures (and the TCP errors of clients that bypassed it).
const DNS_ERROR_MIX: [(ExceptionId, u32); 3] = [
    (ExceptionId::DnsUnresolvedHostname, 6_000),
    (ExceptionId::DnsServerFailure, 2_500),
    (ExceptionId::TcpError, 1_500),
];

/// Resolver-level DNS poisoning (Pakistan's NCP-era mechanism): a censored
/// name never resolves, so no HTTP request crosses the wire at all — status
/// `-` (0), zero bytes in both directions, no supplier. A hash-chosen
/// minority gets a *forged A* answer instead of NXDOMAIN, logged with the
/// injector's address as supplier.
pub struct DnsPoison;

impl CensorProfile for DnsPoison {
    fn kind(&self) -> ProfileKind {
        ProfileKind::DnsPoison
    }

    fn error_mix(&self) -> &'static [(ExceptionId, u32)] {
        &DNS_ERROR_MIX
    }

    fn render(&self, ctx: &ProfileContext<'_>) -> LogRecord {
        let req = ctx.req;
        let decision = ctx.verdict.decision;
        if !decision.is_censored() {
            return render_uncensored(self, ctx);
        }
        let mut rec = finish(
            ctx,
            Outcome {
                filter_result: FilterResult::Denied,
                s_action: SAction::TcpErrMiss,
                exception: decision.exception(),
                sc_status: 0,
                sc_bytes: 0,
            },
        );
        let h = decision_hash(0x0044_4E53, "dns-poison", &req.identity_bytes());
        // The name never resolved: the client sent no HTTP request, and the
        // only latency is the resolver round trip.
        rec.cs_bytes = 0;
        rec.time_taken_ms = 1 + (h % 10) as u32;
        // ~25 % of poisoned answers are forged A records rather than
        // NXDOMAIN: the client connects to the injector's address.
        if h.is_multiple_of(4) {
            rec.supplier = FORGED_A_SUPPLIER.to_string();
        }
        rec
    }
}

/// RST injection mix: the on-path injector's vantage is TCP; DNS failures
/// are the client's own resolver misbehaving.
const RST_ERROR_MIX: [(ExceptionId, u32); 3] = [
    (ExceptionId::TcpError, 9_000),
    (ExceptionId::DnsUnresolvedHostname, 700),
    (ExceptionId::DnsServerFailure, 300),
];

/// On-path RST injection (Turkmenistan-style bidirectional blocking): the
/// connection reaches the origin and is torn down mid-transfer — status `-`
/// (0) with a *partial* body, `DIRECT` hierarchy and the real supplier,
/// because bytes genuinely flowed before the forged reset landed.
pub struct TcpRst;

impl CensorProfile for TcpRst {
    fn kind(&self) -> ProfileKind {
        ProfileKind::TcpRst
    }

    fn error_mix(&self) -> &'static [(ExceptionId, u32)] {
        &RST_ERROR_MIX
    }

    fn render(&self, ctx: &ProfileContext<'_>) -> LogRecord {
        let req = ctx.req;
        let decision = ctx.verdict.decision;
        if !decision.is_censored() {
            return render_uncensored(self, ctx);
        }
        let h = decision_hash(0x0052_5354, "tcp-rst", &req.identity_bytes());
        let mut rec = finish(
            ctx,
            Outcome {
                filter_result: FilterResult::Denied,
                s_action: SAction::TcpErrMiss,
                exception: decision.exception(),
                sc_status: 0,
                // Up to one MSS of response leaked before the reset.
                sc_bytes: (40 + h % 1460).min(req.response_bytes.max(40)),
            },
        );
        // The flow went direct and the origin answered until the reset.
        rec.hierarchy = "DIRECT".into();
        if req.url.host != "-" {
            rec.supplier = req.url.host.clone();
        }
        rec
    }
}

/// Injection mix: same vantage as RST injection.
const BLOCKPAGE_ERROR_MIX: [(ExceptionId, u32); 3] = [
    (ExceptionId::TcpError, 7_000),
    (ExceptionId::DnsUnresolvedHostname, 2_000),
    (ExceptionId::DnsServerFailure, 1_000),
];

/// Body size of the canonical injected blockpage.
pub const BLOCKPAGE_BYTES: u64 = 2_891;

/// Body size of the injected 302 redirect to the blockpage host.
pub const BLOCKPAGE_REDIRECT_BYTES: u64 = 563;

/// On-path blockpage injection (Pakistan's HTTP-level mechanism): the
/// censor races the origin with a complete 200 response carrying the
/// canonical blockpage, or a 302 to the blockpage host for redirect rules.
/// The transfer *succeeds* — `OBSERVED`, `DIRECT`, real supplier — but the
/// policy exception stays on the record, so classification still counts it
/// censored while the body size and status betray the mechanism.
pub struct BlockpageInject;

impl CensorProfile for BlockpageInject {
    fn kind(&self) -> ProfileKind {
        ProfileKind::BlockpageInject
    }

    fn error_mix(&self) -> &'static [(ExceptionId, u32)] {
        &BLOCKPAGE_ERROR_MIX
    }

    fn render(&self, ctx: &ProfileContext<'_>) -> LogRecord {
        let req = ctx.req;
        let decision = ctx.verdict.decision;
        if !decision.is_censored() {
            return render_uncensored(self, ctx);
        }
        let redirect = decision.is_redirect();
        let mut rec = finish(
            ctx,
            Outcome {
                filter_result: FilterResult::Observed,
                s_action: if redirect {
                    SAction::TcpPolicyRedirect
                } else {
                    SAction::TcpNcMiss
                },
                exception: decision.exception(),
                sc_status: if redirect { 302 } else { 200 },
                sc_bytes: if redirect {
                    BLOCKPAGE_REDIRECT_BYTES
                } else {
                    BLOCKPAGE_BYTES
                },
            },
        );
        // The injected answer is always an HTML page, whatever was asked
        // for — mismatched content type is part of the fingerprint.
        if req.method != Method::Connect {
            rec.content_type = "text/html".to_string();
        }
        // Injected from on-path hardware near the client: faster than any
        // origin round trip.
        let h = decision_hash(0x0042_5047, "blockpage", &req.identity_bytes());
        rec.time_taken_ms = 1 + (h % 20) as u32;
        rec
    }
}

/// Plausible `time-taken` values: censored decisions are local and fast;
/// served requests include origin round trips.
fn time_taken(req: &Request, fr: FilterResult) -> u32 {
    let h = decision_hash(0x71AE, "time-taken", &req.identity_bytes());
    match fr {
        FilterResult::Denied => 1 + (h % 30) as u32,
        FilterResult::Proxied => 1 + (h % 15) as u32,
        FilterResult::Observed => 40 + (h % 900) as u32,
    }
}

/// Content type from extension (only for served responses).
fn content_type_for(ext: &str) -> &'static str {
    match ext {
        "js" => "application/x-javascript",
        "css" => "text/css",
        "png" => "image/png",
        "jpg" | "jpeg" => "image/jpeg",
        "gif" => "image/gif",
        "flv" => "video/x-flv",
        "swf" => "application/x-shockwave-flash",
        "xml" => "text/xml",
        "json" => "application/json",
        "ico" => "image/x-icon",
        "" | "php" | "html" | "htm" | "asp" | "aspx" => "text/html",
        _ => "application/octet-stream",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FarmConfig;
    use crate::farm::ProxyFarm;
    use filterscope_core::Timestamp;
    use filterscope_logformat::{RequestClass, RequestUrl};

    fn farm(kind: ProfileKind) -> ProxyFarm {
        let config = FarmConfig {
            profile: kind,
            ..FarmConfig::default()
        };
        ProxyFarm::new(config, None)
    }

    fn ts(t: &str) -> Timestamp {
        Timestamp::parse_fields("2011-08-03", t).unwrap()
    }

    /// A censored GET that no profile's cache/error overlay disturbs: the
    /// blue-coat farm denies it outright (not PROXIED) under the default
    /// seed, so the same request pins all four mechanism shapes.
    fn censored_req() -> Request {
        Request::get(
            ts("09:00:00"),
            RequestUrl::http("www.metacafe.com", "/watch/4351").with_query("src=syria"),
        )
    }

    #[test]
    fn kind_names_roundtrip() {
        for kind in ProfileKind::ALL {
            assert_eq!(ProfileKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.build().kind(), kind);
            assert_eq!(kind.build().name(), kind.name());
            assert_eq!(ProfileKind::ALL[kind.index()], kind);
        }
        assert_eq!(ProfileKind::parse("narnia"), None);
    }

    /// Golden exemplars: one pinned ELFF line per profile for the same
    /// censored request, so mechanism signatures cannot drift silently.
    /// (`sc-status` 0 serializes as `-`; the policy exception survives in
    /// every mechanism.)
    #[test]
    fn golden_censored_record_per_profile() {
        let req = censored_req();
        let golden = [
            (
                ProfileKind::BlueCoat,
                "2011-08-03,09:00:00,15,0.0.0.0,403,TCP_DENIED,0,320,GET,http,www.metacafe.com,80,/watch/4351,src=syria,-,-,NONE,-,-,Mozilla/5.0,DENIED,unavailable,-,82.137.200.42,SG-HTTP-Service,policy_denied",
            ),
            (
                ProfileKind::DnsPoison,
                "2011-08-03,09:00:00,4,0.0.0.0,-,TCP_ERR_MISS,0,0,GET,http,www.metacafe.com,80,/watch/4351,src=syria,-,-,NONE,-,-,Mozilla/5.0,DENIED,unavailable,-,82.137.200.42,SG-HTTP-Service,policy_denied",
            ),
            (
                ProfileKind::TcpRst,
                "2011-08-03,09:00:00,15,0.0.0.0,-,TCP_ERR_MISS,1254,320,GET,http,www.metacafe.com,80,/watch/4351,src=syria,-,-,DIRECT,www.metacafe.com,-,Mozilla/5.0,DENIED,unavailable,-,82.137.200.42,SG-HTTP-Service,policy_denied",
            ),
            (
                ProfileKind::BlockpageInject,
                "2011-08-03,09:00:00,16,0.0.0.0,200,TCP_NC_MISS,2891,320,GET,http,www.metacafe.com,80,/watch/4351,src=syria,-,-,DIRECT,www.metacafe.com,text/html,Mozilla/5.0,OBSERVED,unavailable,-,82.137.200.42,SG-HTTP-Service,policy_denied",
            ),
        ];
        for (kind, want) in golden {
            let rec = farm(kind).process_on(&req, filterscope_core::ProxyId::Sg42);
            assert_eq!(rec.write_csv(), want, "{} exemplar drifted", kind.name());
            // And the line round-trips through the parser.
            let back = filterscope_logformat::parse_line(want, 1).unwrap();
            assert_eq!(back, rec, "{} roundtrip", kind.name());
        }
    }

    #[test]
    fn every_profile_keeps_censored_classification() {
        let req = censored_req();
        for kind in ProfileKind::ALL {
            let rec = farm(kind).process_on(&req, filterscope_core::ProxyId::Sg42);
            assert_eq!(
                RequestClass::of(&rec),
                RequestClass::Censored,
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn allowed_traffic_is_mechanism_invariant_in_volume() {
        // Swapping the censor must not change which requests are allowed
        // or error — only the censored records' shape (and the proxy-only
        // cache overlay).
        let farms: Vec<ProxyFarm> = ProfileKind::ALL.iter().map(|k| farm(*k)).collect();
        for i in 0..200 {
            let req = Request::get(
                ts("10:00:00"),
                RequestUrl::http(format!("ok{i}.example"), "/index.html"),
            );
            let base = farms[0].process(&req);
            if base.filter_result == FilterResult::Proxied {
                continue; // cache overlay is proxy-only by design
            }
            for (kind, f) in ProfileKind::ALL.iter().zip(&farms).skip(1) {
                let rec = f.process(&req);
                assert_eq!(
                    RequestClass::of(&base).is_denied(),
                    RequestClass::of(&rec).is_denied(),
                    "{} diverged on allowed/error split for ok{i}.example",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn dns_poison_never_emits_proxy_only_exceptions() {
        let f = farm(ProfileKind::DnsPoison);
        let mut errors = 0;
        for i in 0..20_000 {
            let req = Request::get(
                ts("10:00:00"),
                RequestUrl::http(format!("host{i}.example"), "/"),
            );
            let rec = f.process(&req);
            if RequestClass::of(&rec) == RequestClass::Error {
                errors += 1;
                assert!(
                    matches!(
                        rec.exception,
                        ExceptionId::DnsUnresolvedHostname
                            | ExceptionId::DnsServerFailure
                            | ExceptionId::TcpError
                    ),
                    "proxy-only exception {:?} from the DNS profile",
                    rec.exception
                );
            }
        }
        assert!(errors > 100, "error overlay active ({errors})");
    }

    #[test]
    fn forged_a_minority_carries_injector_supplier() {
        let f = farm(ProfileKind::DnsPoison);
        let mut forged = 0u32;
        let mut nx = 0u32;
        for i in 0..2_000 {
            let req = Request::get(
                ts("09:00:00"),
                RequestUrl::http("metacafe.com", format!("/watch/{i}")),
            );
            let rec = f.process(&req);
            if !rec.exception.is_policy() {
                continue;
            }
            assert_eq!(rec.sc_status, 0);
            assert_eq!(rec.sc_bytes, 0);
            assert_eq!(rec.cs_bytes, 0);
            match rec.supplier.as_str() {
                FORGED_A_SUPPLIER => forged += 1,
                "" => nx += 1,
                other => panic!("unexpected supplier {other}"),
            }
        }
        assert!(forged > 300, "forged-A share too small: {forged}");
        assert!(nx > 1_000, "NXDOMAIN share too small: {nx}");
    }

    #[test]
    fn tcp_rst_leaks_partial_bytes() {
        let f = farm(ProfileKind::TcpRst);
        for i in 0..500 {
            let req = Request::get(
                ts("09:00:00"),
                RequestUrl::http("metacafe.com", format!("/watch/{i}")),
            );
            let rec = f.process(&req);
            if rec.exception.is_policy() {
                assert_eq!(rec.sc_status, 0);
                assert!(
                    (1..=1500).contains(&rec.sc_bytes),
                    "partial bytes {}",
                    rec.sc_bytes
                );
                assert_eq!(rec.hierarchy, "DIRECT");
            }
        }
    }

    #[test]
    fn blockpage_redirect_rules_inject_302() {
        let f = farm(ProfileKind::BlockpageInject);
        let req = Request::get(
            ts("10:00:00"),
            RequestUrl::http("upload.youtube.com", "/up"),
        );
        let rec = f.process(&req);
        assert_eq!(rec.exception, ExceptionId::PolicyRedirect);
        assert_eq!(rec.sc_status, 302);
        assert_eq!(rec.sc_bytes, BLOCKPAGE_REDIRECT_BYTES);
        assert_eq!(rec.filter_result, FilterResult::Observed);
        assert_eq!(RequestClass::of(&rec), RequestClass::Censored);
    }
}
