//! The policy engine: one compiled rule set, evaluated per request.

use crate::config::ProxyConfig;
use crate::decision::{Decision, Trigger};
use crate::hashing::{decision_hash, per_mille};
use crate::policy_data::PolicyData;
use crate::request::Request;
use filterscope_core::Timestamp;
use filterscope_match::{AcDfa, CidrSet, DomainIndex};
use filterscope_tor::signaling;
use filterscope_tor::RelayIndex;
use std::collections::HashSet;
use std::sync::Arc;

/// A compiled policy, shared across the farm (the paper finds the proxies
/// run near-identical rule sets; per-proxy differences live in
/// [`ProxyConfig`]).
///
/// The two hot structures are the *compiled* forms — a dense keyword DFA
/// and a flat domain index — decision-identical to the build-time
/// automaton/trie (property-tested in `filterscope-match`) and directly
/// serializable into the policy artifact (`crate::artifact`).
pub struct PolicyEngine {
    pub(crate) keywords: AcDfa,
    pub(crate) domains: DomainIndex,
    pub(crate) subnets: CidrSet,
    pub(crate) redirect_hosts: HashSet<String>,
    /// `(host, "/<page>")` pairs under the custom category.
    pub(crate) custom_pages: HashSet<(String, String)>,
    pub(crate) custom_queries: HashSet<String>,
    /// Tor relay endpoints by date, shared with the workload generator.
    pub(crate) relays: Option<Arc<RelayIndex>>,
    pub(crate) seed: u64,
}

impl PolicyEngine {
    /// Compile the standard rule set. `relays` enables the SG-44 Tor rule;
    /// pass `None` to run without Tor awareness.
    pub fn standard(relays: Option<Arc<RelayIndex>>, seed: u64) -> Self {
        Self::from_data(&PolicyData::standard(), relays, seed)
    }

    /// Compile an arbitrary policy (e.g. one recovered by the §5.4
    /// inference, parsed from CPL, or an ablated variant).
    pub fn from_data(data: &PolicyData, relays: Option<Arc<RelayIndex>>, seed: u64) -> Self {
        PolicyEngine {
            keywords: AcDfa::build(&data.keywords, true),
            domains: DomainIndex::from_entries(data.blocked_domains.iter().map(|s| s.as_str())),
            subnets: CidrSet::from_blocks(data.blocked_subnets.iter().copied()),
            redirect_hosts: data.redirect_hosts.iter().cloned().collect(),
            custom_pages: data.custom_pages.iter().cloned().collect(),
            custom_queries: data.custom_queries.iter().cloned().collect(),
            relays: relays.clone(),
            seed,
        }
    }

    /// Is `(host, path, query)` covered by a custom-category rule?
    pub fn in_custom_category(&self, host: &str, path: &str, query: &str) -> bool {
        self.custom_queries.contains(query)
            && self
                .custom_pages
                .contains(&(host.to_string(), path.to_string()))
    }

    /// Is the SG-44-style Tor rule active for `relay_addr` at `ts`, given a
    /// proxy whose cap is `cap_per_mille`?
    ///
    /// The window model reproduces Fig. 9's alternation: per (day, hour) the
    /// rule intensity is 0 ("all allowed"), mild, or aggressive, chosen by
    /// hash; within an active window each relay is independently blocked by
    /// a per-(relay, hour) hash under the intensity. The rule only engages
    /// from August 2 on (the paper sees no Tor censorship on the first day).
    pub fn tor_rule_active(
        &self,
        cap_per_mille: u32,
        relay_addr: std::net::Ipv4Addr,
        ts: Timestamp,
    ) -> bool {
        if cap_per_mille == 0 {
            return false;
        }
        // A cap of 1000‰ means wholesale blocking (the December-2012 regime
        // the paper's epilogue reports): no testing windows, no onset date.
        if cap_per_mille >= 1000 {
            return true;
        }
        let date = ts.date();
        // No Tor censorship before 2011-08-02.
        if (date.year(), date.month(), date.day()) < (2011, 8, 2) {
            return false;
        }
        let day = date.days_from_civil() as u64;
        let hour = ts.time().hour() as u64;
        let window = decision_hash(self.seed, "tor-window", &[day as u8, hour as u8]);
        let intensity = match per_mille(window) {
            // ~40% of hours: rule fully off → Rfilter = 0 episodes.
            0..=399 => 0,
            // ~35% of hours: mild.
            400..=749 => 300,
            // ~25% of hours: aggressive.
            _ => 950,
        };
        let intensity = intensity.min(cap_per_mille as u64);
        if intensity == 0 {
            return false;
        }
        let mut key = Vec::with_capacity(12);
        key.extend_from_slice(&u32::from(relay_addr).to_le_bytes());
        key.extend_from_slice(&(day * 24 + hour).to_le_bytes());
        per_mille(decision_hash(self.seed, "tor-relay", &key)) < intensity
    }

    /// Evaluate the static rule tiers for a bare URL — the witness-execution
    /// hook used by `filterscope-policylint`.
    ///
    /// Runs the *real* [`PolicyEngine::decide`] path on a plain GET with a
    /// fixed in-study timestamp and the SG-42 configuration, whose Tor cap
    /// is 0 — so the decision is a pure function of the URL and the five
    /// static rule families, independent of relay data and wall-clock state.
    pub fn decide_url(&self, url: &filterscope_logformat::RequestUrl) -> Decision {
        let ts = Timestamp::parse_fields("2011-08-03", "12:00:00").expect("static literal");
        let req = Request::get(ts, url.clone());
        self.decide(
            &ProxyConfig::standard(filterscope_core::ProxyId::Sg42),
            &req,
        )
    }

    /// Evaluate the policy for `req` on a proxy configured as `cfg`.
    pub fn decide(&self, cfg: &ProxyConfig, req: &Request) -> Decision {
        let mut filter_buf = String::new();
        self.decide_with_buf(cfg, req, &mut filter_buf)
    }

    /// [`PolicyEngine::decide`] with a caller-owned scratch buffer for the
    /// tier-3 keyword scan's host+path+query view. The batch paths reuse one
    /// buffer across a whole block of requests instead of allocating per
    /// request; results are identical.
    pub fn decide_with_buf(
        &self,
        cfg: &ProxyConfig,
        req: &Request,
        filter_buf: &mut String,
    ) -> Decision {
        let url = &req.url;

        // 1. Custom-category rules (narrow Facebook-page patterns).
        if self.in_custom_category(&url.host, &url.path, &url.query) {
            return Decision::Redirect(Trigger::CustomCategory);
        }

        // 2. Redirect hosts (Table 7).
        if self.redirect_hosts.contains(&url.host) {
            return Decision::Redirect(Trigger::RedirectHost);
        }

        // 3. Keyword scan over host+path+query.
        url.filter_view_into(filter_buf);
        if self.keywords.is_match(filter_buf.as_bytes()) {
            return Decision::Deny(Trigger::Keyword);
        }

        // 4. Domain suffix blacklist.
        if self.domains.matches(&url.host) {
            return Decision::Deny(Trigger::Domain);
        }

        // 5. Destination-subnet blacklist (literal-IP hosts).
        if let Some(ip) = url.host_ip() {
            if self.subnets.contains(ip) {
                return Decision::Deny(Trigger::IpSubnet);
            }
            // 6. Tor relay rule. In the leak era only circuit traffic
            //    (Tor_onion) is censored, never directory signaling (§7.1:
            //    Tor_http is always allowed); the wholesale December-2012
            //    regime (cap ≥ 1000) blocks every relay endpoint.
            if let Some(relays) = &self.relays {
                let cap = cfg.tor_rule_per_mille_cap;
                let wholesale = cap >= 1000;
                if cap > 0
                    && (wholesale || !signaling::is_dir_path(&url.path))
                    && relays.contains(ip, url.port, req.timestamp.date())
                    && self.tor_rule_active(cap, ip, req.timestamp)
                {
                    return Decision::Deny(Trigger::TorRelay);
                }
            }
        }

        Decision::Allow
    }

    /// The `cs-categories` value to log for `req` under `decision`.
    pub fn category_label(&self, cfg: &ProxyConfig, decision: Decision) -> &'static str {
        match decision {
            Decision::Redirect(Trigger::CustomCategory) => cfg.blocked_category,
            _ => cfg.default_category,
        }
    }

    /// Evaluate the policy and resolve the category label in one step — the
    /// classified outcome a [`crate::profile::CensorProfile`] turns into a
    /// log record. The policy (what is censored) is decided here, once;
    /// the mechanism (how denial looks on the wire) lives in the profile.
    pub fn verdict(&self, cfg: &ProxyConfig, req: &Request) -> Verdict {
        let decision = self.decide(cfg, req);
        Verdict {
            decision,
            categories: self.category_label(cfg, decision),
        }
    }

    /// [`PolicyEngine::verdict`] with a caller-owned scratch buffer (see
    /// [`PolicyEngine::decide_with_buf`]).
    pub fn verdict_with_buf(
        &self,
        cfg: &ProxyConfig,
        req: &Request,
        filter_buf: &mut String,
    ) -> Verdict {
        let decision = self.decide_with_buf(cfg, req, filter_buf);
        Verdict {
            decision,
            categories: self.category_label(cfg, decision),
        }
    }

    /// Decide a whole batch of requests under one proxy config, appending
    /// to `out`. One scratch buffer serves every tier-3 keyword scan, so
    /// the per-request allocation of the scalar path disappears; results
    /// are element-for-element identical to calling
    /// [`PolicyEngine::decide`] in a loop.
    pub fn decide_batch(&self, cfg: &ProxyConfig, reqs: &[Request], out: &mut Vec<Decision>) {
        out.reserve(reqs.len());
        let mut filter_buf = String::new();
        for req in reqs {
            out.push(self.decide_with_buf(cfg, req, &mut filter_buf));
        }
    }
}

/// A fully resolved policy outcome for one request on one proxy: the
/// decision plus the `cs-categories` label that proxy's config assigns it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// Allow / deny / redirect, with the trigger when censored.
    pub decision: Decision,
    /// The category string the appliance logs for this outcome.
    pub categories: &'static str,
}

#[cfg(test)]
mod tests {
    use super::*;
    use filterscope_core::ProxyId;
    use filterscope_logformat::RequestUrl;
    use filterscope_tor::{synthesize_consensus, SynthConsensusConfig};

    fn ts(d: &str, t: &str) -> Timestamp {
        Timestamp::parse_fields(d, t).unwrap()
    }

    fn engine() -> PolicyEngine {
        PolicyEngine::standard(None, 42)
    }

    fn cfg(id: ProxyId) -> ProxyConfig {
        ProxyConfig::standard(id)
    }

    fn get(url: RequestUrl) -> Request {
        Request::get(ts("2011-08-03", "09:00:00"), url)
    }

    #[test]
    fn keyword_proxy_denies_even_benign_urls() {
        let e = engine();
        let c = cfg(ProxyId::Sg42);
        // Google toolbar API — the paper's flagship collateral damage.
        let r = get(RequestUrl::http("google.com", "/tbproxy/af/query"));
        assert_eq!(e.decide(&c, &r), Decision::Deny(Trigger::Keyword));
        // Facebook social plugin with proxy in path.
        let r = get(RequestUrl::http(
            "www.facebook.com",
            "/fbml/fbjs_ajax_proxy.php",
        ));
        assert_eq!(e.decide(&c, &r), Decision::Deny(Trigger::Keyword));
        // Keyword in query.
        let r = get(RequestUrl::http("example.com", "/x").with_query("q=UltraSurf"));
        assert_eq!(e.decide(&c, &r), Decision::Deny(Trigger::Keyword));
    }

    #[test]
    fn domain_blacklist_denies_all_of_suffix() {
        let e = engine();
        let c = cfg(ProxyId::Sg42);
        for host in [
            "metacafe.com",
            "www.metacafe.com",
            "download.skype.com",
            "panet.co.il",
        ] {
            let r = get(RequestUrl::http(host, "/"));
            assert_eq!(e.decide(&c, &r), Decision::Deny(Trigger::Domain), "{host}");
        }
        let r = get(RequestUrl::http("google.com", "/"));
        assert_eq!(e.decide(&c, &r), Decision::Allow);
    }

    #[test]
    fn israeli_subnets_denied_by_ip() {
        let e = engine();
        let c = cfg(ProxyId::Sg42);
        let r = get(RequestUrl::http("84.229.13.7", "/"));
        assert_eq!(e.decide(&c, &r), Decision::Deny(Trigger::IpSubnet));
        let r = get(RequestUrl::http("8.8.8.8", "/"));
        assert_eq!(e.decide(&c, &r), Decision::Allow);
    }

    #[test]
    fn facebook_pages_redirect_only_on_narrow_queries() {
        let e = engine();
        let c = cfg(ProxyId::Sg43);
        let page =
            |q: &str| get(RequestUrl::http("www.facebook.com", "/Syrian.Revolution").with_query(q));
        assert_eq!(
            e.decide(&c, &page("ref=ts")),
            Decision::Redirect(Trigger::CustomCategory)
        );
        assert_eq!(
            e.decide(&c, &page("")),
            Decision::Redirect(Trigger::CustomCategory)
        );
        // Extended query escapes the rule (the paper's observation).
        assert_eq!(
            e.decide(
                &c,
                &page("ref=ts&__a=11&ajaxpipe=1&quickling[version]=414343%3B0")
            ),
            Decision::Allow
        );
        // Untargeted page is allowed.
        let other = get(RequestUrl::http("www.facebook.com", "/ShaamNewsNetwork"));
        assert_eq!(e.decide(&c, &other), Decision::Allow);
        // Case sensitivity: distinct casing is a distinct page.
        let lower = get(RequestUrl::http("www.facebook.com", "/Syrian.revolution"));
        assert_eq!(
            e.decide(&c, &lower),
            Decision::Redirect(Trigger::CustomCategory)
        );
    }

    #[test]
    fn category_labels_per_proxy() {
        let e = engine();
        let redirect = Decision::Redirect(Trigger::CustomCategory);
        assert_eq!(
            e.category_label(&cfg(ProxyId::Sg42), redirect),
            "Blocked sites; unavailable"
        );
        assert_eq!(
            e.category_label(&cfg(ProxyId::Sg48), redirect),
            "Blocked sites"
        );
        assert_eq!(
            e.category_label(&cfg(ProxyId::Sg42), Decision::Allow),
            "unavailable"
        );
        assert_eq!(
            e.category_label(&cfg(ProxyId::Sg48), Decision::Deny(Trigger::Keyword)),
            "none"
        );
    }

    #[test]
    fn decide_url_matches_full_decide_on_static_tiers() {
        let e = engine();
        let c = cfg(ProxyId::Sg42);
        for (host, path, query) in [
            ("google.com", "/tbproxy/af/query", ""),
            ("metacafe.com", "/", ""),
            ("84.229.13.7", "/", ""),
            ("upload.youtube.com", "/upload", ""),
            ("www.facebook.com", "/Syrian.Revolution", "ref=ts"),
            ("ok.example", "/", ""),
        ] {
            let url = RequestUrl::http(host, path).with_query(query);
            assert_eq!(
                e.decide_url(&url),
                e.decide(&c, &get(url.clone())),
                "{host}{path}?{query}"
            );
        }
    }

    #[test]
    fn verdict_bundles_decision_and_label() {
        let e = engine();
        let c = cfg(ProxyId::Sg48);
        let r =
            get(RequestUrl::http("www.facebook.com", "/Syrian.Revolution").with_query("ref=ts"));
        let v = e.verdict(&c, &r);
        assert_eq!(v.decision, e.decide(&c, &r));
        assert_eq!(v.categories, e.category_label(&c, v.decision));
        assert_eq!(v.categories, "Blocked sites");
        let allowed = e.verdict(&c, &get(RequestUrl::http("ok.example", "/")));
        assert_eq!(allowed.decision, Decision::Allow);
        assert_eq!(allowed.categories, "none");
    }

    #[test]
    fn decide_batch_is_identical_to_the_scalar_loop() {
        let e = engine();
        let c = cfg(ProxyId::Sg42);
        let reqs: Vec<Request> = [
            ("google.com", "/tbproxy/af/query", ""),
            ("metacafe.com", "/", ""),
            ("84.229.13.7", "/", ""),
            ("upload.youtube.com", "/upload", ""),
            ("www.facebook.com", "/Syrian.Revolution", "ref=ts"),
            ("example.com", "/x", "q=UltraSurf"),
            ("ok.example", "/", ""),
        ]
        .iter()
        .map(|(host, path, query)| get(RequestUrl::http(*host, *path).with_query(*query)))
        .collect();
        let want: Vec<Decision> = reqs.iter().map(|r| e.decide(&c, r)).collect();
        let mut got = Vec::new();
        e.decide_batch(&c, &reqs, &mut got);
        assert_eq!(got, want);
        // The batch covers every outcome the scalar tests exercise.
        assert!(got.contains(&Decision::Deny(Trigger::Keyword)));
        assert!(got.contains(&Decision::Deny(Trigger::Domain)));
        assert!(got.contains(&Decision::Deny(Trigger::IpSubnet)));
        assert!(got.contains(&Decision::Redirect(Trigger::RedirectHost)));
        assert!(got.contains(&Decision::Redirect(Trigger::CustomCategory)));
        assert!(got.contains(&Decision::Allow));
    }

    #[test]
    fn redirect_hosts_redirect() {
        let e = engine();
        let c = cfg(ProxyId::Sg42);
        let r = get(RequestUrl::http("upload.youtube.com", "/upload"));
        assert_eq!(e.decide(&c, &r), Decision::Redirect(Trigger::RedirectHost));
    }

    #[test]
    fn tor_rule_fires_only_on_sg44_onion_traffic_after_aug1() {
        let consensus_cfg = SynthConsensusConfig::default();
        let docs: Vec<_> = (1..=6)
            .map(|d| {
                synthesize_consensus(
                    &consensus_cfg,
                    filterscope_core::Date::new(2011, 8, d).unwrap(),
                )
            })
            .collect();
        let relays = Arc::new(RelayIndex::from_consensuses(docs.iter()));
        let e = PolicyEngine::standard(Some(relays.clone()), 42);
        let sg44 = cfg(ProxyId::Sg44);
        let sg42 = cfg(ProxyId::Sg42);

        // Find a (relay, hour) pair the window model blocks on Aug 3.
        let mut blocked_pair = None;
        'outer: for relay in &docs[2].relays {
            for hour in 0..24u8 {
                let t = ts("2011-08-03", &format!("{hour:02}:10:00"));
                if e.tor_rule_active(sg44.tor_rule_per_mille_cap, relay.addr, t) {
                    blocked_pair = Some((relay.clone(), t));
                    break 'outer;
                }
            }
        }
        let (relay, when) = blocked_pair.expect("some relay blocked in some hour");
        let onion = Request::get(
            when,
            RequestUrl::http(relay.addr.to_string(), "/").with_port(relay.or_port),
        );
        assert_eq!(e.decide(&sg44, &onion), Decision::Deny(Trigger::TorRelay));
        // Same request on SG-42: allowed.
        assert_eq!(e.decide(&sg42, &onion), Decision::Allow);
        // Directory signaling on the same relay: always allowed.
        if relay.dir_port != 0 {
            let http = Request::get(
                when,
                RequestUrl::http(relay.addr.to_string(), "/tor/server/authority.z")
                    .with_port(relay.dir_port),
            );
            assert_eq!(e.decide(&sg44, &http), Decision::Allow);
        }
        // Before August 2 the rule is dormant even on SG-44.
        let early = Request::get(
            ts("2011-08-01", "12:00:00"),
            RequestUrl::http(relay.addr.to_string(), "/").with_port(relay.or_port),
        );
        assert_eq!(e.decide(&sg44, &early), Decision::Allow);
    }

    #[test]
    fn tor_windows_alternate() {
        // Over 5 days × 24 hours, the window model must produce both fully
        // open and blocking hours (Fig. 9's alternation).
        let e = engine();
        let addr = std::net::Ipv4Addr::new(100, 50, 20, 7);
        let mut active_hours = 0;
        let mut idle_hours = 0;
        for day in 2..=6u8 {
            for hour in 0..24u8 {
                let t = ts(&format!("2011-08-0{day}"), &format!("{hour:02}:00:00"));
                if e.tor_rule_active(900, addr, t) {
                    active_hours += 1;
                } else {
                    idle_hours += 1;
                }
            }
        }
        assert!(active_hours > 5, "active {active_hours}");
        assert!(idle_hours > 20, "idle {idle_hours}");
    }
}
