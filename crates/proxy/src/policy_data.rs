//! The policy as data: the rule content of a deployment, separated from the
//! compiled engine so it can be serialized ([`crate::cpl`]), edited,
//! ablated, or replaced with a recovered policy.

use crate::config;
use filterscope_core::{Ipv4Cidr, Result};

/// Every rule the engine compiles, as plain data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyData {
    /// Substring blacklist over `host+path+query` (case-insensitive).
    pub keywords: Vec<String>,
    /// Domain-suffix blacklist (`il` covers the ccTLD).
    pub blocked_domains: Vec<String>,
    /// Destination-subnet blacklist.
    pub blocked_subnets: Vec<Ipv4Cidr>,
    /// Hosts answered with `policy_redirect`.
    pub redirect_hosts: Vec<String>,
    /// Custom-category page rules: `(host, path)` pairs.
    pub custom_pages: Vec<(String, String)>,
    /// Query strings the custom-category rules cover.
    pub custom_queries: Vec<String>,
}

impl PolicyData {
    /// The deployment the paper recovered (from [`crate::config`]).
    pub fn standard() -> Self {
        let mut custom_pages = Vec::new();
        for host in config::FACEBOOK_HOSTS {
            for page in config::FACEBOOK_BLOCKED_PAGES {
                custom_pages.push((host.to_string(), format!("/{page}")));
            }
        }
        PolicyData {
            keywords: config::KEYWORDS.iter().map(|s| s.to_string()).collect(),
            blocked_domains: config::BLOCKED_DOMAINS
                .iter()
                .map(|s| s.to_string())
                .collect(),
            blocked_subnets: config::BLOCKED_SUBNETS
                .iter()
                .map(|s| Ipv4Cidr::parse(s).expect("static subnet literal"))
                .collect(),
            redirect_hosts: config::REDIRECT_HOSTS
                .iter()
                .map(|s| s.to_string())
                .collect(),
            custom_pages,
            custom_queries: config::CUSTOM_CATEGORY_QUERIES
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }

    /// An empty policy (allows everything).
    pub fn empty() -> Self {
        PolicyData {
            keywords: Vec::new(),
            blocked_domains: Vec::new(),
            blocked_subnets: Vec::new(),
            redirect_hosts: Vec::new(),
            custom_pages: Vec::new(),
            custom_queries: Vec::new(),
        }
    }

    /// Ablation helper: this policy without one rule family.
    pub fn without(mut self, family: RuleFamily) -> Self {
        match family {
            RuleFamily::Keywords => self.keywords.clear(),
            RuleFamily::Domains => self.blocked_domains.clear(),
            RuleFamily::Subnets => self.blocked_subnets.clear(),
            RuleFamily::Redirects => self.redirect_hosts.clear(),
            RuleFamily::CustomCategory => {
                self.custom_pages.clear();
                self.custom_queries.clear();
            }
        }
        self
    }

    /// Normalize for comparison: sort every list.
    pub fn normalized(mut self) -> Self {
        self.keywords.sort();
        self.blocked_domains.sort();
        self.blocked_subnets.sort();
        self.redirect_hosts.sort();
        self.custom_pages.sort();
        self.custom_queries.sort();
        self
    }

    /// Total rule count across all families.
    pub fn rule_count(&self) -> usize {
        self.keywords.len()
            + self.blocked_domains.len()
            + self.blocked_subnets.len()
            + self.redirect_hosts.len()
            + self.custom_pages.len()
    }
}

/// The five rule families (§5.4/§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleFamily {
    Keywords,
    Domains,
    Subnets,
    Redirects,
    CustomCategory,
}

impl RuleFamily {
    /// All families.
    pub const ALL: [RuleFamily; 5] = [
        RuleFamily::Keywords,
        RuleFamily::Domains,
        RuleFamily::Subnets,
        RuleFamily::Redirects,
        RuleFamily::CustomCategory,
    ];

    /// Human label.
    pub fn label(self) -> &'static str {
        match self {
            RuleFamily::Keywords => "keyword rules",
            RuleFamily::Domains => "domain rules",
            RuleFamily::Subnets => "subnet rules",
            RuleFamily::Redirects => "redirect rules",
            RuleFamily::CustomCategory => "custom-category rules",
        }
    }
}

/// Parse a list of subnet strings (helper for builders and CPL).
pub fn parse_subnets<'a>(subnets: impl IntoIterator<Item = &'a str>) -> Result<Vec<Ipv4Cidr>> {
    subnets.into_iter().map(Ipv4Cidr::parse).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_policy_content() {
        let p = PolicyData::standard();
        assert_eq!(p.keywords.len(), 5);
        assert!(p.blocked_domains.iter().any(|d| d == "metacafe.com"));
        assert_eq!(p.blocked_subnets.len(), 5);
        assert_eq!(p.custom_pages.len(), 36); // 3 hosts × 12 pages
        assert!(p.rule_count() > 100);
    }

    #[test]
    fn without_clears_exactly_one_family() {
        let p = PolicyData::standard().without(RuleFamily::Keywords);
        assert!(p.keywords.is_empty());
        assert!(!p.blocked_domains.is_empty());
        let p = PolicyData::standard().without(RuleFamily::CustomCategory);
        assert!(p.custom_pages.is_empty());
        assert!(p.custom_queries.is_empty());
        assert!(!p.keywords.is_empty());
    }

    #[test]
    fn empty_policy_has_no_rules() {
        assert_eq!(PolicyData::empty().rule_count(), 0);
    }

    #[test]
    fn normalization_orders_lists() {
        let a = PolicyData::standard().normalized();
        let mut b = PolicyData::standard();
        b.keywords.reverse();
        assert_eq!(a, b.normalized());
    }
}
