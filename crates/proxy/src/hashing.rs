//! Deterministic hashing for simulation decisions.
//!
//! Every stochastic-looking choice in the simulator (error injection, cache
//! hits, Tor-blocking windows) is a pure function of request content and a
//! seed, computed with FNV-1a folded through SplitMix64. This keeps corpus
//! generation order-independent and exactly reproducible.

/// FNV-1a over bytes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: decorrelates structured inputs.
pub fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Combine a seed, a label and arbitrary bytes into one decision hash.
pub fn decision_hash(seed: u64, label: &str, bytes: &[u8]) -> u64 {
    splitmix(seed ^ fnv1a(label.as_bytes()) ^ fnv1a(bytes))
}

/// Map a hash to a per-mille draw (0..1000).
pub fn per_mille(h: u64) -> u64 {
    h % 1000
}

/// Map a hash to a per-hundred-thousand draw (0..100_000) for fine rates.
pub fn per_cent_mille(h: u64) -> u64 {
    h % 100_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_stable() {
        assert_eq!(fnv1a(b"proxy"), fnv1a(b"proxy"));
        assert_eq!(
            decision_hash(1, "err", b"facebook.com"),
            decision_hash(1, "err", b"facebook.com")
        );
    }

    #[test]
    fn label_and_seed_decorrelate() {
        let a = decision_hash(1, "err", b"x");
        let b = decision_hash(1, "cache", b"x");
        let c = decision_hash(2, "err", b"x");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn per_mille_is_roughly_uniform() {
        let n = 100_000u64;
        let mut low = 0u64;
        for i in 0..n {
            if per_mille(splitmix(i)) < 500 {
                low += 1;
            }
        }
        let frac = low as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "{frac}");
    }
}
