//! The farm's input: a client request before filtering.

use filterscope_core::Timestamp;
use filterscope_logformat::{ClientId, Method, RequestUrl};

/// One client request as seen by the transparent proxy, before any policy
/// decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// When the proxy intercepted the request.
    pub timestamp: Timestamp,
    /// Client identity as it will be logged (the Telecomix anonymization is
    /// applied upstream by the workload generator).
    pub client: ClientId,
    /// `User-Agent` header.
    pub user_agent: String,
    /// HTTP method (`CONNECT` for HTTPS tunnels).
    pub method: Method,
    /// Requested URL (scheme `ssl` for CONNECT tunnels).
    pub url: RequestUrl,
    /// Approximate response size the origin would return, used for the
    /// `sc-bytes` field when the request is served.
    pub response_bytes: u64,
}

impl Request {
    /// A plain HTTP GET.
    pub fn get(timestamp: Timestamp, url: RequestUrl) -> Self {
        Request {
            timestamp,
            client: ClientId::Zeroed,
            user_agent: "Mozilla/5.0".into(),
            method: Method::Get,
            url,
            response_bytes: 8 * 1024,
        }
    }

    /// An HTTPS CONNECT tunnel to `host:443`.
    pub fn connect(timestamp: Timestamp, host: impl Into<String>) -> Self {
        Request {
            timestamp,
            client: ClientId::Zeroed,
            user_agent: String::new(),
            method: Method::Connect,
            url: RequestUrl {
                scheme: "ssl".into(),
                host: host.into(),
                port: 443,
                path: "/".into(),
                query: String::new(),
            },
            response_bytes: 4 * 1024,
        }
    }

    /// Override the client identity.
    pub fn with_client(mut self, client: ClientId) -> Self {
        self.client = client;
        self
    }

    /// Override the user agent.
    pub fn with_user_agent(mut self, ua: impl Into<String>) -> Self {
        self.user_agent = ua.into();
        self
    }

    /// Stable content bytes for decision hashing: everything that identifies
    /// the request except the timestamp (so per-URL decisions like cacheing
    /// stay stable across retries) — callers mix time in explicitly when a
    /// decision should vary over time.
    pub fn identity_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(
            self.url.host.len() + self.url.path.len() + self.url.query.len() + 24,
        );
        v.extend_from_slice(self.url.host.as_bytes());
        v.push(0);
        v.extend_from_slice(self.url.path.as_bytes());
        v.push(0);
        v.extend_from_slice(self.url.query.as_bytes());
        v.push(0);
        v.extend_from_slice(&self.url.port.to_le_bytes());
        v.extend_from_slice(self.client.to_string().as_bytes());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts() -> Timestamp {
        Timestamp::parse_fields("2011-08-03", "08:00:00").unwrap()
    }

    #[test]
    fn get_and_connect_shapes() {
        let g = Request::get(ts(), RequestUrl::http("facebook.com", "/home.php"));
        assert_eq!(g.method, Method::Get);
        assert_eq!(g.url.scheme, "http");
        let c = Request::connect(ts(), "skype.com");
        assert_eq!(c.method, Method::Connect);
        assert_eq!(c.url.scheme, "ssl");
        assert_eq!(c.url.port, 443);
    }

    #[test]
    fn identity_ignores_timestamp() {
        let a = Request::get(ts(), RequestUrl::http("x.com", "/"));
        let b = Request::get(ts().plus_seconds(100), RequestUrl::http("x.com", "/"));
        assert_eq!(a.identity_bytes(), b.identity_bytes());
        let c = Request::get(ts(), RequestUrl::http("y.com", "/"));
        assert_ne!(a.identity_bytes(), c.identity_bytes());
    }

    #[test]
    fn identity_separates_fields() {
        // host="ab", path="/" vs host="a", path="b/" must differ.
        let a = Request::get(ts(), RequestUrl::http("ab", "/"));
        let b = Request::get(ts(), RequestUrl::http("a", "b/"));
        assert_ne!(a.identity_bytes(), b.identity_bytes());
    }
}
