//! The compiled policy artifact: one versioned, CRC-checked binary file
//! holding everything a [`PolicyEngine`] needs, in its *compiled* form.
//!
//! `filterscope compile` serializes a policy — dense keyword DFA, flat
//! domain index, merged CIDR table, the three small hash-set tiers, the
//! source CPL text, and optionally the whole farm configuration — into a
//! single `header + section table + payload` file. Opening the artifact
//! deserializes the hot structures directly (no automaton construction,
//! no trie building, no CIDR merging); the only text parsed at load time
//! is the embedded source CPL, kept so the `filterscope-policylint`
//! witness gate can rebuild a reference engine and prove the compiled
//! forms still decide identically before a hot-swap is accepted.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! magic        b"FSCP"
//! version      u32         (= 1)
//! section_count u32
//! section table, one row per section, sorted by id:
//!     id       u32
//!     offset   u64         relative to payload start
//!     len      u64
//!     crc      u32         CRC-32/ISO-HDLC of the section bytes
//! header_crc   u32         CRC-32 of every header byte above
//! payload      the sections, contiguous and in table order
//! ```
//!
//! Every structural invariant is re-validated on load and any violation —
//! bad magic, unknown version, table rows out of order or out of bounds,
//! CRC mismatch anywhere, trailing bytes, malformed section body — fails
//! closed with an error and leaves nothing half-built.

use crate::config::FarmConfig;
use crate::cpl::{parse_cpl, to_cpl};
use crate::engine::PolicyEngine;
use crate::policy_data::PolicyData;
use filterscope_core::{crc32, ByteReader, ByteWriter, Error, ProxyId, Result};
use filterscope_match::{AcDfa, CidrSet, DomainIndex};
use filterscope_tor::RelayIndex;
use std::sync::Arc;

/// File magic: "FilterScope Compiled Policy".
pub const MAGIC: [u8; 4] = *b"FSCP";

/// Current artifact format version.
pub const VERSION: u32 = 1;

/// Section ids, in file order.
pub const SEC_SOURCE_CPL: u32 = 1;
pub const SEC_KEYWORD_DFA: u32 = 2;
pub const SEC_DOMAIN_INDEX: u32 = 3;
pub const SEC_CIDR_RANGES: u32 = 4;
pub const SEC_REDIRECTS: u32 = 5;
pub const SEC_CUSTOM_PAGES: u32 = 6;
pub const SEC_CUSTOM_QUERIES: u32 = 7;
pub const SEC_FARM: u32 = 8;
pub const SEC_META: u32 = 9;

/// Upper bound on the section count a loader will accept.
const MAX_SECTIONS: usize = 64;

/// Bytes per section-table row: id + offset + len + crc.
const TABLE_ROW_LEN: usize = 4 + 8 + 8 + 4;

fn bad(what: impl Into<String>) -> Error {
    Error::InvalidConfig(format!("policy artifact: {}", what.into()))
}

/// A policy loaded from an artifact: the ready-to-serve engine plus the
/// provenance the witness gate and the hot-swap plumbing need.
pub struct CompiledPolicy {
    /// The engine, built from the compiled sections (not from the CPL).
    pub engine: PolicyEngine,
    /// The source policy, parsed from the embedded CPL section.
    pub source: PolicyData,
    /// The embedded CPL text verbatim.
    pub source_cpl: String,
    /// Artifact format version.
    pub version: u32,
    /// Engine seed recorded at compile time.
    pub seed: u64,
    /// Farm configuration, when the artifact was compiled with `--farm`.
    pub farm: Option<FarmConfig>,
}

/// Serialize `policy` (and optionally a farm configuration) into artifact
/// bytes. `seed` is the engine seed recorded in the META section and used
/// by deterministic tiers (the Tor window model) after load.
pub fn compile(policy: &PolicyData, seed: u64, farm: Option<&FarmConfig>) -> Vec<u8> {
    // Compile the hot structures exactly as `PolicyEngine::from_data` does.
    let keywords = AcDfa::build(&policy.keywords, true);
    let domains = DomainIndex::from_entries(policy.blocked_domains.iter().map(|s| s.as_str()));
    let subnets = CidrSet::from_blocks(policy.blocked_subnets.iter().copied());

    let mut sections: Vec<(u32, Vec<u8>)> = Vec::new();
    let sec = |id: u32, body: ByteWriter, out: &mut Vec<(u32, Vec<u8>)>| {
        out.push((id, body.into_bytes()));
    };

    let mut w = ByteWriter::new();
    w.put_str(&to_cpl(policy));
    sec(SEC_SOURCE_CPL, w, &mut sections);

    let mut w = ByteWriter::new();
    keywords.write_into(&mut w);
    sec(SEC_KEYWORD_DFA, w, &mut sections);

    let mut w = ByteWriter::new();
    domains.write_into(&mut w);
    sec(SEC_DOMAIN_INDEX, w, &mut sections);

    let mut w = ByteWriter::new();
    subnets.write_into(&mut w);
    sec(SEC_CIDR_RANGES, w, &mut sections);

    let mut w = ByteWriter::new();
    write_str_list(&mut w, policy.redirect_hosts.iter().map(|s| s.as_str()));
    sec(SEC_REDIRECTS, w, &mut sections);

    let mut w = ByteWriter::new();
    w.put_u32(policy.custom_pages.len() as u32);
    for (host, path) in &policy.custom_pages {
        w.put_str(host);
        w.put_str(path);
    }
    sec(SEC_CUSTOM_PAGES, w, &mut sections);

    let mut w = ByteWriter::new();
    write_str_list(&mut w, policy.custom_queries.iter().map(|s| s.as_str()));
    sec(SEC_CUSTOM_QUERIES, w, &mut sections);

    if let Some(farm) = farm {
        let mut w = ByteWriter::new();
        w.put_u64(farm.seed);
        w.put_u32(farm.error_per_cent_mille);
        w.put_u32(farm.proxied_per_cent_mille);
        w.put_u32(farm.proxies.len() as u32);
        for p in &farm.proxies {
            w.put_u8(p.id.index() as u8);
            w.put_u32(p.tor_rule_per_mille_cap);
        }
        sec(SEC_FARM, w, &mut sections);
    }

    let mut w = ByteWriter::new();
    w.put_u64(seed);
    sec(SEC_META, w, &mut sections);

    // Header: magic, version, section table, header CRC; then the payload.
    let mut header = ByteWriter::new();
    header.put_raw(&MAGIC);
    header.put_u32(VERSION);
    header.put_u32(sections.len() as u32);
    let mut offset = 0u64;
    for (id, body) in &sections {
        header.put_u32(*id);
        header.put_u64(offset);
        header.put_u64(body.len() as u64);
        header.put_u32(crc32(body));
        offset += body.len() as u64;
    }
    let header_crc = crc32(header.as_slice());
    header.put_u32(header_crc);

    let mut out = header.into_bytes();
    for (_, body) in sections {
        out.extend_from_slice(&body);
    }
    out
}

/// Deserialize an artifact, validating magic, version, the section table,
/// the header CRC, and every per-section CRC before touching any body.
/// `relays` enables the SG-44 Tor rule on the loaded engine, exactly as in
/// [`PolicyEngine::from_data`].
pub fn load(bytes: &[u8], relays: Option<Arc<RelayIndex>>) -> Result<CompiledPolicy> {
    let mut r = ByteReader::new(bytes);
    if r.get_raw(4)
        .map_err(|_| bad("file shorter than the magic"))?
        != MAGIC
    {
        return Err(bad("bad magic (not an FSCP artifact)"));
    }
    let version = r.get_u32()?;
    if version != VERSION {
        return Err(bad(format!(
            "unsupported version {version} (this build reads {VERSION})"
        )));
    }
    let section_count = r.get_u32()? as usize;
    if section_count == 0 || section_count > MAX_SECTIONS {
        return Err(bad("section count outside [1, 64]"));
    }

    // Read the table, then check the header CRC before trusting any row.
    let header_len = 4 + 4 + 4 + section_count * TABLE_ROW_LEN;
    let mut table = Vec::with_capacity(section_count);
    for _ in 0..section_count {
        let id = r.get_u32()?;
        let offset = r.get_u64()?;
        let len = r.get_u64()?;
        let crc = r.get_u32()?;
        table.push((id, offset, len, crc));
    }
    let stored_header_crc = r.get_u32()?;
    if crc32(&bytes[..header_len]) != stored_header_crc {
        return Err(bad("header CRC mismatch"));
    }

    let payload = &bytes[header_len + 4..];
    // Rows must be sorted by id (no duplicates) and tile the payload
    // exactly — contiguous, in order, no gaps, no trailing bytes.
    let mut expect_offset = 0u64;
    for (i, &(id, offset, len, _)) in table.iter().enumerate() {
        if i > 0 && id <= table[i - 1].0 {
            return Err(bad("section ids out of order or duplicated"));
        }
        if offset != expect_offset {
            return Err(bad("section offsets are not contiguous"));
        }
        expect_offset = offset
            .checked_add(len)
            .ok_or_else(|| bad("section extent overflows"))?;
    }
    if expect_offset != payload.len() as u64 {
        return Err(bad("payload length disagrees with the section table"));
    }

    let section = |id: u32| -> Result<&[u8]> {
        let &(_, offset, len, crc) = table
            .iter()
            .find(|row| row.0 == id)
            .ok_or_else(|| bad(format!("required section {id} is missing")))?;
        let body = &payload[offset as usize..(offset + len) as usize];
        if crc32(body) != crc {
            return Err(bad(format!("section {id} CRC mismatch")));
        }
        Ok(body)
    };
    // Verify every CRC up front, including sections this version ignores.
    for &(id, _, _, _) in &table {
        section(id)?;
    }

    let mut r = ByteReader::new(section(SEC_SOURCE_CPL)?);
    let source_cpl = r.get_str()?.to_string();
    r.expect_exhausted()?;
    let source = parse_cpl(&source_cpl)?;

    let mut r = ByteReader::new(section(SEC_KEYWORD_DFA)?);
    let keywords = AcDfa::read_from(&mut r)?;
    r.expect_exhausted()?;

    let mut r = ByteReader::new(section(SEC_DOMAIN_INDEX)?);
    let domains = DomainIndex::read_from(&mut r)?;
    r.expect_exhausted()?;

    let mut r = ByteReader::new(section(SEC_CIDR_RANGES)?);
    let subnets = CidrSet::read_from(&mut r)?;
    r.expect_exhausted()?;

    let mut r = ByteReader::new(section(SEC_REDIRECTS)?);
    let redirect_hosts = read_str_list(&mut r)?.into_iter().collect();
    r.expect_exhausted()?;

    let mut r = ByteReader::new(section(SEC_CUSTOM_PAGES)?);
    let n = r.get_u32()? as usize;
    let mut custom_pages = std::collections::HashSet::with_capacity(n);
    for _ in 0..n {
        let host = r.get_str()?.to_string();
        let path = r.get_str()?.to_string();
        custom_pages.insert((host, path));
    }
    r.expect_exhausted()?;

    let mut r = ByteReader::new(section(SEC_CUSTOM_QUERIES)?);
    let custom_queries = read_str_list(&mut r)?.into_iter().collect();
    r.expect_exhausted()?;

    let farm = match table.iter().find(|row| row.0 == SEC_FARM) {
        Some(_) => Some(read_farm(&mut ByteReader::new(section(SEC_FARM)?))?),
        None => None,
    };

    let mut r = ByteReader::new(section(SEC_META)?);
    let seed = r.get_u64()?;
    r.expect_exhausted()?;

    let engine = PolicyEngine {
        keywords,
        domains,
        subnets,
        redirect_hosts,
        custom_pages,
        custom_queries,
        relays,
        seed,
    };
    Ok(CompiledPolicy {
        engine,
        source,
        source_cpl,
        version,
        seed,
        farm,
    })
}

fn write_str_list<'a>(w: &mut ByteWriter, items: impl ExactSizeIterator<Item = &'a str>) {
    w.put_u32(items.len() as u32);
    for s in items {
        w.put_str(s);
    }
}

fn read_str_list(r: &mut ByteReader<'_>) -> Result<Vec<String>> {
    let n = r.get_u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push(r.get_str()?.to_string());
    }
    Ok(out)
}

fn read_farm(r: &mut ByteReader<'_>) -> Result<FarmConfig> {
    let seed = r.get_u64()?;
    let error_per_cent_mille = r.get_u32()?;
    let proxied_per_cent_mille = r.get_u32()?;
    let n = r.get_u32()? as usize;
    if n != ProxyId::COUNT {
        return Err(bad(format!("farm section lists {n} proxies, expected 7")));
    }
    let mut proxies = Vec::with_capacity(n);
    for want in 0..n {
        let idx = r.get_u8()? as usize;
        if idx != want {
            return Err(bad("farm proxies out of order"));
        }
        let id = ProxyId::from_index(idx).ok_or_else(|| bad("farm proxy index out of range"))?;
        let mut cfg = crate::config::ProxyConfig::standard(id);
        cfg.tor_rule_per_mille_cap = r.get_u32()?;
        proxies.push(cfg);
    }
    r.expect_exhausted()?;
    Ok(FarmConfig {
        proxies,
        seed,
        error_per_cent_mille,
        proxied_per_cent_mille,
        // The FSCP farm section describes the Blue Coat deployment the
        // artifact was measured from; censor profiles are a simulation-side
        // concern and are not part of the serialized format.
        profile: crate::profile::ProfileKind::BlueCoat,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProxyConfig;
    use crate::decision::{Decision, Trigger};
    use crate::request::Request;
    use filterscope_core::Timestamp;
    use filterscope_logformat::RequestUrl;

    fn probe_urls() -> Vec<RequestUrl> {
        vec![
            RequestUrl::http("google.com", "/tbproxy/af/query"),
            RequestUrl::http("metacafe.com", "/"),
            RequestUrl::http("www.facebook.com", "/Syrian.Revolution").with_query("ref=ts"),
            RequestUrl::http("upload.youtube.com", "/upload"),
            RequestUrl::http("84.229.13.7", "/"),
            RequestUrl::http("example.org", "/benign"),
            RequestUrl::http("panet.co.il", "/"),
            RequestUrl::http("example.com", "/x").with_query("q=UltraSurf"),
        ]
    }

    #[test]
    fn roundtrip_preserves_every_decision() {
        let policy = PolicyData::standard();
        let bytes = compile(&policy, 7, None);
        let loaded = load(&bytes, None).unwrap();
        let reference = PolicyEngine::from_data(&policy, None, 7);
        for url in probe_urls() {
            assert_eq!(
                loaded.engine.decide_url(&url),
                reference.decide_url(&url),
                "{url:?}"
            );
        }
        assert_eq!(loaded.source, policy);
        assert_eq!(loaded.version, VERSION);
        assert_eq!(loaded.seed, 7);
        assert!(loaded.farm.is_none());
    }

    #[test]
    fn roundtrip_preserves_the_farm_configuration() {
        let policy = PolicyData::standard();
        for farm in [FarmConfig::default(), FarmConfig::tor_blocked_era()] {
            let bytes = compile(&policy, farm.seed, Some(&farm));
            let loaded = load(&bytes, None).unwrap();
            let got = loaded.farm.expect("farm section present");
            assert_eq!(got.seed, farm.seed);
            assert_eq!(got.error_per_cent_mille, farm.error_per_cent_mille);
            assert_eq!(got.proxied_per_cent_mille, farm.proxied_per_cent_mille);
            assert_eq!(got.proxies.len(), farm.proxies.len());
            for (a, b) in got.proxies.iter().zip(&farm.proxies) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.tor_rule_per_mille_cap, b.tor_rule_per_mille_cap);
                assert_eq!(a.default_category, b.default_category);
                assert_eq!(a.blocked_category, b.blocked_category);
            }
        }
    }

    #[test]
    fn farm_roundtrip_preserves_decisions_for_all_seven_proxies() {
        let policy = PolicyData::standard();
        let ts = Timestamp::parse_fields("2011-08-03", "12:00:00").unwrap();
        for farm in [FarmConfig::default(), FarmConfig::tor_blocked_era()] {
            let bytes = compile(&policy, farm.seed, Some(&farm));
            let loaded = load(&bytes, None).unwrap();
            let reference = PolicyEngine::from_data(&policy, None, farm.seed);
            let got_farm = loaded.farm.as_ref().expect("farm present");
            assert_eq!(got_farm.proxies.len(), 7);
            // The reconstructed per-proxy configs must drive the loaded
            // engine to the same decision as the original configs drive
            // the parse-built engine, for every one of the seven proxies.
            for (orig, got) in farm.proxies.iter().zip(&got_farm.proxies) {
                for url in probe_urls() {
                    let req = Request::get(ts, url.clone());
                    assert_eq!(
                        loaded.engine.decide(got, &req),
                        reference.decide(orig, &req),
                        "proxy {:?} url {url:?}",
                        orig.id
                    );
                }
            }
        }
    }

    #[test]
    fn loaded_engine_runs_the_full_decide_path() {
        let bytes = compile(&PolicyData::standard(), 42, None);
        let loaded = load(&bytes, None).unwrap();
        let cfg = ProxyConfig::standard(filterscope_core::ProxyId::Sg42);
        let ts = Timestamp::parse_fields("2011-08-03", "09:00:00").unwrap();
        let req = Request::get(ts, RequestUrl::http("google.com", "/tbproxy/af/query"));
        assert_eq!(
            loaded.engine.decide(&cfg, &req),
            Decision::Deny(Trigger::Keyword)
        );
    }

    #[test]
    fn bad_magic_and_version_fail_closed() {
        let bytes = compile(&PolicyData::standard(), 1, None);
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(load(&bad_magic, None).is_err());
        let mut bad_version = bytes.clone();
        bad_version[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(load(&bad_version, None).is_err());
        assert!(load(&bytes[..3], None).is_err());
    }

    #[test]
    fn every_truncation_fails_closed() {
        let bytes = compile(&PolicyData::standard(), 1, None);
        // Sample prefixes (every length would be slow on a full policy).
        for cut in (0..bytes.len()).step_by(101).chain([bytes.len() - 1]) {
            assert!(load(&bytes[..cut], None).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn single_bit_flips_fail_closed() {
        // A small policy keeps the exhaustive bit-flip sweep fast.
        let policy = PolicyData {
            keywords: vec!["proxy".into()],
            blocked_domains: vec!["il".into()],
            blocked_subnets: vec![filterscope_core::Ipv4Cidr::parse("84.228.0.0/15").unwrap()],
            redirect_hosts: vec!["upload.youtube.com".into()],
            custom_pages: vec![("www.facebook.com".into(), "/Syrian.Revolution".into())],
            custom_queries: vec!["ref=ts".into(), String::new()],
        };
        let bytes = compile(&policy, 3, None);
        let reference = load(&bytes, None).unwrap();
        let probes = probe_urls();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[i] ^= 1 << bit;
                // Either the loader rejects the flip, or (CRC collision —
                // impossible for single-bit flips, but keep the invariant
                // honest) the loaded engine still decides identically.
                if let Ok(loaded) = load(&flipped, None) {
                    for url in &probes {
                        assert_eq!(
                            loaded.engine.decide_url(url),
                            reference.engine.decide_url(url),
                            "flip byte {i} bit {bit} changed a decision"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn missing_required_section_fails_closed() {
        // Hand-build an artifact with only the META section.
        let mut body = ByteWriter::new();
        body.put_u64(1);
        let body = body.into_bytes();
        let mut header = ByteWriter::new();
        header.put_raw(&MAGIC);
        header.put_u32(VERSION);
        header.put_u32(1);
        header.put_u32(SEC_META);
        header.put_u64(0);
        header.put_u64(body.len() as u64);
        header.put_u32(crc32(&body));
        let crc = crc32(header.as_slice());
        header.put_u32(crc);
        let mut bytes = header.into_bytes();
        bytes.extend_from_slice(&body);
        let err = match load(&bytes, None) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("artifact without policy sections must be rejected"),
        };
        assert!(err.contains("missing"), "{err}");
    }
}
