//! The network-error overlay.
//!
//! Denied-by-error traffic is ~5.3 % of all requests, with the exception mix
//! of Table 3. Errors strike requests the policy *would have allowed* (a
//! censored request never contacts the origin, so TCP/DNS errors cannot
//! occur for it). Assignment is a pure hash of request identity and
//! timestamp, so the same workload always produces the same error records.

use crate::hashing::{decision_hash, per_cent_mille};
use crate::request::Request;
use filterscope_logformat::ExceptionId;

/// Relative weights of the error exceptions, from Table 3's `Ddenied`
/// breakdown (per 10 000 of error traffic). This is the *proxy* mix: a
/// transparent proxy terminates the client's TCP session itself, so it can
/// observe and log the full range of upstream failures. Other censor
/// mechanisms draw from their own mixes via [`ErrorModel::sample_from`].
pub const ERROR_MIX: [(ExceptionId, u32); 8] = [
    (ExceptionId::TcpError, 5355),
    (ExceptionId::InternalError, 3667),
    (ExceptionId::InvalidRequest, 664),
    (ExceptionId::UnsupportedProtocol, 179),
    (ExceptionId::DnsUnresolvedHostname, 35),
    (ExceptionId::DnsServerFailure, 15),
    (ExceptionId::UnsupportedEncoding, 1),
    (ExceptionId::InvalidResponse, 1),
];

/// Deterministic error model.
#[derive(Debug, Clone)]
pub struct ErrorModel {
    seed: u64,
    /// Error probability per 100 000 requests.
    rate_per_cent_mille: u32,
}

impl ErrorModel {
    /// Model with the given overall rate.
    pub fn new(seed: u64, rate_per_cent_mille: u32) -> Self {
        ErrorModel {
            seed,
            rate_per_cent_mille,
        }
    }

    /// Should `req` fail with a network error, and if so which?
    pub fn sample(&self, req: &Request) -> Option<ExceptionId> {
        self.sample_from(req, &ERROR_MIX)
    }

    /// [`Self::sample`] drawing the exception kind from a caller-supplied
    /// mix (weights per 10 000 of error traffic). *Which* requests error is
    /// mix-independent — only the kind drawn for an erroring request varies
    /// — so every censor profile shares one error population while emitting
    /// only the exceptions its vantage can actually observe (a DNS poisoner
    /// never logs a proxy's `internal_error`).
    pub fn sample_from(&self, req: &Request, mix: &[(ExceptionId, u32)]) -> Option<ExceptionId> {
        let mut key = req.identity_bytes();
        key.extend_from_slice(&req.timestamp.epoch_seconds().to_le_bytes());
        let h = decision_hash(self.seed, "net-error", &key);
        if per_cent_mille(h) >= self.rate_per_cent_mille as u64 {
            return None;
        }
        // Second, independent draw selects the exception kind.
        let pick = decision_hash(self.seed, "net-error-kind", &key) % 10_000;
        let mut acc = 0u64;
        for (e, w) in mix.iter() {
            acc += *w as u64;
            if pick < acc {
                return Some(e.clone());
            }
        }
        // Weights sum to < 10 000 only by rounding; fall back to TCP error.
        Some(ExceptionId::TcpError)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use filterscope_core::Timestamp;
    use filterscope_logformat::RequestUrl;

    fn reqs(n: u64) -> impl Iterator<Item = Request> {
        let t0 = Timestamp::parse_fields("2011-08-03", "00:00:00").unwrap();
        (0..n).map(move |i| {
            Request::get(
                t0.plus_seconds(i as i64 % 86_400),
                RequestUrl::http(format!("host{i}.example"), "/"),
            )
        })
    }

    #[test]
    fn rate_converges() {
        let m = ErrorModel::new(7, 5_310);
        let n = 200_000u64;
        let errors = reqs(n).filter(|r| m.sample(r).is_some()).count() as f64;
        let rate = errors / n as f64;
        assert!((rate - 0.0531).abs() < 0.003, "rate {rate}");
    }

    #[test]
    fn mix_matches_table3_shape() {
        let m = ErrorModel::new(7, 100_000); // every request errors
        let mut tcp = 0u64;
        let mut internal = 0u64;
        let mut total = 0u64;
        for r in reqs(50_000) {
            match m.sample(&r) {
                Some(ExceptionId::TcpError) => {
                    tcp += 1;
                    total += 1;
                }
                Some(ExceptionId::InternalError) => {
                    internal += 1;
                    total += 1;
                }
                Some(_) => total += 1,
                None => unreachable!("rate is 100%"),
            }
        }
        let tcp_frac = tcp as f64 / total as f64;
        let int_frac = internal as f64 / total as f64;
        assert!((tcp_frac - 0.5355).abs() < 0.01, "tcp {tcp_frac}");
        assert!((int_frac - 0.3667).abs() < 0.01, "internal {int_frac}");
    }

    #[test]
    fn deterministic() {
        let m = ErrorModel::new(7, 5_310);
        for r in reqs(100) {
            assert_eq!(m.sample(&r), m.sample(&r));
        }
    }

    #[test]
    fn zero_rate_never_errors() {
        let m = ErrorModel::new(7, 0);
        assert!(reqs(1000).all(|r| m.sample(&r).is_none()));
    }

    #[test]
    fn custom_mix_preserves_the_error_population() {
        // `sample_from` must flip the *kind*, never *which* requests error:
        // profiles share one error population so swapping the censor cannot
        // change total error volume.
        let m = ErrorModel::new(7, 5_310);
        let dns_mix = [
            (ExceptionId::DnsUnresolvedHostname, 6_000u32),
            (ExceptionId::DnsServerFailure, 2_500),
            (ExceptionId::TcpError, 1_500),
        ];
        for r in reqs(5_000) {
            let default = m.sample(&r);
            let scoped = m.sample_from(&r, &dns_mix);
            assert_eq!(default.is_some(), scoped.is_some());
            if let Some(e) = scoped {
                assert!(
                    dns_mix.iter().any(|(k, _)| *k == e),
                    "exception {e:?} outside the scoped mix"
                );
            }
        }
    }

    #[test]
    fn sample_from_default_mix_is_sample() {
        let m = ErrorModel::new(7, 50_000);
        for r in reqs(2_000) {
            assert_eq!(m.sample(&r), m.sample_from(&r, &ERROR_MIX));
        }
    }

    #[test]
    fn retry_at_different_time_can_differ() {
        // Errors are transient: the same URL at a different second may get a
        // different outcome. With a 100% rate the *kind* stays hash-driven;
        // with a partial rate at least one URL must flip across times.
        let m = ErrorModel::new(7, 50_000);
        let t0 = Timestamp::parse_fields("2011-08-03", "00:00:00").unwrap();
        let flipped = (0..200u32).any(|i| {
            let url = RequestUrl::http(format!("h{i}.net"), "/");
            let a = m.sample(&Request::get(t0, url.clone()));
            let b = m.sample(&Request::get(t0.plus_seconds(17), url));
            a.is_some() != b.is_some()
        });
        assert!(flipped);
    }
}
