//! A CPL-flavoured policy text format.
//!
//! Blue Coat appliances are configured in CPL (Content Policy Language).
//! This module serializes a [`PolicyData`] to a small, CPL-inspired dialect
//! and parses it back, so policies can be stored, diffed, hand-edited, and
//! — the interesting use — *exported from the §5.4 inference* and re-run
//! against fresh traffic:
//!
//! ```text
//! ; filterscope policy
//! define condition blacklist_keywords
//!   url.substring="proxy"
//! end
//! define condition blocked_domains
//!   url.domain="metacafe.com"
//! end
//! define subnet blocked_subnets
//!   84.229.0.0/16
//! end
//! define condition redirect_hosts
//!   url.host="upload.youtube.com"
//! end
//! define condition blocked_pages
//!   url.host="www.facebook.com" url.path="/Syrian.Revolution"
//! end
//! define condition blocked_page_queries
//!   url.query="ref=ts"
//! end
//! ```

use crate::policy_data::PolicyData;
use filterscope_core::{Error, Ipv4Cidr, Result};

/// Escape a value for a quoted CPL literal. Quotes and backslashes get a
/// backslash; newlines and carriage returns become `\n`/`\r` so that any
/// value survives the line-oriented format.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' | '\\' => {
                out.push('\\');
                out.push(c);
            }
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse a quoted CPL literal starting at `s` (after the opening quote has
/// been located); returns (value, rest-after-closing-quote).
fn unquote(s: &str) -> Result<(String, &str)> {
    let bad = || Error::InvalidConfig(format!("bad CPL string literal near {s:?}"));
    let mut out = String::new();
    let mut chars = s.char_indices();
    loop {
        match chars.next() {
            Some((_, '\\')) => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, c)) => out.push(c),
                None => return Err(bad()),
            },
            Some((i, '"')) => return Ok((out, &s[i + 1..])),
            Some((_, c)) => out.push(c),
            None => return Err(bad()),
        }
    }
}

/// Serialize a policy to the CPL dialect.
pub fn to_cpl(policy: &PolicyData) -> String {
    let mut out = String::new();
    out.push_str("; filterscope policy (CPL dialect)\n");

    out.push_str("define condition blacklist_keywords\n");
    for k in &policy.keywords {
        out.push_str(&format!("  url.substring={}\n", quote(k)));
    }
    out.push_str("end\n\n");

    out.push_str("define condition blocked_domains\n");
    for d in &policy.blocked_domains {
        out.push_str(&format!("  url.domain={}\n", quote(d)));
    }
    out.push_str("end\n\n");

    out.push_str("define subnet blocked_subnets\n");
    for s in &policy.blocked_subnets {
        out.push_str(&format!("  {s}\n"));
    }
    out.push_str("end\n\n");

    out.push_str("define condition redirect_hosts\n");
    for h in &policy.redirect_hosts {
        out.push_str(&format!("  url.host={}\n", quote(h)));
    }
    out.push_str("end\n\n");

    out.push_str("define condition blocked_pages\n");
    for (host, path) in &policy.custom_pages {
        out.push_str(&format!(
            "  url.host={} url.path={}\n",
            quote(host),
            quote(path)
        ));
    }
    out.push_str("end\n\n");

    out.push_str("define condition blocked_page_queries\n");
    for q in &policy.custom_queries {
        out.push_str(&format!("  url.query={}\n", quote(q)));
    }
    out.push_str("end\n");
    out
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    None,
    Keywords,
    Domains,
    Subnets,
    Redirects,
    Pages,
    Queries,
}

impl Section {
    /// The `define …` header naming this section in the dialect.
    fn name(self) -> &'static str {
        match self {
            Section::None => "",
            Section::Keywords => "condition blacklist_keywords",
            Section::Domains => "condition blocked_domains",
            Section::Subnets => "subnet blocked_subnets",
            Section::Redirects => "condition redirect_hosts",
            Section::Pages => "condition blocked_pages",
            Section::Queries => "condition blocked_page_queries",
        }
    }

    /// Bit used to track which sections a document has already defined.
    fn bit(self) -> u8 {
        match self {
            Section::None => 0,
            Section::Keywords => 1,
            Section::Domains => 2,
            Section::Subnets => 4,
            Section::Redirects => 8,
            Section::Pages => 16,
            Section::Queries => 32,
        }
    }
}

/// Extract the value of a leading `key="..."` attribute from `line`,
/// returning (value, rest-after-closing-quote). The attribute must start the
/// (whitespace-trimmed) line — stray text before it is a parse error.
fn take_attr<'a>(line: &'a str, key: &str) -> Result<(String, &'a str)> {
    let line = line.trim_start();
    let rest = line
        .strip_prefix(key)
        .and_then(|r| r.strip_prefix("=\""))
        .ok_or_else(|| Error::InvalidConfig(format!("expected {key}=\"...\", found {line:?}")))?;
    unquote(rest)
}

/// Fail when anything but whitespace follows the last attribute of a line.
fn expect_line_end(rest: &str) -> Result<()> {
    if rest.trim().is_empty() {
        Ok(())
    } else {
        Err(Error::InvalidConfig(format!(
            "trailing content {:?} after attribute",
            rest.trim()
        )))
    }
}

/// Parse the CPL dialect back into a [`PolicyData`].
///
/// Every parse error carries the 1-based line number it occurred on
/// ([`Error::MalformedRecord`]), and each `define` block may appear at most
/// once per document — a second `define` of the same section is rejected
/// with a named-section error.
pub fn parse_cpl(text: &str) -> Result<PolicyData> {
    let mut policy = PolicyData::empty();
    let mut section = Section::None;
    let mut seen: u8 = 0;
    let mut opened_at: u64 = 0;
    for (no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let lineno = (no + 1) as u64;
        let err = |reason: String| Error::MalformedRecord {
            line: lineno,
            reason,
        };
        // Positioned wrapper for the attribute/literal helpers.
        let at = |e: Error| match e {
            Error::MalformedRecord { .. } => e,
            other => err(other.to_string()),
        };
        if let Some(rest) = line.strip_prefix("define ") {
            if section != Section::None {
                return Err(err(format!("nested define inside \"{}\"", section.name())));
            }
            section = match rest.trim() {
                "condition blacklist_keywords" => Section::Keywords,
                "condition blocked_domains" => Section::Domains,
                "subnet blocked_subnets" => Section::Subnets,
                "condition redirect_hosts" => Section::Redirects,
                "condition blocked_pages" => Section::Pages,
                "condition blocked_page_queries" => Section::Queries,
                other => return Err(err(format!("unknown define {other:?}"))),
            };
            if seen & section.bit() != 0 {
                return Err(err(format!(
                    "duplicate define of section \"{}\"",
                    section.name()
                )));
            }
            seen |= section.bit();
            opened_at = lineno;
            continue;
        }
        if line == "end" {
            if section == Section::None {
                return Err(err("end outside define".to_string()));
            }
            section = Section::None;
            continue;
        }
        match section {
            Section::None => return Err(err("rule outside define block".to_string())),
            Section::Keywords => {
                let (v, rest) = take_attr(line, "url.substring").map_err(at)?;
                expect_line_end(rest).map_err(at)?;
                policy.keywords.push(v);
            }
            Section::Domains => {
                let (v, rest) = take_attr(line, "url.domain").map_err(at)?;
                expect_line_end(rest).map_err(at)?;
                policy.blocked_domains.push(v);
            }
            Section::Subnets => {
                policy
                    .blocked_subnets
                    .push(Ipv4Cidr::parse(line).map_err(at)?);
            }
            Section::Redirects => {
                let (v, rest) = take_attr(line, "url.host").map_err(at)?;
                expect_line_end(rest).map_err(at)?;
                policy.redirect_hosts.push(v);
            }
            Section::Pages => {
                let (host, rest) = take_attr(line, "url.host").map_err(at)?;
                let (path, rest) = take_attr(rest, "url.path").map_err(at)?;
                expect_line_end(rest).map_err(at)?;
                policy.custom_pages.push((host, path));
            }
            Section::Queries => {
                let (v, rest) = take_attr(line, "url.query").map_err(at)?;
                expect_line_end(rest).map_err(at)?;
                policy.custom_queries.push(v);
            }
        }
    }
    if section != Section::None {
        return Err(Error::MalformedRecord {
            line: opened_at,
            reason: format!("unterminated define block \"{}\"", section.name()),
        });
    }
    Ok(policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_policy_roundtrips() {
        let policy = PolicyData::standard();
        let text = to_cpl(&policy);
        let back = parse_cpl(&text).expect("roundtrip parse");
        assert_eq!(back.normalized(), policy.normalized());
    }

    #[test]
    fn empty_policy_roundtrips() {
        let policy = PolicyData::empty();
        let back = parse_cpl(&to_cpl(&policy)).unwrap();
        assert_eq!(back, policy);
    }

    #[test]
    fn quoting_survives_special_characters() {
        let mut policy = PolicyData::empty();
        policy.keywords.push(r#"we"ird\key"#.to_string());
        policy
            .custom_pages
            .push(("www.facebook.com".into(), "/Path \"quoted\"".into()));
        policy.custom_queries.push("ref=ts&x=1".into());
        let back = parse_cpl(&to_cpl(&policy)).unwrap();
        assert_eq!(back, policy);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_cpl("define condition nonsense\nend\n").is_err());
        assert!(parse_cpl("url.substring=\"x\"\n").is_err()); // outside block
        assert!(parse_cpl("define condition blacklist_keywords\n").is_err()); // unterminated
        assert!(parse_cpl("define subnet blocked_subnets\n  not-a-subnet\nend\n").is_err());
        assert!(
            parse_cpl("define condition blacklist_keywords\n  url.substring=\"open\nend\n")
                .is_err()
        ); // unterminated string
    }

    /// Unwrap a parse error into its (line, reason) position.
    fn err_at(text: &str) -> (u64, String) {
        match parse_cpl(text) {
            Err(Error::MalformedRecord { line, reason }) => (line, reason),
            other => panic!("expected positioned parse error, got {other:?}"),
        }
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let (line, reason) = err_at("; c\n\ndefine condition blacklist_keywords\n  nope\nend\n");
        assert_eq!(line, 4);
        assert!(reason.contains("url.substring"), "{reason}");

        let (line, _) = err_at("define subnet blocked_subnets\n  1.2.3.4/8\n  oops\nend\n");
        assert_eq!(line, 3);

        let (line, reason) =
            err_at("define condition blacklist_keywords\n  url.substring=\"open\nend\n");
        assert_eq!(line, 2);
        assert!(reason.contains("literal"), "{reason}");

        // Unterminated blocks point at the line that opened them.
        let (line, reason) = err_at("; x\ndefine condition blocked_domains\n");
        assert_eq!(line, 2);
        assert!(reason.contains("blocked_domains"), "{reason}");

        // Trailing garbage after an attribute is rejected, with position.
        let (line, reason) =
            err_at("define condition redirect_hosts\n  url.host=\"a.com\" junk\nend\n");
        assert_eq!(line, 2);
        assert!(reason.contains("trailing"), "{reason}");
    }

    #[test]
    fn duplicate_define_blocks_rejected_by_name() {
        let text = "define condition blacklist_keywords\nend\n\
                    define condition blocked_domains\nend\n\
                    define condition blacklist_keywords\nend\n";
        let (line, reason) = err_at(text);
        assert_eq!(line, 5);
        assert!(reason.contains("duplicate define"), "{reason}");
        assert!(reason.contains("blacklist_keywords"), "{reason}");
        // All six sections once: fine (that is exactly what to_cpl emits).
        assert!(parse_cpl(&to_cpl(&PolicyData::standard())).is_ok());
    }

    #[test]
    fn newlines_in_values_roundtrip() {
        let mut policy = PolicyData::empty();
        policy.keywords.push("multi\nline".into());
        policy.keywords.push("carriage\rreturn".into());
        policy.keywords.push("literal\\n".into()); // backslash then 'n'
        policy.custom_queries.push("a\nb".into());
        let text = to_cpl(&policy);
        // The serialized form stays line-oriented: one rule per line.
        assert!(!text.contains("multi\nline"));
        let back = parse_cpl(&text).unwrap();
        assert_eq!(back, policy);
        // Fixed point: serialize→parse→serialize is identity on the text.
        assert_eq!(to_cpl(&back), text);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "; header\n\ndefine condition blacklist_keywords\n; inner comment\n  url.substring=\"proxy\"\nend\n";
        let p = parse_cpl(text).unwrap();
        assert_eq!(p.keywords, vec!["proxy".to_string()]);
    }

    #[test]
    fn parsed_policy_drives_the_engine() {
        use crate::engine::PolicyEngine;
        use crate::request::Request;
        use filterscope_core::{ProxyId, Timestamp};
        use filterscope_logformat::RequestUrl;

        let text = "define condition blacklist_keywords\n  url.substring=\"forbidden\"\nend\n\
                    define condition blocked_domains\n  url.domain=\"evil.example\"\nend\n";
        let policy = parse_cpl(text).unwrap();
        let engine = PolicyEngine::from_data(&policy, None, 1);
        let cfg = crate::config::ProxyConfig::standard(ProxyId::Sg42);
        let ts = Timestamp::parse_fields("2011-08-03", "09:00:00").unwrap();
        let blocked = Request::get(ts, RequestUrl::http("a.com", "/forbidden/x"));
        assert!(engine.decide(&cfg, &blocked).is_censored());
        let blocked2 = Request::get(ts, RequestUrl::http("www.evil.example", "/"));
        assert!(engine.decide(&cfg, &blocked2).is_censored());
        let fine = Request::get(ts, RequestUrl::http("ok.example", "/"));
        assert!(!engine.decide(&cfg, &fine).is_censored());
    }
}
