//! Policy decisions and their triggers.

use filterscope_logformat::ExceptionId;

/// Why a censorship rule fired — used by tests and by ablation analyses;
/// the appliances themselves do not log this (which is exactly what makes
/// §5.4's inference problem interesting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trigger {
    /// Blacklisted keyword in host+path+query.
    Keyword,
    /// Blacklisted domain suffix.
    Domain,
    /// Destination IP in a blocked subnet.
    IpSubnet,
    /// Custom "Blocked sites" category rule.
    CustomCategory,
    /// Redirect-host rule (Table 7).
    RedirectHost,
    /// Tor relay endpoint rule (SG-44 only).
    TorRelay,
}

/// Outcome of evaluating the policy against one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Serve the request.
    Allow,
    /// Do not serve; raise `policy_denied`.
    Deny(Trigger),
    /// Redirect the client; raise `policy_redirect`.
    Redirect(Trigger),
}

impl Decision {
    /// Is this a censorship outcome?
    pub fn is_censored(self) -> bool {
        !matches!(self, Decision::Allow)
    }

    /// Is this the redirect flavour of censorship? Profiles branch on this
    /// to pick the mechanism-appropriate redirect footprint (302 + policy
    /// redirect action for a proxy, 302 + injected body for a blockpage).
    pub fn is_redirect(self) -> bool {
        matches!(self, Decision::Redirect(_))
    }

    /// The exception the appliance logs for this decision (before any
    /// network-error overlay).
    pub fn exception(self) -> ExceptionId {
        match self {
            Decision::Allow => ExceptionId::None,
            Decision::Deny(_) => ExceptionId::PolicyDenied,
            Decision::Redirect(_) => ExceptionId::PolicyRedirect,
        }
    }

    /// The trigger, when censored.
    pub fn trigger(self) -> Option<Trigger> {
        match self {
            Decision::Allow => None,
            Decision::Deny(t) | Decision::Redirect(t) => Some(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exceptions_match_decisions() {
        assert_eq!(Decision::Allow.exception(), ExceptionId::None);
        assert_eq!(
            Decision::Deny(Trigger::Keyword).exception(),
            ExceptionId::PolicyDenied
        );
        assert_eq!(
            Decision::Redirect(Trigger::CustomCategory).exception(),
            ExceptionId::PolicyRedirect
        );
    }

    #[test]
    fn censorship_predicate() {
        assert!(!Decision::Allow.is_censored());
        assert!(Decision::Deny(Trigger::Domain).is_censored());
        assert!(Decision::Redirect(Trigger::RedirectHost).is_censored());
        assert!(!Decision::Allow.is_redirect());
        assert!(!Decision::Deny(Trigger::Domain).is_redirect());
        assert!(Decision::Redirect(Trigger::RedirectHost).is_redirect());
        assert_eq!(Decision::Allow.trigger(), None);
        assert_eq!(
            Decision::Deny(Trigger::IpSubnet).trigger(),
            Some(Trigger::IpSubnet)
        );
    }
}
