//! Property tests for the policy layer: CPL round-trips arbitrary policies,
//! and the data-driven engine agrees with itself across serialization.

use filterscope_core::{Ipv4Cidr, ProxyId, Timestamp};
use filterscope_logformat::RequestUrl;
use filterscope_proxy::{cpl, PolicyData, PolicyEngine, ProxyConfig, Request};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_policy() -> impl Strategy<Value = PolicyData> {
    (
        proptest::collection::vec("[a-z]{3,10}", 0..6),
        proptest::collection::vec("[a-z]{2,8}\\.(com|net|org|il)", 0..10),
        proptest::collection::vec((any::<u32>(), 8u8..=32), 0..5),
        proptest::collection::vec("[a-z]{2,8}\\.example", 0..4),
        proptest::collection::vec(("[a-z.]{2,12}", "/[A-Za-z.]{1,14}"), 0..5),
        proptest::collection::vec("[a-z=&]{0,10}", 0..4),
    )
        .prop_map(
            |(keywords, domains, subnets, redirects, pages, queries)| PolicyData {
                keywords,
                blocked_domains: domains,
                blocked_subnets: subnets
                    .into_iter()
                    .map(|(a, l)| Ipv4Cidr::new(Ipv4Addr::from(a), l).expect("valid len"))
                    .collect(),
                redirect_hosts: redirects,
                custom_pages: pages,
                custom_queries: queries,
            },
        )
}

proptest! {
    /// to_cpl ∘ parse_cpl is the identity on policies.
    #[test]
    fn cpl_roundtrips_arbitrary_policies(policy in arb_policy()) {
        let text = cpl::to_cpl(&policy);
        let back = cpl::parse_cpl(&text).expect("generated CPL must parse");
        prop_assert_eq!(back, policy);
    }

    /// parse_cpl never panics on arbitrary input.
    #[test]
    fn parse_cpl_is_total(text in "[ -~\\n]{0,300}") {
        let _ = cpl::parse_cpl(&text);
    }

    /// A policy and its CPL round-trip compile to engines with identical
    /// verdicts.
    #[test]
    fn roundtripped_engine_decides_identically(
        policy in arb_policy(),
        host in "[a-z0-9.]{1,20}",
        path in "/[a-zA-Z0-9./]{0,15}",
        query in "[a-z=&]{0,12}",
    ) {
        let original = PolicyEngine::from_data(&policy, None, 9);
        let back = cpl::parse_cpl(&cpl::to_cpl(&policy)).expect("roundtrip");
        let reparsed = PolicyEngine::from_data(&back, None, 9);
        let cfg = ProxyConfig::standard(ProxyId::Sg42);
        let ts = Timestamp::parse_fields("2011-08-03", "12:00:00").unwrap();
        let req = Request::get(ts, RequestUrl::http(host, path).with_query(query));
        prop_assert_eq!(original.decide(&cfg, &req), reparsed.decide(&cfg, &req));
    }
}
