//! Exercises the explorer on the classic textbook races: it must find
//! real bugs (lost update, AB-BA deadlock), must NOT flag correct code,
//! must replay deterministically from a seed, and the passthrough
//! backend must behave like plain `std::sync` on real threads.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use interleave::{sync_channel, Explorer, FailureKind, IAtomicU64, IMutex};

/// Two threads doing read-modify-write as separate load/store: the
/// classic lost update. One preemption is enough to expose it.
fn lost_update() {
    let counter = Arc::new(IAtomicU64::new(0));
    interleave::thread::scope(|s| {
        for _ in 0..2 {
            let c = Arc::clone(&counter);
            s.spawn(move || {
                let v = c.load(Ordering::SeqCst);
                c.store(v + 1, Ordering::SeqCst);
            });
        }
    });
    assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
}

#[test]
fn finds_lost_update_with_one_preemption() {
    let failure = Explorer::new()
        .preemptions(1)
        .try_explore(lost_update)
        .expect_err("the lost update must be found");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(failure.message.contains("lost update"), "{failure}");
    assert!(!failure.seed.is_empty());
}

#[test]
fn replay_reproduces_the_same_failure() {
    let failure = Explorer::new()
        .preemptions(1)
        .try_explore(lost_update)
        .expect_err("the lost update must be found");
    let replayed = std::panic::catch_unwind(|| Explorer::replay(&failure.seed, lost_update))
        .expect_err("replay must fail the same way");
    let msg = replayed
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("lost update"), "replay panic: {msg}");
}

#[test]
fn mutex_protected_counter_passes_exhaustively() {
    let report = Explorer::new().preemptions(2).explore(|| {
        let counter = Arc::new(IMutex::new(0u64));
        interleave::thread::scope(|s| {
            for _ in 0..2 {
                let c = Arc::clone(&counter);
                s.spawn(move || {
                    let mut g = c.lock();
                    *g += 1;
                });
            }
        });
        assert_eq!(*counter.lock(), 2);
    });
    // More than one schedule means the explorer actually interleaved.
    assert!(report.schedules > 1, "{report}");
}

#[test]
fn fetch_add_is_atomic_under_all_schedules() {
    Explorer::new().preemptions(2).explore(|| {
        let counter = Arc::new(IAtomicU64::new(0));
        interleave::thread::scope(|s| {
            for _ in 0..2 {
                let c = Arc::clone(&counter);
                s.spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    });
}

#[test]
fn detects_ab_ba_deadlock() {
    let failure = Explorer::new()
        .preemptions(2)
        .try_explore(|| {
            let a = Arc::new(IMutex::new(()));
            let b = Arc::new(IMutex::new(()));
            interleave::thread::scope(|s| {
                let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
                s.spawn(move || {
                    let _ga = a1.lock();
                    let _gb = b1.lock();
                });
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                s.spawn(move || {
                    let _gb = b2.lock();
                    let _ga = a2.lock();
                });
            });
        })
        .expect_err("AB-BA must deadlock under some schedule");
    assert_eq!(failure.kind, FailureKind::Deadlock, "{failure}");
}

#[test]
fn channel_delivers_in_order_and_signals_disconnect() {
    Explorer::new().preemptions(2).explore(|| {
        let (tx, rx) = sync_channel::<u32>(2);
        interleave::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..4 {
                    tx.send(i).expect("receiver alive");
                }
                // tx drops here: rx must see exactly 4 then None.
            });
            let mut got = Vec::new();
            while let Some(v) = rx.recv() {
                got.push(v);
            }
            assert_eq!(got, [0, 1, 2, 3]);
        });
    });
}

#[test]
fn send_to_dropped_receiver_returns_value() {
    Explorer::new().preemptions(0).explore(|| {
        let (tx, rx) = sync_channel::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(7));
    });
}

/// Pruning must not lose the counterexample: the lost update is found
/// with pruning on and off, and pruning explores no more schedules.
#[test]
fn pruned_and_unpruned_find_the_same_race() {
    let pruned = Explorer::new()
        .preemptions(1)
        .pruning(true)
        .try_explore(lost_update)
        .expect_err("pruned search finds the race");
    let unpruned = Explorer::new()
        .preemptions(1)
        .pruning(false)
        .try_explore(lost_update)
        .expect_err("unpruned search finds the race");
    assert_eq!(pruned.kind, FailureKind::Panic);
    assert_eq!(unpruned.kind, FailureKind::Panic);
    assert!(
        pruned.schedules <= unpruned.schedules,
        "pruning explored more schedules ({} > {})",
        pruned.schedules,
        unpruned.schedules
    );
}

#[test]
fn pruning_reduces_schedules_on_disjoint_objects() {
    // Two threads touching *different* atomics commute everywhere; the
    // pruned exploration should collapse to far fewer schedules.
    let body = || {
        let a = Arc::new(IAtomicU64::new(0));
        let b = Arc::new(IAtomicU64::new(0));
        interleave::thread::scope(|s| {
            let a1 = Arc::clone(&a);
            s.spawn(move || {
                a1.fetch_add(1, Ordering::SeqCst);
                a1.fetch_add(1, Ordering::SeqCst);
            });
            let b1 = Arc::clone(&b);
            s.spawn(move || {
                b1.fetch_add(1, Ordering::SeqCst);
                b1.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(a.load(Ordering::SeqCst), 2);
        assert_eq!(b.load(Ordering::SeqCst), 2);
    };
    let with = Explorer::new().preemptions(2).pruning(true).explore(body);
    let without = Explorer::new().preemptions(2).pruning(false).explore(body);
    assert!(
        with.schedules < without.schedules,
        "pruning had no effect: {} vs {}",
        with.schedules,
        without.schedules
    );
    assert!(with.pruned > 0);
    assert!(with.prune_rate() > 0.0);
}

#[test]
fn exploration_is_deterministic() {
    let a = Explorer::new().preemptions(2).explore(|| {
        let m = Arc::new(IMutex::new(0u32));
        interleave::thread::scope(|s| {
            let m1 = Arc::clone(&m);
            s.spawn(move || *m1.lock() += 1);
            *m.lock() += 1;
        });
    });
    let b = Explorer::new().preemptions(2).explore(|| {
        let m = Arc::new(IMutex::new(0u32));
        interleave::thread::scope(|s| {
            let m1 = Arc::clone(&m);
            s.spawn(move || *m1.lock() += 1);
            *m.lock() += 1;
        });
    });
    assert_eq!(a.schedules, b.schedules);
    assert_eq!(a.pruned, b.pruned);
    assert_eq!(a.max_depth, b.max_depth);
}

#[test]
fn join_returns_the_thread_value_in_model() {
    Explorer::new().preemptions(1).explore(|| {
        let out = interleave::thread::scope(|s| {
            let h = s.spawn(|| 41 + 1);
            h.join()
        });
        assert_eq!(out, 42);
    });
}

/// The passthrough backend on plain OS threads: same API, real
/// `std::sync` underneath (this test runs outside any model execution).
#[test]
fn passthrough_backend_works_on_real_threads() {
    let counter = Arc::new(IAtomicU64::new(0));
    let total = Arc::new(IMutex::new(0u64));
    let (tx, rx) = sync_channel::<u64>(8);
    interleave::thread::scope(|s| {
        let c = Arc::clone(&counter);
        let producer = s.spawn(move || {
            for i in 0..100 {
                c.fetch_add(1, Ordering::SeqCst);
                tx.send(i).expect("receiver alive");
            }
            c.load(Ordering::SeqCst)
        });
        let t = Arc::clone(&total);
        s.spawn(move || {
            while let Some(v) = rx.recv() {
                *t.lock() += v;
            }
        });
        assert!(producer.join() >= 100);
    });
    assert_eq!(counter.load(Ordering::SeqCst), 100);
    assert_eq!(*total.lock(), (0..100).sum::<u64>());
}

/// Poison recovery: a thread panicking while holding the lock must not
/// poison it for the rest of the process (documented into_inner policy).
#[test]
fn poisoned_mutex_recovers() {
    let m = Arc::new(IMutex::new(0u32));
    let m2 = Arc::clone(&m);
    let result = std::thread::spawn(move || {
        let mut g = m2.lock();
        *g = 7;
        panic!("die holding the lock");
    })
    .join();
    assert!(result.is_err());
    assert_eq!(*m.lock(), 7, "lock usable after a panicking holder");
}

#[test]
fn op_limit_flags_unbounded_spin() {
    let failure = Explorer::new()
        .preemptions(0)
        .max_ops(1_000)
        .try_explore(|| {
            let flag = IAtomicU64::new(0);
            // Nobody ever sets the flag: with 0 preemptions the spin can
            // never be descheduled, so the op budget must trip.
            while flag.load(Ordering::SeqCst) == 0 {}
        })
        .expect_err("unbounded spin must trip the op budget");
    assert_eq!(failure.kind, FailureKind::OpLimit);
}
