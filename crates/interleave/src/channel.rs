//! A bounded SPSC/MPSC channel the interleaving explorer can schedule
//! around; passthrough backend is `std::sync::mpsc::sync_channel`.
//!
//! The API is the subset the streaming server uses, with `Option`/
//! `Result` shapes instead of error types: `recv` returning `None`
//! means every sender hung up; `send` returning `Err(v)` gives the
//! value back when the receiver is gone. Senders are not cloneable —
//! the server runs one reader thread per connection queue.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::ctx;
use crate::exec::{Execution, ObjId, Op, OpKind, OpOutcome};

struct ModelChan<T> {
    exec: Arc<Execution>,
    obj: ObjId,
    // Only the task granted a Send/Recv touches the queue, so this lock
    // is never contended; it exists to make the type Sync.
    queue: std::sync::Mutex<VecDeque<T>>,
}

impl<T> ModelChan<T> {
    fn queue(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        match self.queue.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

enum SenderRepr<T> {
    Std(std::sync::mpsc::SyncSender<T>),
    Model(Arc<ModelChan<T>>),
}

enum ReceiverRepr<T> {
    Std(std::sync::mpsc::Receiver<T>),
    Model(Arc<ModelChan<T>>),
}

/// Sending half of [`sync_channel`].
pub struct ISender<T> {
    repr: SenderRepr<T>,
}

/// Receiving half of [`sync_channel`].
pub struct IReceiver<T> {
    repr: ReceiverRepr<T>,
}

/// Create a bounded channel with room for `bound` in-flight values
/// (`bound >= 1`; rendezvous channels are not modeled).
pub fn sync_channel<T>(bound: usize) -> (ISender<T>, IReceiver<T>) {
    match ctx::current() {
        None => {
            let (tx, rx) = std::sync::mpsc::sync_channel(bound);
            (
                ISender {
                    repr: SenderRepr::Std(tx),
                },
                IReceiver {
                    repr: ReceiverRepr::Std(rx),
                },
            )
        }
        Some(c) => {
            let chan = Arc::new(ModelChan {
                obj: c.exec.register_channel(bound),
                exec: c.exec,
                queue: std::sync::Mutex::new(VecDeque::new()),
            });
            (
                ISender {
                    repr: SenderRepr::Model(Arc::clone(&chan)),
                },
                IReceiver {
                    repr: ReceiverRepr::Model(chan),
                },
            )
        }
    }
}

impl<T> ISender<T> {
    /// Send `value`, blocking while the queue is full. `Err(value)`
    /// means the receiver hung up.
    pub fn send(&self, value: T) -> Result<(), T> {
        match &self.repr {
            SenderRepr::Std(tx) => tx.send(value).map_err(|e| e.0),
            SenderRepr::Model(chan) => {
                let me = ctx::current()
                    .expect("model sender used outside execution")
                    .task;
                match chan.exec.schedule(
                    me,
                    Op {
                        kind: OpKind::Send,
                        obj: chan.obj,
                    },
                ) {
                    OpOutcome::Proceed => {
                        chan.queue().push_back(value);
                        Ok(())
                    }
                    OpOutcome::Disconnected => Err(value),
                }
            }
        }
    }
}

impl<T> IReceiver<T> {
    /// Receive the next value, blocking while the queue is empty.
    /// `None` means every sender hung up and the queue drained.
    pub fn recv(&self) -> Option<T> {
        match &self.repr {
            ReceiverRepr::Std(rx) => rx.recv().ok(),
            ReceiverRepr::Model(chan) => {
                let me = ctx::current()
                    .expect("model receiver used outside execution")
                    .task;
                match chan.exec.schedule(
                    me,
                    Op {
                        kind: OpKind::Recv,
                        obj: chan.obj,
                    },
                ) {
                    OpOutcome::Proceed => Some(
                        chan.queue()
                            .pop_front()
                            .expect("granted recv on empty queue"),
                    ),
                    OpOutcome::Disconnected => None,
                }
            }
        }
    }
}

impl<T> Drop for ISender<T> {
    fn drop(&mut self) {
        if let SenderRepr::Model(chan) = &self.repr {
            if let Some(c) = ctx::current() {
                chan.exec.schedule(
                    c.task,
                    Op {
                        kind: OpKind::CloseTx,
                        obj: chan.obj,
                    },
                );
            }
        }
    }
}

impl<T> Drop for IReceiver<T> {
    fn drop(&mut self) {
        if let ReceiverRepr::Model(chan) = &self.repr {
            if let Some(c) = ctx::current() {
                chan.exec.schedule(
                    c.task,
                    Op {
                        kind: OpKind::CloseRx,
                        obj: chan.obj,
                    },
                );
            }
        }
    }
}
