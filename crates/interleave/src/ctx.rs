//! Thread-local model context.
//!
//! Backend selection is *construction-time*: a primitive created while a
//! model execution is active on the constructing thread (the explorer's
//! closure, or a thread it spawned through [`crate::thread::scope`])
//! gets the model representation; otherwise it is a zero-cost wrapper
//! around the `std::sync` equivalent. The thread-local is consulted only
//! at construction — per-operation dispatch is a plain enum branch.

use std::cell::RefCell;
use std::sync::Arc;

use crate::exec::{Execution, TaskId};

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The executing model task on this OS thread, if any.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub exec: Arc<Execution>,
    pub task: TaskId,
}

pub(crate) fn current() -> Option<Ctx> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Is a model execution active on this thread? (Debug-build guard: a
/// std-backed primitive used inside a model would be an untracked
/// operation the explorer cannot see.)
#[cfg_attr(not(debug_assertions), allow(dead_code))]
pub(crate) fn in_model() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Scoped setter for the thread-local context; restores the previous
/// value on drop (so nested explorations on one thread stay sane).
pub(crate) struct CtxGuard {
    prev: Option<Ctx>,
}

impl CtxGuard {
    pub(crate) fn set(exec: Arc<Execution>, task: TaskId) -> CtxGuard {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(Ctx { exec, task }));
        CtxGuard { prev }
    }
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}
