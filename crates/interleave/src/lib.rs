#![forbid(unsafe_code)]
//! Deterministic interleaving explorer (mini-loom) for filterscope's
//! concurrency-critical core, plus the `srclint` source-invariant
//! scanner that keeps that core on these primitives.
//!
//! # Two backends, one construction site
//!
//! The primitives ([`IMutex`], [`IAtomicU64`], [`IAtomicUsize`],
//! [`IAtomicBool`], [`sync_channel`], [`thread::scope`]) pick their
//! backend when *constructed*:
//!
//! - Outside a model execution they are zero-cost wrappers over the
//!   `std::sync` equivalents (one enum branch per operation — the
//!   `sync_passthrough` bench group holds this to parity).
//! - Inside [`Explorer::explore`]'s closure they register with a
//!   cooperative scheduler that runs exactly one thread at a time and
//!   enumerates every interleaving of their operations, depth-first, up
//!   to a preemption bound.
//!
//! # Exploration, pruning, replay
//!
//! [`Explorer`] explores all schedules with at most `preemptions(n)`
//! involuntary context switches (switches at blocking points are free),
//! pruning alternative branches whose first step commutes with the step
//! taken (DPOR-lite; see `exec::conflicts`). Failures panic with a
//! seed — a `-`-separated decision list — and
//! [`Explorer::replay`] re-executes that exact schedule.
//!
//! ```
//! use std::sync::atomic::Ordering;
//! use std::sync::Arc;
//!
//! let report = interleave::Explorer::new().preemptions(2).explore(|| {
//!     let hits = Arc::new(interleave::IAtomicU64::new(0));
//!     interleave::thread::scope(|s| {
//!         let h = Arc::clone(&hits);
//!         s.spawn(move || h.fetch_add(1, Ordering::SeqCst));
//!         hits.fetch_add(1, Ordering::SeqCst);
//!     });
//!     assert_eq!(hits.load(Ordering::SeqCst), 2);
//! });
//! assert!(report.schedules > 1);
//! ```

mod channel;
mod ctx;
mod exec;
mod explore;
pub mod srclint;
pub mod sync;
pub mod thread;

pub use channel::{sync_channel, IReceiver, ISender};
pub use explore::{Explorer, Failure, FailureKind, Report};
pub use sync::{IAtomicBool, IAtomicU64, IAtomicUsize, IMutex, IMutexGuard};

/// Memory ordering re-export so guarded modules need no `std::sync`
/// import at all.
pub use std::sync::atomic::Ordering;
