//! Scoped threads the interleaving explorer can schedule: a thin wrapper
//! over `std::thread::scope` in both backends (so borrowed data stays
//! sound), registering each spawned thread as a model task when a model
//! execution is active.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::ctx::{self, Ctx, CtxGuard};
use crate::exec::{Execution, Op, OpKind, TaskId};

/// Scope handle passed to the closure of [`scope`]; spawn model-tracked
/// threads through it.
pub struct IScope<'scope, 'env> {
    scope: &'scope std::thread::Scope<'scope, 'env>,
    ctx: Option<Ctx>,
    children: std::cell::RefCell<Vec<TaskId>>,
}

/// Handle to a thread spawned via [`IScope::spawn`].
pub struct IJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, Result<T, ()>>,
    model: Option<(Arc<Execution>, TaskId)>,
}

/// Create a thread scope (see `std::thread::scope`). Inside a model
/// execution, threads spawned through the scope become schedulable model
/// tasks, and any still-running children are joined — as visible `Join`
/// operations — when the closure returns.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&IScope<'scope, 'env>) -> T,
{
    let parent_ctx = ctx::current();
    std::thread::scope(|s| {
        let iscope = IScope {
            scope: s,
            ctx: parent_ctx,
            children: std::cell::RefCell::new(Vec::new()),
        };
        match catch_unwind(AssertUnwindSafe(|| f(&iscope))) {
            Ok(value) => {
                iscope.join_remaining();
                value
            }
            Err(payload) => {
                // Abort the execution before std's implicit scope join, or
                // parked children would never exit and the join would hang.
                if let Some(c) = &iscope.ctx {
                    c.exec.record_payload(payload.as_ref());
                }
                resume_unwind(payload)
            }
        }
    })
}

impl<'scope, 'env> IScope<'scope, 'env> {
    /// Spawn a thread in this scope (model task inside an execution).
    pub fn spawn<F, T>(&self, f: F) -> IJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match &self.ctx {
            None => IJoinHandle {
                inner: self.scope.spawn(|| Ok(f())),
                model: None,
            },
            Some(c) => {
                let task = c.exec.register_task();
                self.children.borrow_mut().push(task);
                let exec = Arc::clone(&c.exec);
                let inner = self.scope.spawn(move || {
                    let _guard = CtxGuard::set(Arc::clone(&exec), task);
                    exec.begin(task);
                    match catch_unwind(AssertUnwindSafe(f)) {
                        Ok(value) => {
                            exec.finish(task);
                            Ok(value)
                        }
                        Err(payload) => {
                            exec.record_payload(payload.as_ref());
                            Err(())
                        }
                    }
                });
                IJoinHandle {
                    inner,
                    model: Some((Arc::clone(&c.exec), task)),
                }
            }
        }
    }

    /// Join every spawned child that has not finished yet, as visible
    /// model operations (called at scope exit; explicit joins already
    /// finished their targets, so they are skipped here).
    fn join_remaining(&self) {
        let Some(c) = &self.ctx else { return };
        for &task in self.children.borrow().iter() {
            if !c.exec.is_finished(task) {
                c.exec.schedule(
                    c.task,
                    Op {
                        kind: OpKind::Join,
                        obj: task,
                    },
                );
            }
        }
    }
}

impl<T> IJoinHandle<'_, T> {
    /// Wait for the thread and return its result. In a model execution
    /// the join is a schedule point, enabled once the target finished.
    pub fn join(self) -> T {
        let IJoinHandle { inner, model } = self;
        match model {
            None => match inner.join() {
                Ok(Ok(value)) => value,
                Ok(Err(())) => unreachable!("passthrough threads never record aborts"),
                Err(payload) => resume_unwind(payload),
            },
            Some((exec, task)) => {
                let me = ctx::current().expect("model join outside execution").task;
                exec.schedule(
                    me,
                    Op {
                        kind: OpKind::Join,
                        obj: task,
                    },
                );
                match inner.join() {
                    Ok(Ok(value)) => value,
                    // The child unwound via the abort sentinel (or its
                    // panic was recorded); propagate the abort.
                    _ => std::panic::panic_any(crate::exec::ExecAbort),
                }
            }
        }
    }
}

/// Yield: a pure schedule point in a model, `std::thread::yield_now`
/// otherwise.
pub fn yield_now() {
    match ctx::current() {
        None => std::thread::yield_now(),
        Some(c) => {
            c.exec.schedule(c.task, Op::control(OpKind::Yield));
        }
    }
}
