//! Checkable sync primitives: mutexes and atomics with a std passthrough
//! backend and a model backend driven by the schedule explorer.
//!
//! Construction decides the backend (see [`crate::ctx`]): inside a model
//! execution the primitive registers an object with the engine and every
//! operation becomes a schedule point; outside, operations compile to a
//! single enum branch around the `std::sync` call.
//!
//! # Poisoning
//!
//! [`IMutex::lock`] never returns a `PoisonError`: a poisoned lock is
//! recovered with `into_inner`. Rationale: the daemon's shared state
//! (per-connection shards, stats counters, the policy cell) is updated
//! under short critical sections whose partial effects are themselves
//! consistent (counters may under-report by the interrupted batch, which
//! the snapshot equivalence machinery already tolerates for a killed
//! connection). Propagating the poison instead turned any worker panic
//! into a cascading daemon abort — the failure mode this replaces.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::ctx;
use crate::exec::{Execution, ObjId, Op, OpKind};

/// Debug-build guard: a std-backed primitive operated inside a model
/// execution is an untracked operation the explorer cannot schedule
/// around — a modeling bug. Free in release builds.
#[inline]
fn assert_outside_model() {
    #[cfg(debug_assertions)]
    {
        assert!(
            !ctx::in_model(),
            "a std-backed interleave primitive (constructed outside the model \
             closure) was used inside a model execution; construct it inside \
             the closure so the explorer can track it"
        );
    }
}

fn recover<'a, T>(
    r: Result<std::sync::MutexGuard<'a, T>, std::sync::PoisonError<std::sync::MutexGuard<'a, T>>>,
) -> std::sync::MutexGuard<'a, T> {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

// ---------------------------------------------------------------------------
// IMutex
// ---------------------------------------------------------------------------

enum MutexRepr<T> {
    Std(std::sync::Mutex<T>),
    Model {
        exec: Arc<Execution>,
        obj: ObjId,
        // Never contended: the real lock is taken only after the model
        // grants `Lock(obj)`, and the scheduler runs one task at a time.
        inner: std::sync::Mutex<T>,
    },
}

/// A mutex that the interleaving explorer can schedule around. Drop-in
/// for the `std::sync::Mutex` uses in the concurrency-critical modules
/// (no `try_lock`, poison recovered internally — see module docs).
pub struct IMutex<T> {
    repr: MutexRepr<T>,
}

impl<T> IMutex<T> {
    pub fn new(value: T) -> IMutex<T> {
        let repr = match ctx::current() {
            None => MutexRepr::Std(std::sync::Mutex::new(value)),
            Some(c) => MutexRepr::Model {
                obj: c.exec.register_mutex(),
                exec: c.exec,
                inner: std::sync::Mutex::new(value),
            },
        };
        IMutex { repr }
    }

    /// Acquire the lock, recovering from poisoning (module docs).
    pub fn lock(&self) -> IMutexGuard<'_, T> {
        match &self.repr {
            MutexRepr::Std(m) => {
                assert_outside_model();
                IMutexGuard {
                    repr: GuardRepr::Std(recover(m.lock())),
                }
            }
            MutexRepr::Model { exec, obj, inner } => {
                let me = ctx::current()
                    .expect("model mutex used outside execution")
                    .task;
                exec.schedule(
                    me,
                    Op {
                        kind: OpKind::Lock,
                        obj: *obj,
                    },
                );
                IMutexGuard {
                    repr: GuardRepr::Model {
                        real: Some(recover(inner.lock())),
                        exec,
                        obj: *obj,
                    },
                }
            }
        }
    }

    /// Consume the mutex, returning the inner value (poison recovered).
    pub fn into_inner(self) -> T {
        let m = match self.repr {
            MutexRepr::Std(m) => m,
            MutexRepr::Model { inner, .. } => inner,
        };
        match m.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for IMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let m = match &self.repr {
            MutexRepr::Std(m) => m,
            MutexRepr::Model { inner, .. } => inner,
        };
        f.debug_tuple("IMutex").field(m).finish()
    }
}

impl<T: Default> Default for IMutex<T> {
    fn default() -> IMutex<T> {
        IMutex::new(T::default())
    }
}

enum GuardRepr<'a, T> {
    Std(std::sync::MutexGuard<'a, T>),
    Model {
        real: Option<std::sync::MutexGuard<'a, T>>,
        exec: &'a Arc<Execution>,
        obj: ObjId,
    },
}

/// RAII guard returned by [`IMutex::lock`]; the model backend announces
/// the unlock as a schedule point on drop.
pub struct IMutexGuard<'a, T> {
    repr: GuardRepr<'a, T>,
}

impl<T> std::ops::Deref for IMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.repr {
            GuardRepr::Std(g) => g,
            GuardRepr::Model { real, .. } => real.as_ref().expect("guard alive"),
        }
    }
}

impl<T> std::ops::DerefMut for IMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.repr {
            GuardRepr::Std(g) => g,
            GuardRepr::Model { real, .. } => real.as_mut().expect("guard alive"),
        }
    }
}

impl<T> Drop for IMutexGuard<'_, T> {
    fn drop(&mut self) {
        if let GuardRepr::Model { real, exec, obj } = &mut self.repr {
            // Release the real lock before announcing the model unlock so
            // the next grantee can take it without contention.
            *real = None;
            if let Some(c) = ctx::current() {
                exec.schedule(
                    c.task,
                    Op {
                        kind: OpKind::Unlock,
                        obj: *obj,
                    },
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Generates an atomic wrapper type: passthrough to the std atomic
/// outside a model, one schedule point per operation inside.
macro_rules! checkable_atomic {
    ($name:ident, $std:ident, $prim:ty, $doc:literal) => {
        #[doc = $doc]
        pub struct $name {
            repr: AtomicRepr<$std>,
        }

        impl $name {
            pub fn new(value: $prim) -> $name {
                let repr = match ctx::current() {
                    None => AtomicRepr::Std($std::new(value)),
                    Some(c) => AtomicRepr::Model {
                        obj: c.exec.register_atomic(),
                        exec: c.exec,
                        inner: $std::new(value),
                    },
                };
                $name { repr }
            }

            fn point(&self, kind: OpKind) -> &$std {
                match &self.repr {
                    AtomicRepr::Std(a) => {
                        assert_outside_model();
                        a
                    }
                    AtomicRepr::Model { exec, obj, inner } => {
                        let me = ctx::current()
                            .expect("model atomic used outside execution")
                            .task;
                        exec.schedule(me, Op { kind, obj: *obj });
                        inner
                    }
                }
            }

            pub fn load(&self, order: Ordering) -> $prim {
                self.point(OpKind::Load).load(order)
            }

            pub fn store(&self, value: $prim, order: Ordering) {
                self.point(OpKind::Store).store(value, order)
            }

            pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                self.point(OpKind::Rmw).swap(value, order)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                let a = match &self.repr {
                    AtomicRepr::Std(a) => a,
                    AtomicRepr::Model { inner, .. } => inner,
                };
                f.debug_tuple(stringify!($name)).field(a).finish()
            }
        }
    };
}

enum AtomicRepr<A> {
    Std(A),
    Model {
        exec: Arc<Execution>,
        obj: ObjId,
        inner: A,
    },
}

checkable_atomic!(
    IAtomicU64,
    AtomicU64,
    u64,
    "A `u64` counter the interleaving explorer can schedule around."
);
checkable_atomic!(
    IAtomicUsize,
    AtomicUsize,
    usize,
    "A `usize` gauge the interleaving explorer can schedule around."
);
checkable_atomic!(
    IAtomicBool,
    AtomicBool,
    bool,
    "A `bool` flag the interleaving explorer can schedule around. The \
     passthrough backend is a plain `AtomicBool`, so `store` on the std \
     repr stays async-signal-safe (the SIGINT handler relies on this)."
);

impl IAtomicU64 {
    pub fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
        self.point(OpKind::Rmw).fetch_add(value, order)
    }

    pub fn fetch_sub(&self, value: u64, order: Ordering) -> u64 {
        self.point(OpKind::Rmw).fetch_sub(value, order)
    }

    pub fn fetch_max(&self, value: u64, order: Ordering) -> u64 {
        self.point(OpKind::Rmw).fetch_max(value, order)
    }

    /// Direct access to the underlying std atomic — passthrough repr
    /// only. The one legitimate caller is the SIGINT handler path, which
    /// must stay async-signal-safe and can tolerate panicking on a model
    /// repr (models never install signal handlers).
    pub fn as_std(&self) -> &AtomicU64 {
        match &self.repr {
            AtomicRepr::Std(a) => a,
            AtomicRepr::Model { .. } => {
                panic!("as_std on a model-backed atomic")
            }
        }
    }
}

impl IAtomicUsize {
    pub fn fetch_add(&self, value: usize, order: Ordering) -> usize {
        self.point(OpKind::Rmw).fetch_add(value, order)
    }

    pub fn fetch_sub(&self, value: usize, order: Ordering) -> usize {
        self.point(OpKind::Rmw).fetch_sub(value, order)
    }
}

impl IAtomicBool {
    /// Direct access to the underlying std atomic — passthrough repr
    /// only (see [`IAtomicU64::as_std`]).
    pub fn as_std(&self) -> &AtomicBool {
        match &self.repr {
            AtomicRepr::Std(a) => a,
            AtomicRepr::Model { .. } => {
                panic!("as_std on a model-backed atomic")
            }
        }
    }
}

impl Default for IAtomicU64 {
    fn default() -> IAtomicU64 {
        IAtomicU64::new(0)
    }
}

impl Default for IAtomicUsize {
    fn default() -> IAtomicUsize {
        IAtomicUsize::new(0)
    }
}

impl Default for IAtomicBool {
    fn default() -> IAtomicBool {
        IAtomicBool::new(false)
    }
}
