//! Source-invariant lint for the concurrency-critical core.
//!
//! A token-level scanner (comments, string/char literals, and raw
//! strings are blanked before matching — no false positives from docs)
//! that enforces the discipline the interleaving explorer depends on:
//!
//! 1. **Bare-sync ban** — the guarded modules (the four modeled
//!    protocols' homes) must not import `std::sync::{Mutex, Condvar,
//!    mpsc}` or `AtomicU64`; shared state there goes through the
//!    `interleave` primitives so the explorer sees every operation.
//! 2. **Unsafe headers** — every crate root carries
//!    `#![forbid(unsafe_code)]`. The one exception is `crates/stream`
//!    (`#![deny(unsafe_code)]`), whose single `#[allow(unsafe_code)]`
//!    lives in `shutdown.rs` next to a `Safety` comment for the
//!    `signal(2)` FFI.
//! 3. **Time ban** — no `Instant::now`/`SystemTime::now` in
//!    model-checked code paths: wall-clock reads make schedules
//!    irreproducible, so deadlines are injected as closures.
//!
//! The scan is deliberately dumb (no parser, no new dependencies): it
//! understands just enough Rust lexical structure to blank non-code
//! text, then does whole-word matching. That keeps it honest to audit
//! and fast enough for tier-1.

use std::path::{Path, PathBuf};

/// One broken invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Stable rule id: `bare-sync`, `unsafe-header`, `unsafe-use`,
    /// `wall-clock`.
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Modules whose shared state must go through `interleave` primitives.
const GUARDED_SYNC: &[&str] = &[
    "crates/stream/src/server.rs",
    "crates/stream/src/proto.rs",
    "crates/stream/src/policy.rs",
    "crates/stream/src/shutdown.rs",
    "crates/stream/src/metrics.rs",
    "crates/snapstore/src/log.rs",
];

/// `std::sync` names banned inside guarded modules.
const BANNED_SYNC: &[&str] = &["Mutex", "Condvar", "mpsc", "AtomicU64"];

/// Model-checked paths where wall-clock reads are banned. Directory
/// prefixes end with `/`.
const TIME_BANNED: &[&str] = &[
    "crates/stream/src/proto.rs",
    "crates/stream/src/policy.rs",
    "crates/snapstore/src/",
];

/// The crate allowed to keep `#![deny(unsafe_code)]` instead of forbid
/// (its `shutdown.rs` carries the workspace's one `allow`).
const DENY_EXCEPTION: &str = "crates/stream/src/lib.rs";

/// The one file allowed to contain `unsafe` (with a Safety comment).
const UNSAFE_EXCEPTION: &str = "crates/stream/src/shutdown.rs";

/// Blank comments, string literals, char literals, and raw strings with
/// spaces, preserving newlines (so line numbers survive). Handles nested
/// block comments, escapes, and `r#"…"#` raw strings.
pub fn strip_tokens(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = vec![b' '; bytes.len()];
    let mut i = 0;
    // Copy newlines through unconditionally so line mapping holds.
    for (idx, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            out[idx] = b'\n';
        }
    }
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            b'r' if is_raw_string_start(bytes, i) => {
                // r"..." or r#"..."# (any hash count).
                let mut j = i + 1;
                let mut hashes = 0;
                while j < bytes.len() && bytes[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                // skip opening quote
                j += 1;
                // scan for closing quote followed by `hashes` hashes
                while j < bytes.len() {
                    if bytes[j] == b'"' {
                        let mut k = j + 1;
                        let mut seen = 0;
                        while k < bytes.len() && bytes[k] == b'#' && seen < hashes {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            j = k;
                            break;
                        }
                    }
                    j += 1;
                }
                i = j;
            }
            b'\'' if is_char_literal(bytes, i) => {
                i += 1;
                if i < bytes.len() && bytes[i] == b'\\' {
                    i += 2;
                } else {
                    i += 1;
                }
                // closing quote
                if i < bytes.len() && bytes[i] == b'\'' {
                    i += 1;
                }
            }
            _ => {
                out[i] = b;
                i += 1;
            }
        }
    }
    String::from_utf8(out).unwrap_or_default()
}

/// Is `bytes[i] == b'r'` the start of a raw string (`r"` / `r#`), and
/// not the tail of an identifier like `writer`?
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    if i > 0 {
        let prev = bytes[i - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' {
            return false;
        }
    }
    let mut j = i + 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

/// Distinguish char literals from lifetimes (`'a`) and labels
/// (`'outer:`): a char literal closes with `'` after one (possibly
/// escaped) character.
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    if i + 1 >= bytes.len() {
        return false;
    }
    if bytes[i + 1] == b'\\' {
        return true;
    }
    i + 2 < bytes.len() && bytes[i + 2] == b'\''
}

/// Does `text` contain `word` bounded by non-identifier characters?
fn contains_word(text: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = text[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !text.as_bytes()[at - 1].is_ascii_alphanumeric() && text.as_bytes()[at - 1] != b'_';
        let end = at + word.len();
        let after_ok = end >= text.len()
            || !text.as_bytes()[end].is_ascii_alphanumeric() && text.as_bytes()[end] != b'_';
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

fn is_guarded_sync(path: &str) -> bool {
    GUARDED_SYNC.contains(&path)
}

fn is_time_banned(path: &str) -> bool {
    TIME_BANNED.iter().any(|p| {
        if p.ends_with('/') {
            path.starts_with(p)
        } else {
            path == *p
        }
    })
}

/// Lint one file's contents under its repo-relative path. Pure — the
/// negative tests feed synthetic sources through this.
pub fn check_source(path: &str, source: &str) -> Vec<Violation> {
    let stripped = strip_tokens(source);
    let mut violations = Vec::new();

    if is_guarded_sync(path) {
        // A `use std::sync::…` statement can wrap across lines; buffer
        // from the line introducing `std::sync` to the terminating `;`.
        let mut pending: Option<(usize, String)> = None;
        for (idx, line) in stripped.lines().enumerate() {
            let lineno = idx + 1;
            if let Some((start, buf)) = &mut pending {
                buf.push(' ');
                buf.push_str(line);
                if line.contains(';') {
                    let (start, buf) = (*start, std::mem::take(buf));
                    pending = None;
                    flag_bare_sync(path, start, &buf, &mut violations);
                }
                continue;
            }
            if line.contains("std::sync") {
                if line.contains(';') || !line.trim_start().starts_with("use ") {
                    flag_bare_sync(path, lineno, line, &mut violations);
                } else {
                    pending = Some((lineno, line.to_string()));
                }
            }
        }
        if let Some((start, buf)) = pending {
            flag_bare_sync(path, start, &buf, &mut violations);
        }
    }

    if is_time_banned(path) {
        for (idx, line) in stripped.lines().enumerate() {
            for clock in ["Instant::now", "SystemTime::now"] {
                if line.contains(clock) {
                    violations.push(Violation {
                        file: path.to_string(),
                        line: idx + 1,
                        rule: "wall-clock",
                        message: format!(
                            "{clock} in a model-checked path; inject time (deadline \
                             closures / frame timestamps) so schedules replay"
                        ),
                    });
                }
            }
        }
    }

    // Unsafe usage: banned everywhere except the documented exception.
    if path != UNSAFE_EXCEPTION {
        for (idx, line) in stripped.lines().enumerate() {
            if contains_word(line, "unsafe") && !line.contains("unsafe_code") {
                violations.push(Violation {
                    file: path.to_string(),
                    line: idx + 1,
                    rule: "unsafe-use",
                    message: format!(
                        "`unsafe` outside {UNSAFE_EXCEPTION}; the workspace forbids \
                         unsafe code everywhere else"
                    ),
                });
            }
        }
    } else {
        // The exception must carry its licence: the allow attribute and a
        // Safety comment (checked in the raw source — it *is* a comment).
        if stripped.contains("unsafe") && !stripped.contains("#[allow(unsafe_code)]") {
            violations.push(Violation {
                file: path.to_string(),
                line: 1,
                rule: "unsafe-use",
                message: "unsafe in shutdown.rs without #[allow(unsafe_code)]".to_string(),
            });
        }
        if stripped.contains("unsafe") && !source.contains("Safety") {
            violations.push(Violation {
                file: path.to_string(),
                line: 1,
                rule: "unsafe-use",
                message: "unsafe in shutdown.rs without a Safety comment".to_string(),
            });
        }
    }

    // Crate roots must pin their unsafe stance.
    if path.ends_with("src/lib.rs") {
        let forbid = stripped.contains("#![forbid(unsafe_code)]");
        let deny = stripped.contains("#![deny(unsafe_code)]");
        let ok = if path == DENY_EXCEPTION {
            forbid || deny
        } else {
            forbid
        };
        if !ok {
            violations.push(Violation {
                file: path.to_string(),
                line: 1,
                rule: "unsafe-header",
                message: if path == DENY_EXCEPTION {
                    "crate root must carry #![deny(unsafe_code)] (or forbid)".to_string()
                } else {
                    "crate root must carry #![forbid(unsafe_code)]".to_string()
                },
            });
        }
    }

    violations
}

fn flag_bare_sync(path: &str, line: usize, text: &str, out: &mut Vec<Violation>) {
    for name in BANNED_SYNC {
        if contains_word(text, name) {
            out.push(Violation {
                file: path.to_string(),
                line,
                rule: "bare-sync",
                message: format!(
                    "bare std::sync::{name} in a guarded module; use the interleave \
                     primitive so the schedule explorer can see the operation"
                ),
            });
        }
    }
}

/// Walk the workspace at `root` and lint every `.rs` source file.
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    for top in ["src", "crates", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut violations = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = std::fs::read_to_string(&file)?;
        violations.extend(check_source(&rel, &source));
    }
    Ok(violations)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_blanks_comments_strings_and_chars() {
        let src = r###"
// std::sync::Mutex in a line comment
/* std::sync::Mutex in /* a nested */ block */
let s = "std::sync::Mutex in a string";
let r = r#"std::sync::Mutex raw"#;
let c = '"';
let keep = std_sync_free();
"###;
        let stripped = strip_tokens(src);
        assert!(!stripped.contains("Mutex"));
        assert!(stripped.contains("keep = std_sync_free()"));
        assert_eq!(
            stripped.matches('\n').count(),
            src.matches('\n').count(),
            "newlines preserved for line numbering"
        );
    }

    #[test]
    fn bare_sync_flagged_only_in_guarded_modules() {
        let bad = "use std::sync::Mutex;\n";
        let hits = check_source("crates/stream/src/server.rs", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "bare-sync");
        assert_eq!(hits[0].line, 1);
        assert!(check_source("crates/analysis/src/suite.rs", bad).is_empty());
        // Arc is fine even in guarded modules.
        let ok = "use std::sync::Arc;\nuse std::sync::atomic::Ordering;\n";
        assert!(check_source("crates/stream/src/server.rs", ok).is_empty());
    }

    #[test]
    fn bare_sync_catches_multiline_use_lists() {
        let bad = "use std::sync::{\n    Arc,\n    Mutex,\n};\n";
        let hits = check_source("crates/stream/src/policy.rs", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 1);
        let bad2 = "use std::sync::atomic::{AtomicU64, Ordering};\n";
        assert_eq!(check_source("crates/stream/src/metrics.rs", bad2).len(), 1);
    }

    #[test]
    fn bare_sync_in_comment_or_string_is_ignored() {
        let ok = "// std::sync::Mutex discussion\nlet s = \"std::sync::mpsc\";\n";
        assert!(check_source("crates/stream/src/server.rs", ok).is_empty());
    }

    #[test]
    fn wall_clock_banned_in_model_checked_paths() {
        let bad = "let t = Instant::now();\n";
        let hits = check_source("crates/stream/src/proto.rs", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "wall-clock");
        assert!(check_source("crates/stream/src/server.rs", bad).is_empty());
        let bad2 = "let t = SystemTime::now();\n";
        assert_eq!(check_source("crates/snapstore/src/log.rs", bad2).len(), 1);
    }

    #[test]
    fn unsafe_rules() {
        let bad = "unsafe { core::hint::unreachable_unchecked() }\n";
        let hits = check_source("crates/analysis/src/suite.rs", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "unsafe-use");
        // The exception file needs both the allow and a Safety comment.
        let licensed =
            "#[allow(unsafe_code)]\n// Safety: signal handler is a plain store\nunsafe { x() }\n";
        assert!(check_source("crates/stream/src/shutdown.rs", licensed).is_empty());
        let unlicensed = "unsafe { x() }\n";
        assert_eq!(
            check_source("crates/stream/src/shutdown.rs", unlicensed).len(),
            2
        );
    }

    #[test]
    fn crate_roots_need_forbid_header() {
        assert_eq!(
            check_source("crates/analysis/src/lib.rs", "pub mod suite;\n").len(),
            1
        );
        assert!(check_source(
            "crates/analysis/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod suite;\n"
        )
        .is_empty());
        // stream may deny instead of forbid (shutdown.rs FFI).
        assert!(check_source(
            "crates/stream/src/lib.rs",
            "#![deny(unsafe_code)]\npub mod server;\n"
        )
        .is_empty());
        assert_eq!(
            check_source("crates/stream/src/lib.rs", "pub mod server;\n").len(),
            1
        );
    }
}
