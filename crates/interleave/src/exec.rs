//! The deterministic cooperative execution engine behind the model
//! backend.
//!
//! Every model thread is a real OS thread, but at most one of them runs
//! user code at any instant: a baton (the `current` task id) is handed
//! from thread to thread at *schedule points* — one per visible operation
//! (atomic access, mutex lock/unlock, channel send/recv, join, yield,
//! thread finish). The running thread announces its next operation,
//! decides who performs the next operation (following the explorer's
//! script for the replayed prefix, then a deterministic default), and
//! either proceeds or parks until the baton comes back. Because decisions
//! are a pure function of the schedule script and the (deterministic)
//! model code, any schedule can be replayed exactly from its decision
//! list — the "seed" printed on failure.
//!
//! The engine does not model weak memory: all operations are explored at
//! sequential-consistency granularity (every interleaving of whole
//! operations, nothing finer). That matches how the production code uses
//! `SeqCst`/lock-protected state, and is what makes the passthrough
//! backend a faithful twin.

use std::sync::{Condvar, Mutex};

/// Task identifier: index into the execution's thread table. Task 0 is
/// the closure passed to the explorer.
pub(crate) type TaskId = usize;

/// Object identifier: index into the execution's object table (atomics,
/// mutexes, and channels share one id space).
pub(crate) type ObjId = usize;

/// Sentinel value for "no task holds the baton" (execution aborted or
/// complete).
const NOBODY: usize = usize::MAX;

/// Panic payload used to unwind model threads when the execution aborts
/// (assertion failure elsewhere, deadlock, or operation limit). Never
/// surfaces to users: the explorer converts the recorded abort into a
/// [`crate::Failure`].
pub(crate) struct ExecAbort;

/// Install (once, process-wide) a panic hook that stays silent for
/// [`ExecAbort`] sentinels and delegates everything else to the previous
/// hook. Without this, every internal abort unwind would print a
/// `Box<dyn Any>` backtrace to stderr even though the panic is caught.
pub(crate) fn install_quiet_abort_hook() {
    static HOOK: std::sync::OnceLock<()> = std::sync::OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ExecAbort>().is_none() {
                prev(info);
            }
        }));
    });
}

/// The kind of one visible operation, for enabledness and commutativity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpKind {
    /// A freshly spawned task's first step.
    Start,
    /// A task's last step (after its closure returned).
    Finish,
    /// Explicit yield: a pure choice point.
    Yield,
    /// Atomic load (`obj`).
    Load,
    /// Atomic store (`obj`).
    Store,
    /// Atomic read-modify-write (`obj`).
    Rmw,
    /// Mutex acquire (`obj`); enabled only while unheld.
    Lock,
    /// Mutex release (`obj`).
    Unlock,
    /// Channel send (`obj`); enabled while the queue has room or the
    /// receiver is gone.
    Send,
    /// Channel receive (`obj`); enabled while the queue is non-empty or
    /// every sender is gone.
    Recv,
    /// A sender handle dropped (`obj`).
    CloseTx,
    /// The receiver handle dropped (`obj`).
    CloseRx,
    /// Join on task `obj`; enabled once that task finished.
    Join,
}

/// One announced operation. For [`OpKind::Join`], `obj` is the target
/// task id; for `Start`/`Finish`/`Yield` it is unused (0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Op {
    pub kind: OpKind,
    pub obj: ObjId,
}

impl Op {
    pub(crate) fn control(kind: OpKind) -> Op {
        Op { kind, obj: 0 }
    }

    /// Is this a data operation (touches a shared object)?
    fn is_data(self) -> bool {
        !matches!(
            self.kind,
            OpKind::Start | OpKind::Finish | OpKind::Yield | OpKind::Join
        )
    }
}

/// Do two pending operations *conflict* (their relative order can matter)?
/// Control operations (start/finish/yield/join) and operations on distinct
/// objects commute; on the same object only load/load commutes. This is
/// the DPOR-lite pruning relation: an alternative first step that commutes
/// with the step actually taken only reorders adjacent commuting
/// operations, so the pruned schedule reaches the same state.
pub(crate) fn conflicts(a: Op, b: Op) -> bool {
    if !a.is_data() || !b.is_data() {
        return false;
    }
    if a.obj != b.obj {
        return false;
    }
    !(a.kind == OpKind::Load && b.kind == OpKind::Load)
}

/// What performing an announced operation told the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpOutcome {
    /// The operation took effect.
    Proceed,
    /// A channel endpoint found the other side disconnected.
    Disconnected,
}

/// Why a run ended abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum AbortKind {
    /// User code panicked (assertion failure).
    Panic,
    /// No enabled task while at least one was still runnable.
    Deadlock,
    /// The per-schedule operation budget was exhausted (livelock guard).
    OpLimit,
    /// The replay script named a task that was not choosable.
    BadScript,
    /// Every enabled task is in the sleep set: this schedule only
    /// reorders commuting operations of an already-explored one. Not a
    /// failure — the explorer counts it and backtracks.
    Redundant,
}

/// One scripted decision: the task to grant, plus the sibling branches
/// already explored at this node (their tasks sleep in this subtree
/// until a conflicting operation wakes them — sleep sets).
#[derive(Debug, Clone)]
pub(crate) struct ScriptEntry {
    pub chosen: TaskId,
    pub sleeping: Vec<TaskId>,
}

/// An abnormal end, with its human-readable reason.
#[derive(Debug, Clone)]
pub(crate) struct Abort {
    pub kind: AbortKind,
    pub message: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Finished,
}

/// Model-side state of one registered object.
enum ObjState {
    Atomic,
    Mutex { holder: Option<TaskId> },
    Chan(ChanState),
}

struct ChanState {
    len: usize,
    bound: usize,
    senders: usize,
    receiver_alive: bool,
}

/// Everything a finished run reports back to the explorer.
#[derive(Debug)]
pub(crate) struct RunResult {
    /// Filtered candidate list of every decision, in order.
    pub trace: Vec<Vec<TaskId>>,
    /// The task chosen at every decision (the schedule seed).
    pub chosen: Vec<TaskId>,
    /// `Some` if the run aborted.
    pub abort: Option<Abort>,
    /// Alternatives dropped by the commutativity pruning rule.
    pub pruned: u64,
    /// Alternatives dropped by the preemption bound.
    pub clipped: u64,
}

struct ExecState {
    status: Vec<Status>,
    pending: Vec<Option<Op>>,
    current: usize,
    objects: Vec<ObjState>,
    script: Vec<ScriptEntry>,
    step: usize,
    /// Sleep set: tasks (with the pending op they slept on) whose next
    /// operation was already explored in a sibling branch; woken when a
    /// conflicting operation executes.
    sleep: Vec<(TaskId, Op)>,
    trace: Vec<Vec<TaskId>>,
    chosen: Vec<TaskId>,
    preemptions: usize,
    bound: usize,
    prune: bool,
    pruned: u64,
    clipped: u64,
    ops: u64,
    max_ops: u64,
    abort: Option<Abort>,
}

/// One model execution: shared scheduler state plus the condvar the baton
/// dance runs on.
pub(crate) struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
}

impl Execution {
    pub(crate) fn new(
        script: Vec<ScriptEntry>,
        bound: usize,
        prune: bool,
        max_ops: u64,
    ) -> Execution {
        Execution {
            state: Mutex::new(ExecState {
                status: Vec::new(),
                pending: Vec::new(),
                current: NOBODY,
                objects: Vec::new(),
                script,
                step: 0,
                sleep: Vec::new(),
                trace: Vec::new(),
                chosen: Vec::new(),
                preemptions: 0,
                bound,
                prune,
                pruned: 0,
                clipped: 0,
                ops: 0,
                max_ops,
                abort: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ExecState> {
        // The scheduler mutex is only poisoned if the engine itself
        // panicked while holding it, which is a bug worth propagating —
        // but recovering keeps the abort path (threads unwinding with
        // `ExecAbort`) from cascading into double panics.
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Register the root task (always id 0) and hand it the baton.
    pub(crate) fn register_root(&self) {
        let mut s = self.lock();
        debug_assert!(s.status.is_empty());
        s.status.push(Status::Runnable);
        s.pending.push(None);
        s.current = 0;
    }

    /// Register a freshly spawned task; choosable from the spawner's next
    /// schedule point via its implicit `Start` operation.
    pub(crate) fn register_task(&self) -> TaskId {
        let mut s = self.lock();
        let id = s.status.len();
        s.status.push(Status::Runnable);
        s.pending.push(Some(Op::control(OpKind::Start)));
        id
    }

    pub(crate) fn register_atomic(&self) -> ObjId {
        self.register_object(ObjState::Atomic)
    }

    pub(crate) fn register_mutex(&self) -> ObjId {
        self.register_object(ObjState::Mutex { holder: None })
    }

    pub(crate) fn register_channel(&self, bound: usize) -> ObjId {
        assert!(bound > 0, "interleave channels need a bound of at least 1");
        self.register_object(ObjState::Chan(ChanState {
            len: 0,
            bound,
            senders: 1,
            receiver_alive: true,
        }))
    }

    fn register_object(&self, obj: ObjState) -> ObjId {
        let mut s = self.lock();
        s.objects.push(obj);
        s.objects.len() - 1
    }

    /// Is `task` finished? (Used to skip redundant scope-exit joins.)
    pub(crate) fn is_finished(&self, task: TaskId) -> bool {
        self.lock().status[task] == Status::Finished
    }

    /// A freshly spawned task parks here until first granted the baton.
    pub(crate) fn begin(&self, me: TaskId) {
        let mut s = self.lock();
        loop {
            if s.abort.is_some() {
                drop(s);
                std::panic::panic_any(ExecAbort);
            }
            if s.current == me {
                s.pending[me] = None;
                return;
            }
            s = self.wait(s);
        }
    }

    /// The schedule point: announce `op`, decide who performs the next
    /// operation, park until it is this task's turn, then apply the
    /// operation's model effects and return.
    pub(crate) fn schedule(&self, me: TaskId, op: Op) -> OpOutcome {
        let mut s = self.lock();
        if s.abort.is_some() {
            return self.bail(s);
        }
        s.ops += 1;
        if s.ops > s.max_ops {
            let limit = s.max_ops;
            return self.abort_locked(
                s,
                AbortKind::OpLimit,
                format!(
                    "operation budget of {limit} exhausted — \
                     livelock, or a model too large for exhaustive exploration"
                ),
            );
        }
        s.pending[me] = Some(op);
        match decide(&mut s, me) {
            Ok(next) => {
                s.current = next;
                self.cv.notify_all();
            }
            Err((kind, message)) => return self.abort_locked(s, kind, message),
        }
        loop {
            if s.abort.is_some() {
                return self.bail(s);
            }
            if s.current == me {
                let outcome = apply(&mut s, me, op);
                // Wake sleepers whose slept-on operation conflicts with
                // the one just executed: from here on, running them first
                // is no longer a mere reorder of commuting operations.
                s.sleep.retain(|&(_, slept)| !conflicts(slept, op));
                s.pending[me] = None;
                return outcome;
            }
            s = self.wait(s);
        }
    }

    /// A task's closure returned: announce `Finish` (its own choice
    /// point), mark the task finished, then hand the baton onward.
    pub(crate) fn finish(&self, me: TaskId) {
        self.schedule(me, Op::control(OpKind::Finish));
        let mut s = self.lock();
        if s.abort.is_some() {
            // Everyone is unwinding; this thread just exits.
            return;
        }
        match decide(&mut s, me) {
            Ok(next) => {
                s.current = next;
                self.cv.notify_all();
            }
            Err((kind, message)) => {
                // The finishing thread is exiting anyway: record the abort
                // and wake everyone, but do not unwind.
                s.abort = Some(Abort { kind, message });
                s.current = NOBODY;
                self.cv.notify_all();
            }
        }
    }

    /// Record a panic from user code (the real assertion failure). The
    /// first recorded abort wins; `ExecAbort` sentinels are ignored.
    pub(crate) fn record_payload(&self, payload: &(dyn std::any::Any + Send)) {
        if payload.downcast_ref::<ExecAbort>().is_some() {
            return;
        }
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        };
        let mut s = self.lock();
        if s.abort.is_none() {
            s.abort = Some(Abort {
                kind: AbortKind::Panic,
                message,
            });
        }
        s.current = NOBODY;
        self.cv.notify_all();
    }

    /// Drain the run's results (call after every thread has exited).
    pub(crate) fn take_results(&self) -> RunResult {
        let mut s = self.lock();
        RunResult {
            trace: std::mem::take(&mut s.trace),
            chosen: std::mem::take(&mut s.chosen),
            abort: s.abort.clone(),
            pruned: s.pruned,
            clipped: s.clipped,
        }
    }

    fn wait<'a>(
        &self,
        guard: std::sync::MutexGuard<'a, ExecState>,
    ) -> std::sync::MutexGuard<'a, ExecState> {
        match self.cv.wait(guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Record an abort discovered at a schedule point, wake everyone, and
    /// unwind (unless already unwinding from another panic).
    fn abort_locked(
        &self,
        mut s: std::sync::MutexGuard<'_, ExecState>,
        kind: AbortKind,
        message: String,
    ) -> OpOutcome {
        if s.abort.is_none() {
            s.abort = Some(Abort { kind, message });
        }
        s.current = NOBODY;
        self.cv.notify_all();
        self.bail(s)
    }

    /// Leave a schedule point on an aborted execution: unwind in normal
    /// flow, no-op when already unwinding (so guard drops during panic
    /// unwinding never double-panic).
    fn bail(&self, s: std::sync::MutexGuard<'_, ExecState>) -> OpOutcome {
        drop(s);
        if std::thread::panicking() {
            OpOutcome::Proceed
        } else {
            std::panic::panic_any(ExecAbort)
        }
    }
}

/// Is `op` performable right now?
fn enabled(s: &ExecState, op: Op) -> bool {
    match op.kind {
        OpKind::Start
        | OpKind::Finish
        | OpKind::Yield
        | OpKind::Load
        | OpKind::Store
        | OpKind::Rmw
        | OpKind::Unlock
        | OpKind::CloseTx
        | OpKind::CloseRx => true,
        OpKind::Lock => match &s.objects[op.obj] {
            ObjState::Mutex { holder } => holder.is_none(),
            _ => unreachable!("lock on non-mutex object"),
        },
        OpKind::Send => match &s.objects[op.obj] {
            ObjState::Chan(c) => !c.receiver_alive || c.len < c.bound,
            _ => unreachable!("send on non-channel object"),
        },
        OpKind::Recv => match &s.objects[op.obj] {
            ObjState::Chan(c) => c.len > 0 || c.senders == 0,
            _ => unreachable!("recv on non-channel object"),
        },
        OpKind::Join => s.status[op.obj] == Status::Finished,
    }
}

/// Apply the model-side effects of a granted operation.
fn apply(s: &mut ExecState, me: TaskId, op: Op) -> OpOutcome {
    match op.kind {
        OpKind::Lock => {
            let ObjState::Mutex { holder } = &mut s.objects[op.obj] else {
                unreachable!()
            };
            debug_assert!(holder.is_none());
            *holder = Some(me);
        }
        OpKind::Unlock => {
            let ObjState::Mutex { holder } = &mut s.objects[op.obj] else {
                unreachable!()
            };
            debug_assert_eq!(*holder, Some(me));
            *holder = None;
        }
        OpKind::Send => {
            let ObjState::Chan(c) = &mut s.objects[op.obj] else {
                unreachable!()
            };
            if !c.receiver_alive {
                return OpOutcome::Disconnected;
            }
            debug_assert!(c.len < c.bound);
            c.len += 1;
        }
        OpKind::Recv => {
            let ObjState::Chan(c) = &mut s.objects[op.obj] else {
                unreachable!()
            };
            if c.len == 0 {
                debug_assert_eq!(c.senders, 0);
                return OpOutcome::Disconnected;
            }
            c.len -= 1;
        }
        OpKind::CloseTx => {
            let ObjState::Chan(c) = &mut s.objects[op.obj] else {
                unreachable!()
            };
            c.senders = c.senders.saturating_sub(1);
        }
        OpKind::CloseRx => {
            let ObjState::Chan(c) = &mut s.objects[op.obj] else {
                unreachable!()
            };
            c.receiver_alive = false;
        }
        OpKind::Finish => {
            s.status[me] = Status::Finished;
        }
        OpKind::Start
        | OpKind::Yield
        | OpKind::Load
        | OpKind::Store
        | OpKind::Rmw
        | OpKind::Join => {}
    }
    OpOutcome::Proceed
}

/// One scheduling decision: compute the choosable set, put scripted
/// sibling branches to sleep, filter the candidate list (sleep set, then
/// preemption bound), record the decision, and return the chosen task —
/// the script entry while replaying a prefix, `candidates[0]` beyond it.
fn decide(s: &mut ExecState, from: TaskId) -> Result<TaskId, (AbortKind, String)> {
    // Sibling branches already explored at this node sleep in this
    // subtree: re-running their operation before anything conflicting
    // executes would only reorder commuting operations.
    if s.prune && s.step < s.script.len() {
        let sleeping = s.script[s.step].sleeping.clone();
        for t in sleeping {
            if s.sleep.iter().all(|&(st, _)| st != t) {
                if let Some(op) = s.pending[t] {
                    s.sleep.push((t, op));
                }
            }
        }
    }
    let choosable: Vec<TaskId> = (0..s.status.len())
        .filter(|&t| {
            s.status[t] == Status::Runnable
                && s.pending[t].map(|op| enabled(s, op)).unwrap_or(false)
        })
        .collect();
    if choosable.is_empty() {
        let runnable = s.status.contains(&Status::Runnable);
        if !runnable {
            // Nothing left to schedule (only reachable from a finishing
            // task's hand-off); mark the execution idle.
            return Ok(NOBODY);
        }
        return Err((AbortKind::Deadlock, deadlock_message(s)));
    }
    let asleep = |s: &ExecState, t: TaskId| s.sleep.iter().any(|&(st, _)| st == t);
    let awake: Vec<TaskId> = choosable
        .iter()
        .copied()
        .filter(|&t| !asleep(s, t))
        .collect();
    if awake.is_empty() {
        return Err((
            AbortKind::Redundant,
            "every enabled task is asleep (schedule is a reorder of an \
             explored one)"
                .to_string(),
        ));
    }
    let from_enabled = choosable.contains(&from);
    let default = if awake.contains(&from) {
        from
    } else {
        awake[0]
    };
    let mut candidates = vec![default];
    for &t in &choosable {
        if t == default {
            continue;
        }
        if asleep(s, t) {
            s.pruned += 1;
            continue;
        }
        // Switching away from a still-enabled running task costs one
        // preemption; a blocked or finished task switches for free.
        if from_enabled && s.preemptions >= s.bound {
            s.clipped += 1;
            continue;
        }
        candidates.push(t);
    }
    let chosen = if s.step < s.script.len() {
        let want = s.script[s.step].chosen;
        if !choosable.contains(&want) || asleep(s, want) {
            let step = s.step;
            return Err((
                AbortKind::BadScript,
                format!(
                    "replay step {step}: task {want} is not choosable (model \
                     changed or seed is stale)"
                ),
            ));
        }
        want
    } else {
        candidates[0]
    };
    if from_enabled && chosen != from {
        s.preemptions += 1;
    }
    s.step += 1;
    s.trace.push(candidates);
    s.chosen.push(chosen);
    Ok(chosen)
}

fn deadlock_message(s: &ExecState) -> String {
    use std::fmt::Write as _;
    let mut msg = String::from("deadlock: no enabled task;");
    for t in 0..s.status.len() {
        if s.status[t] != Status::Runnable {
            continue;
        }
        match s.pending[t] {
            Some(op) => {
                let _ = write!(msg, " task {t} blocked on {:?}(obj {});", op.kind, op.obj);
            }
            None => {
                let _ = write!(msg, " task {t} running;");
            }
        }
    }
    msg
}
