//! The schedule explorer: exhaustive DFS over interleavings up to a
//! preemption bound, with commutativity pruning and seed replay.
//!
//! Each run executes the user closure under a script — the task to grant
//! at each of the first `script.len()` decisions. The engine reports the
//! *candidate list* of every decision it made (already filtered by the
//! preemption bound and the pruning rule); the explorer depth-first
//! enumerates those lists, so the set of schedules visited is exactly
//! the bounded, pruned schedule tree. A failing run's decision sequence
//! is printed as a `-`-separated seed that [`Explorer::replay`] turns
//! back into the identical execution.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::ctx::CtxGuard;
use crate::exec::{AbortKind, Execution, RunResult, ScriptEntry, TaskId};

/// Builder/runner for bounded exhaustive schedule exploration.
#[derive(Debug, Clone)]
pub struct Explorer {
    bound: usize,
    prune: bool,
    max_schedules: u64,
    max_ops: u64,
}

impl Default for Explorer {
    fn default() -> Explorer {
        Explorer::new()
    }
}

/// Statistics from a completed (failure-free) exploration.
#[derive(Debug, Clone, Copy, Default)]
pub struct Report {
    /// Schedules executed to completion.
    pub schedules: u64,
    /// Runs abandoned because every enabled task was asleep — the
    /// schedule was a commuting reorder of one already explored.
    pub redundant: u64,
    /// Branch alternatives suppressed by the sleep sets.
    pub pruned: u64,
    /// Alternatives dropped by the preemption bound.
    pub bound_clipped: u64,
    /// Longest schedule (decision count) seen.
    pub max_depth: usize,
}

impl Report {
    /// Fraction of considered branch points dropped by the sleep-set
    /// pruning (not by the bound):
    /// `pruned / (pruned + explored alternatives)`.
    pub fn prune_rate(&self) -> f64 {
        // Every run beyond the first corresponds to exactly one explored
        // alternative branch (including the runs cut short as redundant).
        let explored_alts = (self.schedules + self.redundant).saturating_sub(1);
        let denom = self.pruned + explored_alts;
        if denom == 0 {
            0.0
        } else {
            self.pruned as f64 / denom as f64
        }
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} schedules (+{} redundant, max depth {}, {} branches pruned [{:.1}%], \
             {} clipped by bound)",
            self.schedules,
            self.redundant,
            self.max_depth,
            self.pruned,
            100.0 * self.prune_rate(),
            self.bound_clipped,
        )
    }
}

/// Why an exploration stopped with a counterexample (or gave up).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// An assertion (or any panic) fired in the model code.
    Panic,
    /// A schedule reached a state with no enabled task.
    Deadlock,
    /// One schedule exceeded the per-run operation budget.
    OpLimit,
    /// The exploration exceeded its schedule budget without finishing.
    ScheduleLimit,
    /// A replay seed no longer matches the model.
    BadScript,
}

/// A counterexample schedule, replayable from `seed`.
#[derive(Debug, Clone)]
pub struct Failure {
    /// `-`-separated decision list reproducing this schedule exactly.
    pub seed: String,
    pub kind: FailureKind,
    /// Panic message, deadlock description, or budget note.
    pub message: String,
    /// Schedules executed up to and including the failing one.
    pub schedules: u64,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} after {} schedule(s) [seed {}]: {}",
            self.kind, self.schedules, self.seed, self.message
        )
    }
}

fn seed_string(chosen: &[TaskId]) -> String {
    chosen
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join("-")
}

fn parse_seed(seed: &str) -> Vec<ScriptEntry> {
    if seed.is_empty() {
        return Vec::new();
    }
    seed.split('-')
        .map(|s| ScriptEntry {
            chosen: s.parse().expect("seed must be task ids separated by '-'"),
            sleeping: Vec::new(),
        })
        .collect()
}

impl Explorer {
    /// Defaults: 2 preemptions, pruning on, generous run/schedule budgets.
    pub fn new() -> Explorer {
        Explorer {
            bound: 2,
            prune: true,
            max_schedules: 1_000_000,
            max_ops: 200_000,
        }
    }

    /// Set the preemption bound (context switches away from a task that
    /// could have kept running). Free switches at blocking operations are
    /// never counted.
    pub fn preemptions(mut self, bound: usize) -> Explorer {
        self.bound = bound;
        self
    }

    /// Toggle DPOR-lite sleep-set pruning (on by default). After a branch
    /// at a decision node is fully explored, its task *sleeps* in the
    /// sibling subtrees until an operation conflicting with its pending
    /// one executes; runs where every enabled task is asleep are
    /// abandoned as commuting reorders of explored schedules. Sound for
    /// unbounded exploration; combined with a preemption bound it is a
    /// heuristic, so deep runs should also be tried unpruned (see the
    /// `#[ignore]`d tests in `crates/stream`).
    pub fn pruning(mut self, on: bool) -> Explorer {
        self.prune = on;
        self
    }

    /// Cap the number of schedules executed before giving up.
    pub fn max_schedules(mut self, n: u64) -> Explorer {
        self.max_schedules = n;
        self
    }

    /// Cap the operations of a single schedule (livelock guard).
    pub fn max_ops(mut self, n: u64) -> Explorer {
        self.max_ops = n;
        self
    }

    /// Explore every bounded schedule of `f`; panic with the replay seed
    /// on the first counterexample.
    pub fn explore<F: Fn()>(self, f: F) -> Report {
        match self.try_explore(f) {
            Ok(report) => report,
            Err(failure) => panic!(
                "interleave: {failure}\n  replay with Explorer::replay(\"{}\", ..)",
                failure.seed
            ),
        }
    }

    /// Explore every bounded schedule of `f`, returning the first
    /// counterexample instead of panicking.
    pub fn try_explore<F: Fn()>(&self, f: F) -> Result<Report, Failure> {
        crate::exec::install_quiet_abort_hook();
        let mut stack: Vec<(Vec<TaskId>, usize)> = Vec::new();
        let mut report = Report::default();
        loop {
            if report.schedules + report.redundant >= self.max_schedules {
                return Err(Failure {
                    seed: String::new(),
                    kind: FailureKind::ScheduleLimit,
                    message: format!(
                        "exceeded {} schedules without exhausting the tree",
                        self.max_schedules
                    ),
                    schedules: report.schedules,
                });
            }
            let script: Vec<ScriptEntry> = stack
                .iter()
                .map(|(c, i)| ScriptEntry {
                    chosen: c[*i],
                    sleeping: c[..*i].to_vec(),
                })
                .collect();
            let out = self.run_one(&script, self.bound, &f);
            report.pruned += out.pruned;
            report.bound_clipped += out.clipped;
            report.max_depth = report.max_depth.max(out.trace.len());
            match &out.abort {
                None => report.schedules += 1,
                Some(abort) if abort.kind == AbortKind::Redundant => {
                    // Not a failure: the run's tail was a commuting
                    // reorder. Its fresh decisions are still valid branch
                    // points, so fall through to the normal backtrack.
                    report.redundant += 1;
                }
                Some(abort) => {
                    return Err(Failure {
                        seed: seed_string(&out.chosen),
                        kind: match abort.kind {
                            AbortKind::Panic => FailureKind::Panic,
                            AbortKind::Deadlock => FailureKind::Deadlock,
                            AbortKind::OpLimit => FailureKind::OpLimit,
                            AbortKind::BadScript | AbortKind::Redundant => FailureKind::BadScript,
                        },
                        message: abort.message.clone(),
                        schedules: report.schedules + report.redundant + 1,
                    });
                }
            }
            debug_assert!(
                out.trace.len() >= stack.len(),
                "a run made fewer decisions than its script — nondeterministic model?"
            );
            for cands in out.trace.into_iter().skip(stack.len()) {
                stack.push((cands, 0));
            }
            // Backtrack to the deepest decision with an unexplored branch.
            loop {
                match stack.last_mut() {
                    None => return Ok(report),
                    Some((cands, idx)) if *idx + 1 < cands.len() => {
                        *idx += 1;
                        break;
                    }
                    Some(_) => {
                        stack.pop();
                    }
                }
            }
        }
    }

    /// Re-execute exactly one schedule from a failure seed, propagating
    /// the original panic (so the counterexample replays under a
    /// debugger or with extra logging).
    pub fn replay<F: Fn()>(seed: &str, f: F) {
        crate::exec::install_quiet_abort_hook();
        let explorer = Explorer::new();
        // The seed pins every decision, so the bound is irrelevant; lift
        // it to keep the candidate filter out of the way.
        let out = explorer.run_one(&parse_seed(seed), usize::MAX, &f);
        if let Some(abort) = out.abort {
            panic!(
                "interleave replay [seed {seed}]: {:?}: {}",
                abort.kind, abort.message
            );
        }
    }

    fn run_one<F: Fn()>(&self, script: &[ScriptEntry], bound: usize, f: &F) -> RunResult {
        let exec = Arc::new(Execution::new(
            script.to_vec(),
            bound,
            self.prune,
            self.max_ops,
        ));
        exec.register_root();
        {
            let _guard = CtxGuard::set(Arc::clone(&exec), 0);
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                exec.record_payload(payload.as_ref());
            }
        }
        exec.take_results()
    }
}
