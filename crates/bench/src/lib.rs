//! # filterscope-bench
//!
//! Shared fixtures plus a dependency-free [`harness`] (a Criterion-shaped
//! shim — the build container has no crates.io access). Each bench target
//! regenerates one family of the paper's artifacts:
//!
//! * `tables` — one benchmark per paper table (T1–T15);
//! * `figures` — one benchmark per paper figure (F1–F10) plus §7.3/§7.4;
//! * `throughput` — log-line parse rate, policy decisions/s, end-to-end
//!   generation+analysis rate, and the sharded parallel-ingest path at 1
//!   thread vs all cores (the case for a Rust implementation);
//! * `ablation` — the design choices DESIGN.md calls out: Aho–Corasick vs
//!   naive scanning, domain trie vs suffix checks, CidrSet vs linear scan,
//!   Space-Saving vs exact counting.
//!
//! Corpora are generated once per process and shared across benchmarks.

#![forbid(unsafe_code)]

pub mod harness;

use filterscope_analysis::{AnalysisContext, AnalysisSuite};
use filterscope_logformat::LogRecord;
use filterscope_synth::{Corpus, SynthConfig};
use std::sync::OnceLock;

/// Scale for the benchmark corpus (1/65536 of the leak ≈ 11.5 k requests —
/// large enough for non-trivial work per iteration, small enough that a
/// full Criterion run stays in minutes).
pub const BENCH_SCALE: u64 = 65_536;

static CORPUS: OnceLock<(Vec<LogRecord>, AnalysisContext)> = OnceLock::new();

/// The shared benchmark corpus and analysis context.
pub fn corpus() -> &'static (Vec<LogRecord>, AnalysisContext) {
    CORPUS.get_or_init(|| {
        let corpus = Corpus::new(SynthConfig::new(BENCH_SCALE).expect("valid scale"));
        let ctx = AnalysisContext::standard(Some(corpus.relay_index()));
        (corpus.generate(), ctx)
    })
}

/// A fully-ingested analysis suite over the shared corpus (built once).
pub fn analyzed() -> &'static AnalysisSuite {
    static SUITE: OnceLock<AnalysisSuite> = OnceLock::new();
    SUITE.get_or_init(|| {
        let (records, ctx) = corpus();
        let mut suite = AnalysisSuite::new(2);
        for r in records {
            suite.ingest(ctx, &r.as_view());
        }
        suite
    })
}

/// The corpus serialized to CSV lines (for parser benchmarks).
pub fn csv_lines() -> &'static Vec<String> {
    static LINES: OnceLock<Vec<String>> = OnceLock::new();
    LINES.get_or_init(|| corpus().0.iter().map(|r| r.write_csv()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_materialize() {
        let (records, _) = corpus();
        assert!(records.len() > 5_000);
        assert_eq!(csv_lines().len(), records.len());
        assert!(analyzed().datasets().full > 5_000);
    }
}
