//! A minimal, dependency-free benchmark harness.
//!
//! The container this repo builds in has no network access to crates.io,
//! so the Criterion dependency is replaced by this shim exposing the small
//! slice of its API the bench targets use: groups, per-benchmark
//! throughput annotations, and `Bencher::iter`. Timing is wall-clock via
//! [`std::time::Instant`]; each benchmark runs one warm-up iteration and
//! then `sample_size` timed iterations, reporting the median and minimum.
//!
//! Environment knobs:
//!
//! * `FILTERSCOPE_BENCH_SAMPLES` — override the per-benchmark sample count
//!   (e.g. `1` for a smoke run in CI).
//! * `FILTERSCOPE_BENCH_JSON` — path of a JSON file to write results into.
//!   The file is rewritten after every completed benchmark (so an aborted
//!   run still leaves valid JSON) with an array of
//!   `{group, name, median_ns, min_ns[, rate, rate_unit]}` objects.

use filterscope_core::Json;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// What one iteration consumes, for derived rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements (records, decisions, …) processed per iteration.
    Elements(u64),
}

/// Top-level harness (drop-in for `criterion::Criterion` as used here).
#[derive(Debug, Clone)]
pub struct Harness {
    sample_size: usize,
}

impl Default for Harness {
    fn default() -> Self {
        Harness { sample_size: 10 }
    }
}

impl Harness {
    /// Set the default per-benchmark sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> Group {
        Group {
            name: name.to_string(),
            sample_size: env_samples().unwrap_or(self.sample_size),
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing a throughput annotation.
pub struct Group {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl Group {
    /// Annotate subsequent benchmarks with per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Override the sample count for subsequent benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) {
        if env_samples().is_none() {
            self.sample_size = n.max(1);
        }
    }

    /// Run one benchmark: a warm-up iteration, then timed samples.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            durations: Vec::new(),
        };
        f(&mut bencher);
        let mut sorted = bencher.durations.clone();
        sorted.sort_unstable();
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or_default();
        let min = sorted.first().copied().unwrap_or_default();
        let mut line = format!(
            "{}/{:<32} median {:>12}  min {:>12}",
            self.name,
            name,
            fmt_duration(median),
            fmt_duration(min)
        );
        if let Some(tp) = self.throughput {
            line.push_str(&format!("  {}", fmt_rate(tp, median)));
        }
        println!("{line}");
        record_result(BenchResult {
            group: self.name.clone(),
            name: name.to_string(),
            median,
            min,
            throughput: self.throughput,
        });
    }

    /// End the group (parity with Criterion's API; reporting is immediate).
    pub fn finish(self) {}
}

/// Runs and times the benchmark body.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Time `f` over the configured number of samples (plus one warm-up).
    pub fn iter<T, F>(&mut self, mut f: F)
    where
        F: FnMut() -> T,
    {
        black_box(f());
        self.durations = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed()
            })
            .collect();
    }
}

fn env_samples() -> Option<usize> {
    std::env::var("FILTERSCOPE_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|n| *n >= 1)
}

/// One completed benchmark, as written to the `FILTERSCOPE_BENCH_JSON` file.
#[derive(Debug, Clone)]
struct BenchResult {
    group: String,
    name: String,
    median: Duration,
    min: Duration,
    throughput: Option<Throughput>,
}

impl BenchResult {
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.push("group", Json::Str(self.group.clone()));
        obj.push("name", Json::Str(self.name.clone()));
        obj.push("median_ns", Json::UInt(self.median.as_nanos() as u64));
        obj.push("min_ns", Json::UInt(self.min.as_nanos() as u64));
        if let Some(tp) = self.throughput {
            let secs = self.median.as_secs_f64().max(1e-12);
            let (count, unit) = match tp {
                Throughput::Bytes(n) => (n, "bytes_per_s"),
                Throughput::Elements(n) => (n, "elements_per_s"),
            };
            obj.push("rate", Json::Float(count as f64 / secs));
            obj.push("rate_unit", Json::Str(unit.to_string()));
        }
        obj
    }
}

fn results() -> &'static Mutex<Vec<BenchResult>> {
    static RESULTS: OnceLock<Mutex<Vec<BenchResult>>> = OnceLock::new();
    RESULTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Append one result and rewrite the JSON file, when requested through the
/// environment. Errors are deliberately swallowed: the printed report is
/// the primary output, the JSON file a best-effort artifact.
fn record_result(result: BenchResult) {
    let Ok(path) = std::env::var("FILTERSCOPE_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let mut all = results().lock().expect("bench results lock");
    all.push(result);
    let json = Json::Arr(all.iter().map(BenchResult::to_json).collect());
    let _ = std::fs::write(&path, json.pretty());
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn fmt_rate(tp: Throughput, per_iter: Duration) -> String {
    let secs = per_iter.as_secs_f64().max(1e-12);
    match tp {
        Throughput::Bytes(n) => {
            let rate = n as f64 / secs;
            if rate >= 1e9 {
                format!("{:8.2} GB/s", rate / 1e9)
            } else {
                format!("{:8.2} MB/s", rate / 1e6)
            }
        }
        Throughput::Elements(n) => {
            let rate = n as f64 / secs;
            if rate >= 1e6 {
                format!("{:8.2} Melem/s", rate / 1e6)
            } else {
                format!("{:8.2} Kelem/s", rate / 1e3)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut h = Harness::default().sample_size(2);
        let mut g = h.benchmark_group("harness-test");
        g.throughput(Throughput::Elements(100));
        let mut runs = 0u32;
        g.bench_function("spin", |b| {
            b.iter(|| {
                runs += 1;
                (0..100u64).sum::<u64>()
            })
        });
        g.finish();
        // One warm-up + two samples.
        assert_eq!(runs, 3);
    }

    #[test]
    fn formatting_is_stable() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.500 ms");
        assert!(
            fmt_rate(Throughput::Bytes(2_000_000_000), Duration::from_secs(1)).contains("GB/s")
        );
        assert!(fmt_rate(Throughput::Elements(500), Duration::from_secs(1)).contains("Kelem/s"));
    }
}
