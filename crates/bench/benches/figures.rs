//! One benchmark per paper figure (plus the §7.3/§7.4 text statistics).

use filterscope_analysis::anonymizers::AnonymizerStats;
use filterscope_analysis::categories::CategoryStats;
use filterscope_analysis::domains::DomainStats;
use filterscope_analysis::google_cache::GoogleCacheStats;
use filterscope_analysis::p2p::BitTorrentStats;
use filterscope_analysis::ports::PortStats;
use filterscope_analysis::proxies::ProxyStats;
use filterscope_analysis::temporal::TemporalStats;
use filterscope_analysis::tor_usage::TorStats;
use filterscope_analysis::users::UserStats;
use filterscope_bench::harness::{black_box, Harness};
use filterscope_bench::{analyzed, corpus};
use filterscope_logformat::RequestClass;

fn bench_figures(c: &mut Harness) {
    let (records, ctx) = corpus();
    let suite = analyzed();
    let mut g = c.benchmark_group("figures");

    g.bench_function("fig1_ports", |b| {
        b.iter(|| {
            let mut s = PortStats::new();
            for r in records {
                s.ingest(&r.as_view());
            }
            black_box(s.render())
        })
    });

    g.bench_function("fig2_domain_dist", |b| {
        b.iter(|| {
            let mut s = DomainStats::new();
            for r in records {
                s.ingest(&r.as_view());
            }
            black_box((
                s.request_distribution(RequestClass::Allowed),
                s.allowed_alpha(5),
            ))
        })
    });

    g.bench_function("fig3_categories", |b| {
        b.iter(|| {
            let mut s = CategoryStats::new();
            for r in records {
                s.ingest(ctx, &r.as_view());
            }
            black_box(s.distribution(0))
        })
    });

    g.bench_function("fig4_users", |b| {
        b.iter(|| {
            let mut s = UserStats::new();
            for r in records {
                s.ingest(&r.as_view());
            }
            black_box((s.censored_requests_histogram(), s.activity_cdfs()))
        })
    });

    g.bench_function("fig5_timeseries", |b| {
        b.iter(|| {
            let mut s = TemporalStats::standard();
            for r in records {
                s.ingest(&r.as_view());
            }
            black_box(s.normalized())
        })
    });

    g.bench_function("fig6_rcv", |b| {
        let s = suite.temporal();
        b.iter(|| black_box(s.rcv()))
    });

    g.bench_function("fig7_proxy_load", |b| {
        b.iter(|| {
            let mut s = ProxyStats::standard();
            for r in records {
                s.ingest(&r.as_view());
            }
            black_box(s.render_fig7())
        })
    });

    g.bench_function("fig8_tor", |b| {
        b.iter(|| {
            let mut s = TorStats::standard();
            for r in records {
                s.ingest(ctx, &r.as_view());
            }
            black_box(s.render())
        })
    });

    g.bench_function("fig9_rfilter", |b| {
        let s = suite.tor();
        b.iter(|| black_box(s.rfilter()))
    });

    g.bench_function("fig10_anonymizers", |b| {
        b.iter(|| {
            let mut s = AnonymizerStats::new();
            for r in records {
                s.ingest(ctx, &r.as_view());
            }
            black_box((s.allowed_request_cdf(), s.ratio_cdf()))
        })
    });

    g.bench_function("sec73_bittorrent", |b| {
        b.iter(|| {
            let mut s = BitTorrentStats::new();
            for r in records {
                s.ingest(ctx, &r.as_view());
            }
            black_box(s.render())
        })
    });

    g.bench_function("sec74_google_cache", |b| {
        b.iter(|| {
            let mut s = GoogleCacheStats::new();
            for r in records {
                s.ingest(&r.as_view());
            }
            black_box(s.render())
        })
    });

    g.finish();
}

fn main() {
    let mut harness = Harness::default().sample_size(10);
    bench_figures(&mut harness);
}
