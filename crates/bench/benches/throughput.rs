//! Throughput benchmarks: the systems case for the Rust implementation.
//!
//! * `parse_lines` — CSV → `LogRecord` rate (the 600 GB leak at this rate);
//! * `parse_throughput` — owned `LogRecord` vs borrowed `RecordView`
//!   parsing, lines/s (the zero-copy case for the view type);
//! * `write_lines` — `LogRecord` → CSV rate;
//! * `policy_decisions` — SG-9000 policy evaluations per second;
//! * `farm_end_to_end` — request → routed, filtered, logged record;
//! * `profile_decisions` — the same end-to-end path through each censor
//!   profile (blue-coat, dns-poison, tcp-rst, blockpage): the rendering
//!   cost of the pluggable mechanism layer;
//! * `generate_and_analyze` — the whole pipeline: synthesize a day slice,
//!   filter it, ingest it into the full analysis suite;
//! * `parallel_ingest` — the sharded file-ingest path at 1 thread vs all
//!   cores (the tentpole speedup this crate exists to defend);
//! * `stream_ingest` — the streaming daemon's per-connection loop (frame
//!   decode → zero-copy parse → ingest) against the single-threaded
//!   file-shard path over the same records: the framing tax.

use filterscope_analysis::{
    AnalysisContext, AnalysisSuite, ParallelIngest, Selection, SuiteParams,
};
use filterscope_bench::harness::{black_box, Harness, Throughput};
use filterscope_bench::{corpus, csv_lines};
use filterscope_core::pool;
use filterscope_logformat::frame::{batch_lines, Frame};
use filterscope_logformat::{parse_line, parse_view, BlockParser, LineSplitter, LogWriter, Schema};
use filterscope_proxy::config::FarmConfig;
use filterscope_proxy::cpl;
use filterscope_proxy::{artifact, PolicyData};
use filterscope_proxy::{PolicyEngine, ProfileKind, ProxyConfig, ProxyFarm, Request};
use filterscope_synth::{Corpus, SynthConfig};
use std::path::PathBuf;

fn bench_throughput(c: &mut Harness) {
    let lines = csv_lines();
    let (records, _) = corpus();
    let bytes: u64 = lines.iter().map(|l| l.len() as u64 + 1).sum();

    let mut g = c.benchmark_group("throughput");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("parse_lines", |b| {
        b.iter(|| {
            let mut ok = 0u64;
            for (i, line) in lines.iter().enumerate() {
                if parse_line(line, i as u64).is_ok() {
                    ok += 1;
                }
            }
            black_box(ok)
        })
    });

    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("write_lines", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for r in records {
                total += r.write_csv().len();
            }
            black_box(total)
        })
    });

    // The buffer-reusing render path the sharded writer runs on: one line
    // buffer, allocation-free integer/timestamp formatting. The delta to
    // `write_lines` is the per-record allocation + `format!` machinery.
    g.bench_function("write_lines_reused", |b| {
        let mut line = String::new();
        b.iter(|| {
            let mut total = 0usize;
            for r in records {
                line.clear();
                r.write_csv_into(&mut line);
                total += line.len();
            }
            black_box(total)
        })
    });

    // Schema-flexible parsing pays a mapping indirection; measure it.
    let schema = Schema::canonical();
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("parse_lines_via_schema", |b| {
        b.iter(|| {
            let mut ok = 0u64;
            for (i, line) in lines.iter().enumerate() {
                if schema.parse_record(line, i as u64).is_ok() {
                    ok += 1;
                }
            }
            black_box(ok)
        })
    });

    // The block-oriented hot path `ParallelIngest` actually runs: one
    // SWAR-split pass over a whole block of lines, span-resolved into
    // `RecordView`s. The delta to `parse_lines_via_schema` is the payoff
    // of amortizing per-line setup across a block.
    let block: Vec<u8> = lines
        .iter()
        .flat_map(|l| l.bytes().chain(std::iter::once(b'\n')))
        .collect();
    let mut block_parser = BlockParser::new();
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("parse_lines_block", |b| {
        b.iter(|| {
            let mut line_no = 0u64;
            let (views, malformed) = block_parser.parse(&block, &schema, &mut line_no);
            assert_eq!(malformed, 0);
            black_box(views.len())
        })
    });

    // CPL round trip of the full standard policy.
    let policy_text = cpl::to_cpl(&PolicyData::standard());
    g.throughput(Throughput::Bytes(policy_text.len() as u64));
    g.bench_function("cpl_parse_standard_policy", |b| {
        b.iter(|| black_box(cpl::parse_cpl(&policy_text).unwrap()))
    });

    // Reconstruct the requests once for the decision benchmarks.
    let requests: Vec<Request> = records
        .iter()
        .map(|r| {
            let mut req = Request::get(r.timestamp, r.url.clone());
            req.client = r.client;
            req.user_agent = r.user_agent.clone();
            req.method = r.method.clone();
            req
        })
        .collect();

    let engine = PolicyEngine::standard(None, 7);
    let cfg = ProxyConfig::standard(filterscope_core::ProxyId::Sg42);
    g.throughput(Throughput::Elements(requests.len() as u64));
    g.bench_function("policy_decisions", |b| {
        b.iter(|| {
            let mut censored = 0u64;
            for req in &requests {
                if engine.decide(&cfg, req).is_censored() {
                    censored += 1;
                }
            }
            black_box(censored)
        })
    });

    // The batch decision API over the same requests: one scratch buffer
    // for every tier-3 keyword scan instead of an allocation per request.
    g.bench_function("policy_decisions_batched", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            engine.decide_batch(&cfg, &requests, &mut out);
            black_box(out.iter().filter(|d| d.is_censored()).count())
        })
    });

    // The same decisions through an engine deserialized from a compiled
    // `FSCP` artifact — identical by construction (witness-gated), so any
    // delta against `policy_decisions` is the cost/benefit of the
    // compiled representation itself.
    let artifact_bytes = artifact::compile(&PolicyData::standard(), 7, None);
    let compiled = artifact::load(&artifact_bytes, None).unwrap();
    g.bench_function("compiled_policy_decisions", |b| {
        b.iter(|| {
            let mut censored = 0u64;
            for req in &requests {
                if compiled.engine.decide(&cfg, req).is_censored() {
                    censored += 1;
                }
            }
            black_box(censored)
        })
    });

    // Startup cost of each path to a live engine: text parse + automaton
    // build versus zero-parse artifact load (the daemon-restart story).
    g.throughput(Throughput::Elements(1));
    g.bench_function("policy_startup_parse_build", |b| {
        b.iter(|| {
            let policy = cpl::parse_cpl(&policy_text).unwrap();
            black_box(PolicyEngine::from_data(&policy, None, 7))
        })
    });
    g.bench_function("policy_startup_artifact_load", |b| {
        b.iter(|| black_box(artifact::load(&artifact_bytes, None).unwrap()))
    });

    g.throughput(Throughput::Elements(requests.len() as u64));
    let farm = ProxyFarm::standard();
    g.bench_function("farm_end_to_end", |b| {
        b.iter(|| {
            let mut denied = 0u64;
            for req in &requests {
                let rec = farm.process(req);
                if rec.exception.is_policy() {
                    denied += 1;
                }
            }
            black_box(denied)
        })
    });
    // The batched farm path the generation pipeline runs on.
    g.bench_function("farm_end_to_end_batched", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            farm.process_batch(&requests, &mut out);
            black_box(out.iter().filter(|r| r.exception.is_policy()).count())
        })
    });
    g.finish();

    // The profile layer's overhead question, per mechanism: request →
    // mechanism-shaped record against the bare `policy_decisions` rate
    // above. `farm_blue-coat` is `farm_end_to_end` by another name, so
    // any spread across rows is the rendering cost of each censor.
    let mut g = c.benchmark_group("profile_decisions");
    g.throughput(Throughput::Elements(requests.len() as u64));
    for kind in ProfileKind::ALL {
        let farm = ProxyFarm::new(
            FarmConfig {
                profile: kind,
                ..FarmConfig::default()
            },
            None,
        );
        g.bench_function(&format!("farm_{}", kind.name()), |b| {
            b.iter(|| {
                let mut censored = 0u64;
                for req in &requests {
                    let rec = farm.process(req);
                    if rec.exception.is_policy() {
                        censored += 1;
                    }
                }
                black_box(censored)
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("generate_and_analyze_day_slice", |b| {
        b.iter(|| {
            // A fresh 1/2^20 corpus: ~720 requests through generation, the
            // farm, and the full analysis suite.
            let corpus = Corpus::new(SynthConfig::new(1 << 20).expect("scale"));
            let ctx = AnalysisContext::standard(Some(corpus.relay_index()));
            let mut suite = AnalysisSuite::new(2);
            corpus.for_each_record(|r| suite.ingest(&ctx, &r.as_view()));
            black_box(suite.datasets().full)
        })
    });
    g.finish();

    bench_parse_throughput(c);
    bench_parallel_ingest(c);
    bench_selective_ingest(c);
    bench_stream_ingest(c);
}

/// Write the shared corpus to one file per study day (record order is
/// already day-major), mirroring what `filterscope generate` writes on
/// disk. Returns the day paths and the total byte volume.
fn write_day_files(dir: &std::path::Path) -> (Vec<PathBuf>, u64) {
    let (records, _) = corpus();
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).expect("create bench dir");
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut writer: Option<LogWriter<std::fs::File>> = None;
    let mut current_day = String::new();
    let mut bytes = 0u64;
    for r in records {
        let day = r.timestamp.date().to_string();
        if day != current_day {
            if let Some(w) = writer.take() {
                w.into_inner().expect("flush day file");
            }
            let path = dir.join(format!("sg_access_{day}.log"));
            writer = Some(LogWriter::new(
                std::fs::File::create(&path).expect("create day file"),
            ));
            paths.push(path);
            current_day = day;
        }
        bytes += r.write_csv().len() as u64 + 1;
        writer
            .as_mut()
            .expect("writer open")
            .write_record(r)
            .expect("write record");
    }
    if let Some(w) = writer.take() {
        w.into_inner().expect("flush day file");
    }
    (paths, bytes)
}

/// Owned vs borrowed parsing over the same lines: the allocation cost of
/// materializing a `LogRecord` against `RecordView`'s slices, in lines/s.
fn bench_parse_throughput(c: &mut Harness) {
    let lines = csv_lines();
    let mut g = c.benchmark_group("parse_throughput");
    g.throughput(Throughput::Elements(lines.len() as u64));
    g.bench_function("owned_records", |b| {
        b.iter(|| {
            let mut censored = 0u64;
            for (i, line) in lines.iter().enumerate() {
                if let Ok(r) = parse_line(line, i as u64) {
                    if r.exception.is_policy() {
                        censored += 1;
                    }
                }
            }
            black_box(censored)
        })
    });
    g.bench_function("record_views", |b| {
        let mut splitter = LineSplitter::new();
        b.iter(|| {
            let mut censored = 0u64;
            for (i, line) in lines.iter().enumerate() {
                if let Ok(v) = parse_view(&mut splitter, line, i as u64) {
                    if v.exception_is_policy() {
                        censored += 1;
                    }
                }
            }
            black_box(censored)
        })
    });
    g.finish();
}

/// Write the shared corpus to day files once, then compare the sharded
/// ingest at 1 thread against all available cores.
fn bench_parallel_ingest(c: &mut Harness) {
    let (records, ctx) = corpus();
    let dir = std::env::temp_dir().join(format!("filterscope-bench-ingest-{}", std::process::id()));
    let (paths, bytes) = write_day_files(&dir);

    let mut g = c.benchmark_group("parallel_ingest");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(bytes));
    // On a single-core machine both entries would collapse onto the same
    // name; dedupe so the results file never carries duplicate keys.
    let mut thread_counts = vec![1, pool::available_threads()];
    thread_counts.dedup();
    for threads in thread_counts {
        let ingest = ParallelIngest::new(threads);
        g.bench_function(&format!("analyze_suite_threads_{threads:02}"), |b| {
            b.iter(|| {
                let (suite, stats) = ingest
                    .ingest_suite(&paths, ctx, 2)
                    .expect("ingest corpus files");
                assert_eq!(stats.records, records.len() as u64);
                black_box(suite.datasets().full)
            })
        });
    }
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The registry payoff: the default suite against single-analysis
/// selections over the same day files, single-threaded so the delta is
/// pure per-record ingest cost (`--analyses domains` skips the other
/// seventeen accumulators, it does not parse less).
fn bench_selective_ingest(c: &mut Harness) {
    let (records, ctx) = corpus();
    let dir = std::env::temp_dir().join(format!(
        "filterscope-bench-selective-{}",
        std::process::id()
    ));
    let (paths, bytes) = write_day_files(&dir);

    let mut g = c.benchmark_group("selective_ingest");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(bytes));
    let ingest = ParallelIngest::new(1);
    let params = SuiteParams::new(2);
    let cases = [
        ("full_default_suite", Selection::default_suite()),
        ("domains_only", Selection::only(&["domains"]).unwrap()),
        ("inference_only", Selection::only(&["inference"]).unwrap()),
    ];
    for (label, selection) in &cases {
        g.bench_function(label, |b| {
            b.iter(|| {
                let (suite, stats) = ingest
                    .ingest_selected(&paths, ctx, &params, selection)
                    .expect("ingest corpus files");
                assert_eq!(stats.records, records.len() as u64);
                black_box(suite.analyses().len())
            })
        });
    }
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// What the wire format costs: the exact per-connection loop of
/// `filterscope serve` (frame decode → `batch_lines` → zero-copy parse →
/// ingest) over a pre-encoded in-memory stream, against the 1-thread
/// file-shard ingest of the same records. The two differ only in the
/// transport layer, so the gap is the framing + checksum tax.
fn bench_stream_ingest(c: &mut Harness) {
    let (records, ctx) = corpus();
    let lines = csv_lines();

    // Pre-encode the corpus once as 500-line Batch frames plus a Bye —
    // exactly what `filterscope stream --batch 500` puts on the socket.
    let mut wire = Vec::new();
    let mut batch = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        batch.extend_from_slice(line.as_bytes());
        batch.push(b'\n');
        if (i + 1) % 500 == 0 {
            Frame::batch(std::mem::take(&mut batch))
                .encode_into(&mut wire)
                .expect("batches are under the frame ceiling");
        }
    }
    if !batch.is_empty() {
        Frame::batch(batch)
            .encode_into(&mut wire)
            .expect("batches are under the frame ceiling");
    }
    Frame::bye()
        .encode_into(&mut wire)
        .expect("empty payload encodes");

    let dir = std::env::temp_dir().join(format!("filterscope-bench-stream-{}", std::process::id()));
    let (paths, _) = write_day_files(&dir);

    let mut g = c.benchmark_group("stream_ingest");
    g.sample_size(10);
    g.throughput(Throughput::Elements(records.len() as u64));
    let schema = Schema::canonical();
    g.bench_function("framed_decode_parse_ingest", |b| {
        b.iter(|| {
            let mut cursor = std::io::Cursor::new(&wire[..]);
            let mut splitter = LineSplitter::new();
            let mut suite = AnalysisSuite::new(2);
            let mut line_no = 0u64;
            let mut ok = 0u64;
            while let Some(frame) = Frame::read_from(&mut cursor).expect("clean wire") {
                for line in batch_lines(&frame.payload) {
                    line_no += 1;
                    let text = std::str::from_utf8(line).expect("CSV lines are UTF-8");
                    if schema
                        .parse_view(&mut splitter, text, line_no)
                        .map(|v| suite.ingest(ctx, &v))
                        .is_ok()
                    {
                        ok += 1;
                    }
                }
            }
            assert_eq!(ok, records.len() as u64);
            black_box(suite.datasets().full)
        })
    });
    let ingest = ParallelIngest::new(1);
    g.bench_function("file_shards_one_thread", |b| {
        b.iter(|| {
            let (suite, stats) = ingest
                .ingest_suite(&paths, ctx, 2)
                .expect("ingest corpus files");
            assert_eq!(stats.records, records.len() as u64);
            black_box(suite.datasets().full)
        })
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let mut harness = Harness::default().sample_size(20);
    bench_throughput(&mut harness);
}
