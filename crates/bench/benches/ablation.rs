//! Ablation benchmarks for the design choices DESIGN.md calls out: each
//! compares the engine the library uses against the naive baseline it
//! replaced, on workloads drawn from the shared corpus.

use filterscope_bench::corpus;
use filterscope_bench::harness::{black_box, Harness};
use filterscope_core::Ipv4Cidr;
use filterscope_match::aho_corasick::AhoCorasickBuilder;
use filterscope_match::{naive, CidrSet, DomainTrie};
use filterscope_proxy::config::{BLOCKED_DOMAINS, BLOCKED_SUBNETS, KEYWORDS};
use filterscope_stats::{CountMap, SpaceSaving};
use std::net::Ipv4Addr;

fn bench_ablation(c: &mut Harness) {
    let (records, _) = corpus();
    let views: Vec<String> = records.iter().map(|r| r.url.filter_view()).collect();
    let hosts: Vec<&str> = records.iter().map(|r| r.url.host.as_str()).collect();
    let ips: Vec<Ipv4Addr> = records
        .iter()
        .filter_map(|r| r.url.host_ip())
        .cycle()
        .take(records.len())
        .collect();

    // --- keyword scanning: Aho-Corasick vs naive multi-substring ---------
    let mut g = c.benchmark_group("ablation_keyword_scan");
    let ac = AhoCorasickBuilder::new()
        .ascii_case_insensitive(true)
        .build(KEYWORDS);
    g.bench_function("aho_corasick", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for v in &views {
                if ac.is_match(v.as_bytes()) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    let lowered: Vec<String> = views.iter().map(|v| v.to_ascii_lowercase()).collect();
    g.bench_function("naive_scan", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for v in &lowered {
                if naive::is_match(&KEYWORDS, v.as_bytes()) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    // The crossover case: with a blacklist of ~100 patterns (the domain list
    // used as substrings) the automaton's single pass dominates the
    // per-pattern scan.
    let big_ac = AhoCorasickBuilder::new()
        .ascii_case_insensitive(true)
        .build(BLOCKED_DOMAINS.iter().copied());
    g.bench_function("aho_corasick_100_patterns", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for v in &views {
                if big_ac.is_match(v.as_bytes()) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.bench_function("naive_scan_100_patterns", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for v in &lowered {
                if naive::is_match(BLOCKED_DOMAINS, v.as_bytes()) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.finish();

    // --- domain blacklist: trie vs per-entry suffix check ----------------
    let mut g = c.benchmark_group("ablation_domain_blacklist");
    let trie = DomainTrie::from_entries(BLOCKED_DOMAINS.iter().copied());
    g.bench_function("domain_trie", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for h in &hosts {
                if trie.matches(h) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.bench_function("naive_suffix_scan", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for h in &hosts {
                if naive::domain_matches(BLOCKED_DOMAINS, h) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.finish();

    // --- subnet blacklist: merged interval set vs linear scan ------------
    let mut g = c.benchmark_group("ablation_subnet_lookup");
    let set = CidrSet::parse_blocks(BLOCKED_SUBNETS.iter().copied()).expect("static");
    let blocks: Vec<Ipv4Cidr> = BLOCKED_SUBNETS
        .iter()
        .map(|s| Ipv4Cidr::parse(s).expect("static"))
        .collect();
    g.bench_function("cidr_set", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for ip in &ips {
                if set.contains(*ip) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.bench_function("linear_scan", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for ip in &ips {
                if naive::cidr_contains(&blocks, *ip) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.finish();

    // --- heavy hitters: Space-Saving sketch vs exact counting ------------
    let mut g = c.benchmark_group("ablation_heavy_hitters");
    g.bench_function("space_saving_1k", |b| {
        b.iter(|| {
            let mut sketch = SpaceSaving::new(1000);
            for h in &hosts {
                sketch.observe(*h);
            }
            black_box(sketch.top_guaranteed(10))
        })
    });
    g.bench_function("exact_hashmap", |b| {
        b.iter(|| {
            let mut exact: CountMap<&str> = CountMap::new();
            for h in &hosts {
                exact.bump(*h);
            }
            black_box(exact.top_n(10))
        })
    });
    g.finish();
}

fn main() {
    let mut harness = Harness::default().sample_size(20);
    bench_ablation(&mut harness);
}
