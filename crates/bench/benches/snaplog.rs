//! Snapshot-log benchmarks: the cost envelope of `serve --snap-log`.
//!
//! * `snaplog_append` — the per-cycle write path: encode a full-suite
//!   delta payload into a CRC-framed record and append it durably
//!   (`sync_data` per frame, as the daemon does);
//! * `snaplog_replay` — the `history` read path: scan a multi-frame log,
//!   CRC-check every frame, and fold checkpoint+deltas back into an
//!   [`filterscope_analysis::AnalysisSuite`].
//!
//! Both report bytes/s over the encoded frame payloads, so the numbers
//! compare directly with the parser benchmarks: a snap log earns its keep
//! only while appending (and replaying) beats re-ingesting the raw CSV.

use filterscope_bench::harness::{black_box, Harness, Throughput};
use filterscope_bench::{analyzed, corpus};
use filterscope_snapstore::{encode_value, read_frames, suite_at, FrameKind, SnapLog, SUITE_KEY};
use std::path::PathBuf;

/// Frames written (and folded) per iteration: enough that steady-state
/// append cost dominates the one-off open, few enough that the fsync-heavy
/// append benchmark stays sub-second per sample.
const FRAMES: u64 = 16;

fn temp_log(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fs-bench-snaplog-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    dir.join("snap.log")
}

fn bench_snaplog(c: &mut Harness) {
    let (records, _) = corpus();
    let suite = analyzed();
    let value = encode_value(records.len() as u64, 0, suite);
    let payload_bytes = FRAMES * value.len() as u64;

    let mut g = c.benchmark_group("snaplog");
    g.throughput(Throughput::Bytes(payload_bytes));

    let path = temp_log("append");
    g.bench_function("snaplog_append", |b| {
        b.iter(|| {
            let _ = std::fs::remove_file(&path);
            let mut log = SnapLog::open(&path, 0).expect("open log");
            for i in 0..FRAMES {
                log.append(FrameKind::Delta, i, SUITE_KEY, value.clone())
                    .expect("append frame");
            }
            black_box(log.bytes())
        })
    });

    let path = temp_log("replay");
    let mut log = SnapLog::open(&path, 0).expect("open log");
    for i in 0..FRAMES {
        log.append(FrameKind::Delta, i, SUITE_KEY, value.clone())
            .expect("append frame");
    }
    drop(log);
    g.bench_function("snaplog_replay", |b| {
        b.iter(|| {
            let (frames, report) = read_frames(&path).expect("read log");
            assert_eq!(report.truncated_bytes, 0);
            let view = suite_at(&frames, u64::MAX)
                .expect("fold log")
                .expect("non-empty log");
            black_box(view.records)
        })
    });
    g.finish();
}

fn main() {
    let mut harness = Harness::default().sample_size(20);
    bench_snaplog(&mut harness);
}
