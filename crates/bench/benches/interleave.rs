//! Passthrough-overhead benchmarks for the `interleave` primitives.
//!
//! The serve daemon's concurrency core runs on [`interleave`]'s
//! checkable wrappers (`IMutex`, `IAtomicU64`, `sync_channel`) so the
//! interleaving explorer can drive the *production* code. The wrappers
//! promise to be zero-cost outside a model execution: construction picks
//! the std representation and every operation is one enum branch away
//! from the `std::sync` call. This bench measures that promise — each
//! primitive's hot loop next to its raw `std::sync` twin — and
//! `bench_check` enforces parity (interleave median within 1.5× of std)
//! from the recorded BENCH.json.

use filterscope_bench::harness::{black_box, Harness, Throughput};
use interleave::{sync_channel, IAtomicU64, IMutex, Ordering};
use std::sync::atomic::AtomicU64;
use std::sync::{mpsc, Mutex};

/// Operations per iteration; every benchmark in the group reports
/// elements/s over the same count so rows are directly comparable.
const OPS: u64 = 1024;

fn bench_interleave(c: &mut Harness) {
    let mut g = c.benchmark_group("interleave_passthrough");
    g.throughput(Throughput::Elements(OPS));

    // --- uncontended mutex lock/unlock -----------------------------------
    let imutex = IMutex::new(0u64);
    g.bench_function("imutex_lock_unlock", |b| {
        b.iter(|| {
            for _ in 0..OPS {
                *imutex.lock() += 1;
            }
            black_box(*imutex.lock())
        })
    });
    let std_mutex = Mutex::new(0u64);
    g.bench_function("std_mutex_lock_unlock", |b| {
        b.iter(|| {
            for _ in 0..OPS {
                *std_mutex.lock().unwrap() += 1;
            }
            black_box(*std_mutex.lock().unwrap())
        })
    });

    // --- atomic fetch_add -------------------------------------------------
    let iatomic = IAtomicU64::new(0);
    g.bench_function("iatomic_fetch_add", |b| {
        b.iter(|| {
            for _ in 0..OPS {
                iatomic.fetch_add(1, Ordering::SeqCst);
            }
            black_box(iatomic.load(Ordering::SeqCst))
        })
    });
    let std_atomic = AtomicU64::new(0);
    g.bench_function("std_atomic_fetch_add", |b| {
        b.iter(|| {
            for _ in 0..OPS {
                std_atomic.fetch_add(1, Ordering::SeqCst);
            }
            black_box(std_atomic.load(Ordering::SeqCst))
        })
    });

    // --- bounded channel send/recv (single thread, batch at a time) ------
    g.bench_function("ichannel_send_recv", |b| {
        b.iter(|| {
            let (tx, rx) = sync_channel::<u64>(OPS as usize);
            for i in 0..OPS {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut sum = 0u64;
            while let Some(v) = rx.recv() {
                sum += v;
            }
            black_box(sum)
        })
    });
    g.bench_function("std_channel_send_recv", |b| {
        b.iter(|| {
            let (tx, rx) = mpsc::sync_channel::<u64>(OPS as usize);
            for i in 0..OPS {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut sum = 0u64;
            for v in rx.iter() {
                sum += v;
            }
            black_box(sum)
        })
    });
    g.finish();
}

fn main() {
    let mut harness = Harness::default().sample_size(20);
    bench_interleave(&mut harness);
}
