//! One benchmark per paper table: each measures regenerating that table's
//! analysis from the shared corpus (ingest where the table needs its own
//! accumulator, or the final reduction where it reads a shared one).

use filterscope_analysis::datasets::DatasetCounts;
use filterscope_analysis::domains::DomainStats;
use filterscope_analysis::filter_inference::FilterInference;
use filterscope_analysis::ip_censorship::IpCensorship;
use filterscope_analysis::overview::TrafficOverview;
use filterscope_analysis::proxies::ProxyStats;
use filterscope_analysis::redirects::RedirectStats;
use filterscope_analysis::social::SocialStats;
use filterscope_analysis::temporal::TemporalStats;
use filterscope_bench::harness::{black_box, Harness};
use filterscope_bench::{analyzed, corpus};

fn bench_tables(c: &mut Harness) {
    let (records, ctx) = corpus();
    let suite = analyzed();
    let mut g = c.benchmark_group("tables");

    g.bench_function("table1_datasets", |b| {
        b.iter(|| {
            let mut s = DatasetCounts::new();
            for r in records {
                s.ingest(&r.as_view());
            }
            black_box(s.render())
        })
    });

    g.bench_function("table3_overview", |b| {
        b.iter(|| {
            let mut s = TrafficOverview::new();
            for r in records {
                s.ingest(&r.as_view());
            }
            black_box(s.render())
        })
    });

    g.bench_function("table4_top_domains", |b| {
        b.iter(|| {
            let mut s = DomainStats::new();
            for r in records {
                s.ingest(&r.as_view());
            }
            black_box((s.top_allowed(10), s.top_censored(10)))
        })
    });

    g.bench_function("table5_peak_domains", |b| {
        b.iter(|| {
            let mut s = TemporalStats::standard();
            for r in records {
                s.ingest(&r.as_view());
            }
            black_box(s.render_table5())
        })
    });

    g.bench_function("table6_proxy_similarity", |b| {
        b.iter(|| {
            let mut s = ProxyStats::standard();
            for r in records {
                s.ingest(&r.as_view());
            }
            black_box(s.cosine_matrix())
        })
    });

    g.bench_function("table7_redirects", |b| {
        b.iter(|| {
            let mut s = RedirectStats::new();
            for r in records {
                s.ingest(&r.as_view());
            }
            black_box(s.render())
        })
    });

    g.bench_function("table8_suspected_domains", |b| {
        // The ingest phase dominates; the recovery reduction runs on top.
        b.iter(|| {
            let mut s = FilterInference::new(&filterscope_proxy::config::KEYWORDS);
            for r in records {
                s.ingest(&r.as_view());
            }
            black_box(s.recover_domains(3))
        })
    });

    g.bench_function("table9_categories", |b| {
        let s = suite.inference();
        b.iter(|| black_box(s.categorize_suspected(ctx, 3)))
    });

    g.bench_function("table10_keywords", |b| {
        let s = suite.inference();
        b.iter(|| black_box(s.render_table10()))
    });

    g.bench_function("table11_countries", |b| {
        b.iter(|| {
            let mut s = IpCensorship::standard();
            for r in records {
                s.ingest(ctx, &r.as_view());
            }
            black_box(s.censorship_ratios())
        })
    });

    g.bench_function("table12_subnets", |b| {
        let s = suite.ip();
        b.iter(|| black_box(s.render_table12()))
    });

    g.bench_function("tables13_15_social", |b| {
        b.iter(|| {
            let mut s = SocialStats::new();
            for r in records {
                s.ingest(&r.as_view());
            }
            black_box((s.render_table13(), s.render_table14(), s.render_table15()))
        })
    });

    g.finish();
}

fn main() {
    let mut harness = Harness::default().sample_size(10);
    bench_tables(&mut harness);
}
