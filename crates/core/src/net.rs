//! IPv4 CIDR blocks.
//!
//! The paper's IP-based censorship analysis (Tables 11 and 12) works at the
//! granularity of CIDR subnets (e.g. `84.229.0.0/16`). [`Ipv4Cidr`] is a
//! validated prefix with cheap containment tests; crates above build radix /
//! sorted-range indexes out of these.

use crate::error::{Error, Result};
use std::fmt;
use std::net::Ipv4Addr;

/// A validated IPv4 CIDR block: the host bits of `network` are forced to
/// zero at construction time so that two equal blocks always compare equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Cidr {
    network: u32,
    prefix_len: u8,
}

impl Ipv4Cidr {
    /// Construct from a network address and a prefix length (0–32). Host bits
    /// in `addr` are silently masked off.
    pub fn new(addr: Ipv4Addr, prefix_len: u8) -> Result<Self> {
        if prefix_len > 32 {
            return Err(Error::InvalidAddress(format!("{addr}/{prefix_len}")));
        }
        let mask = Self::mask_for(prefix_len);
        Ok(Ipv4Cidr {
            network: u32::from(addr) & mask,
            prefix_len,
        })
    }

    /// The /32 block containing exactly `addr`.
    pub fn host(addr: Ipv4Addr) -> Self {
        Ipv4Cidr {
            network: u32::from(addr),
            prefix_len: 32,
        }
    }

    fn mask_for(prefix_len: u8) -> u32 {
        if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - prefix_len)
        }
    }

    /// Parse `"a.b.c.d/len"`. A bare address parses as a /32.
    pub fn parse(s: &str) -> Result<Self> {
        let bad = || Error::InvalidAddress(s.to_string());
        match s.split_once('/') {
            Some((addr, len)) => {
                let addr: Ipv4Addr = addr.parse().map_err(|_| bad())?;
                let len: u8 = len.parse().map_err(|_| bad())?;
                Ipv4Cidr::new(addr, len)
            }
            None => {
                let addr: Ipv4Addr = s.parse().map_err(|_| bad())?;
                Ok(Ipv4Cidr::host(addr))
            }
        }
    }

    /// Network address (host bits zero).
    pub fn network(self) -> Ipv4Addr {
        Ipv4Addr::from(self.network)
    }

    /// Prefix length in bits.
    pub fn prefix_len(self) -> u8 {
        self.prefix_len
    }

    /// First address of the block, as a `u32`.
    pub fn first_u32(self) -> u32 {
        self.network
    }

    /// Last address of the block, as a `u32`.
    pub fn last_u32(self) -> u32 {
        self.network | !Self::mask_for(self.prefix_len)
    }

    /// Does this block contain `addr`?
    pub fn contains(self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & Self::mask_for(self.prefix_len) == self.network
    }

    /// Does this block fully contain `other`?
    pub fn contains_block(self, other: Ipv4Cidr) -> bool {
        self.prefix_len <= other.prefix_len && self.contains(other.network())
    }

    /// Number of addresses in the block (2^(32-len), saturating for /0).
    pub fn size(self) -> u64 {
        1u64 << (32 - self.prefix_len as u64)
    }

    /// The `i`-th address of the block, wrapping modulo the block size.
    /// Useful for deterministic synthetic address assignment.
    pub fn nth(self, i: u64) -> Ipv4Addr {
        let off = (i % self.size()) as u32;
        Ipv4Addr::from(self.network.wrapping_add(off))
    }
}

impl fmt::Display for Ipv4Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.prefix_len)
    }
}

impl std::str::FromStr for Ipv4Cidr {
    type Err = Error;
    fn from_str(s: &str) -> Result<Self> {
        Ipv4Cidr::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in [
            "84.229.0.0/16",
            "46.120.0.0/15",
            "212.235.64.0/19",
            "0.0.0.0/0",
        ] {
            assert_eq!(Ipv4Cidr::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn host_bits_are_masked() {
        let a = Ipv4Cidr::parse("84.229.17.5/16").unwrap();
        let b = Ipv4Cidr::parse("84.229.0.0/16").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.network(), ip("84.229.0.0"));
    }

    #[test]
    fn bare_address_is_slash_32() {
        let c = Ipv4Cidr::parse("212.150.1.2").unwrap();
        assert_eq!(c.prefix_len(), 32);
        assert!(c.contains(ip("212.150.1.2")));
        assert!(!c.contains(ip("212.150.1.3")));
        assert_eq!(c.size(), 1);
    }

    #[test]
    fn containment() {
        let c = Ipv4Cidr::parse("212.235.64.0/19").unwrap();
        assert!(c.contains(ip("212.235.64.1")));
        assert!(c.contains(ip("212.235.95.255")));
        assert!(!c.contains(ip("212.235.96.0")));
        let whole = Ipv4Cidr::parse("0.0.0.0/0").unwrap();
        assert!(whole.contains(ip("8.8.8.8")));
        assert!(whole.contains_block(c));
        assert!(!c.contains_block(whole));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Ipv4Cidr::parse("84.229.0.0/33").is_err());
        assert!(Ipv4Cidr::parse("84.229.0/16").is_err());
        assert!(Ipv4Cidr::parse("not-an-ip").is_err());
        assert!(Ipv4Cidr::parse("1.2.3.4/-1").is_err());
    }

    #[test]
    fn range_bounds() {
        let c = Ipv4Cidr::parse("89.138.0.0/15").unwrap();
        assert_eq!(c.first_u32(), u32::from(ip("89.138.0.0")));
        assert_eq!(c.last_u32(), u32::from(ip("89.139.255.255")));
        assert_eq!(c.size(), 1 << 17);
    }

    #[test]
    fn nth_wraps_within_block() {
        let c = Ipv4Cidr::parse("10.0.0.0/30").unwrap();
        assert_eq!(c.nth(0), ip("10.0.0.0"));
        assert_eq!(c.nth(3), ip("10.0.0.3"));
        assert_eq!(c.nth(4), ip("10.0.0.0")); // wraps
        assert!(c.contains(c.nth(1_000_003)));
    }
}
