//! A dependency-free work-stealing thread pool for indexed work units.
//!
//! Every parallel stage in the workspace — intra-day generation shards,
//! byte-range ingest shards — reduces to "run `f(0..units)` on N threads
//! and collect the results in index order". [`run_indexed`] does exactly
//! that over [`std::thread::scope`]: workers pull the next unit off a
//! shared atomic counter (work stealing, so uneven units — a 39×-larger
//! August day next to a July day — cannot idle a core), and results come
//! back ordered by unit index so downstream merges are deterministic
//! regardless of thread count or scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};

/// The number of worker threads to use by default.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run `f(i)` for every `i in 0..units` on up to `threads` workers and
/// return the results in index order.
///
/// The unit → result mapping is independent of `threads`: callers that
/// fold the results in order get bit-identical outcomes at any thread
/// count. A panicking unit propagates the panic to the caller.
pub fn run_indexed<T, F>(threads: usize, units: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, units.max(1));
    if units == 0 {
        return Vec::new();
    }
    if threads == 1 {
        return (0..units).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= units {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(results) => results,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });
    collected.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(collected.len(), units);
    collected.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let out = run_indexed(8, 100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let work = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(7);
        let one = run_indexed(1, 37, work);
        let many = run_indexed(16, 37, work);
        assert_eq!(one, many);
    }

    #[test]
    fn zero_units_is_fine() {
        let out: Vec<u8> = run_indexed(4, 0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_units_all_complete() {
        // Some units do far more work than others (the August/July skew).
        let out = run_indexed(4, 20, |i| {
            let mut acc = 0u64;
            let iters = if i % 7 == 0 { 200_000 } else { 100 };
            for k in 0..iters {
                acc = acc.wrapping_add(k ^ i as u64);
            }
            acc
        });
        assert_eq!(out.len(), 20);
        assert_eq!(
            out,
            run_indexed(1, 20, |i| {
                let mut acc = 0u64;
                let iters = if i % 7 == 0 { 200_000 } else { 100 };
                for k in 0..iters {
                    acc = acc.wrapping_add(k ^ i as u64);
                }
                acc
            })
        );
    }

    #[test]
    fn panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            run_indexed(4, 8, |i| {
                if i == 5 {
                    panic!("unit failure");
                }
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}
