//! Bounds-checked little-endian byte codec plus CRC-32, the substrate of
//! the compiled policy artifact (`filterscope compile`).
//!
//! The workspace forbids `unsafe`, so a compiled artifact cannot be
//! memory-mapped and reinterpreted in place; instead it is read once and
//! decoded through [`ByteReader`], whose every access is bounds-checked
//! and returns [`Result`] — a truncated or corrupt artifact surfaces as an
//! error, never a panic or an out-of-bounds read. [`ByteWriter`] is the
//! mirror image used at compile time. [`crc32`] is the CRC-32/ISO-HDLC
//! (IEEE 802.3) checksum guarding each artifact section.

use crate::error::{Error, Result};

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Fresh empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The encoded bytes so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Has nothing been written?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append raw bytes (length is *not* prefixed; see [`Self::put_bytes`]).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a `u32` length prefix followed by the bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u32(bytes.len() as u32);
        self.put_raw(bytes);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// Bounds-checked little-endian decoder over a byte slice.
#[derive(Debug, Clone, Copy)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Has every byte been consumed?
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Current read offset from the start of the slice.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if n > self.remaining() {
            return Err(Error::InvalidConfig(format!(
                "truncated data: need {n} bytes at offset {}, {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read exactly `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Read a `u32`-length-prefixed byte run ([`ByteWriter::put_bytes`]).
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str> {
        let bytes = self.get_bytes()?;
        std::str::from_utf8(bytes)
            .map_err(|_| Error::InvalidConfig("string field is not valid UTF-8".to_string()))
    }

    /// Fail unless every byte was consumed — decoders call this last so
    /// trailing garbage is rejected rather than silently ignored.
    pub fn expect_exhausted(&self) -> Result<()> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(Error::InvalidConfig(format!(
                "{} unexpected trailing bytes at offset {}",
                self.remaining(),
                self.pos
            )))
        }
    }
}

/// CRC-32/ISO-HDLC (the IEEE 802.3 polynomial, reflected), computed with a
/// lazily built 256-entry table. Detects all single-bit and burst errors up
/// to 32 bits — the integrity guard on each artifact section.
pub fn crc32(bytes: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    // Table construction is cheap enough to redo per call site per build;
    // `const`-evaluated so the cost is paid at compile time.
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_bytes(b"payload");
        w.put_str("policy");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u16().unwrap(), 0x1234);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_bytes().unwrap(), b"payload");
        assert_eq!(r.get_str().unwrap(), "policy");
        assert!(r.expect_exhausted().is_ok());
    }

    #[test]
    fn truncated_reads_fail_closed() {
        let mut w = ByteWriter::new();
        w.put_u32(7);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..2]);
        assert!(r.get_u32().is_err());
        // A length prefix pointing past the end is an error, not a panic.
        let mut w = ByteWriter::new();
        w.put_u32(1000);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_bytes().is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = ByteWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        r.get_u8().unwrap();
        assert!(r.expect_exhausted().is_err());
        r.get_u8().unwrap();
        assert!(r.expect_exhausted().is_ok());
    }

    #[test]
    fn invalid_utf8_string_is_rejected() {
        let mut w = ByteWriter::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        assert!(ByteReader::new(&bytes).get_str().is_err());
    }

    #[test]
    fn crc32_known_vectors() {
        // CRC-32/ISO-HDLC check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"compiled policy artifact".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit}");
            }
        }
    }
}
