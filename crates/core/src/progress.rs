//! Wall-clock progress reporting for the CLI pipelines.
//!
//! Every `filterscope` subcommand used to hand-roll the same
//! `Instant::now()` / `eprintln!("… {n} records in {s:.2}s — {r:.0}
//! records/s")` pair; [`Progress`] is that block, once.

use std::time::Instant;

/// A started stopwatch that renders throughput summaries.
#[derive(Debug, Clone, Copy)]
pub struct Progress {
    started: Instant,
}

impl Progress {
    /// Start timing now.
    pub fn start() -> Self {
        Progress {
            started: Instant::now(),
        }
    }

    /// Seconds elapsed since [`Progress::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// `count / elapsed`, guarded against a zero-duration clock read.
    pub fn per_second(&self, count: u64) -> f64 {
        rate(count, self.elapsed_secs())
    }

    /// `"{verb} {records} records in {s:.2}s — {r:.0} records/s"`.
    pub fn summary(&self, verb: &str, records: u64) -> String {
        let elapsed = self.elapsed_secs();
        format!(
            "{verb} {records} records in {elapsed:.2}s — {:.0} records/s",
            rate(records, elapsed)
        )
    }

    /// [`Progress::summary`] with a `on N thread(s)` clause.
    pub fn summary_threads(&self, verb: &str, records: u64, threads: usize) -> String {
        let elapsed = self.elapsed_secs();
        format!(
            "{verb} {records} records in {elapsed:.2}s on {threads} thread{} — {:.0} records/s",
            if threads == 1 { "" } else { "s" },
            rate(records, elapsed)
        )
    }
}

/// `count / secs` with a guard against division by zero.
pub fn rate(count: u64, secs: f64) -> f64 {
    count as f64 / secs.max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_have_the_standard_shape() {
        let p = Progress::start();
        let s = p.summary("generated", 1000);
        assert!(s.starts_with("generated 1000 records in "));
        assert!(s.ends_with(" records/s"));
        let st = p.summary_threads("analyzed", 1000, 1);
        assert!(st.contains("on 1 thread —"), "{st}");
        let st8 = p.summary_threads("analyzed", 1000, 8);
        assert!(st8.contains("on 8 threads —"), "{st8}");
    }

    #[test]
    fn rate_guards_zero_elapsed() {
        assert!(rate(100, 0.0).is_finite());
        assert_eq!(rate(100, 2.0), 50.0);
    }
}
