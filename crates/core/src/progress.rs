//! Wall-clock progress reporting for the CLI pipelines.
//!
//! Every `filterscope` subcommand used to hand-roll the same
//! `Instant::now()` / `eprintln!("… {n} records in {s:.2}s — {r:.0}
//! records/s")` pair; [`Progress`] is that block, once.

use std::time::Instant;

/// A started stopwatch that renders throughput summaries.
#[derive(Debug, Clone, Copy)]
pub struct Progress {
    started: Instant,
}

impl Progress {
    /// Start timing now.
    pub fn start() -> Self {
        Progress {
            started: Instant::now(),
        }
    }

    /// Seconds elapsed since [`Progress::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// `count / elapsed`, guarded against a zero-duration clock read.
    pub fn per_second(&self, count: u64) -> f64 {
        rate(count, self.elapsed_secs())
    }

    /// `"{verb} {records} records in {s:.2}s — {r:.0} records/s"`.
    pub fn summary(&self, verb: &str, records: u64) -> String {
        let elapsed = self.elapsed_secs();
        format!(
            "{verb} {records} records in {elapsed:.2}s — {:.0} records/s",
            rate(records, elapsed)
        )
    }

    /// [`Progress::summary`] with a `on N thread(s)` clause.
    pub fn summary_threads(&self, verb: &str, records: u64, threads: usize) -> String {
        let elapsed = self.elapsed_secs();
        format!(
            "{verb} {records} records in {elapsed:.2}s on {threads} thread{} — {:.0} records/s",
            if threads == 1 { "" } else { "s" },
            rate(records, elapsed)
        )
    }

    /// Estimated seconds remaining, extrapolating the rate so far. `None`
    /// until any work is done (no rate to extrapolate from) or once `done`
    /// reaches `total`.
    pub fn eta_secs(&self, done: u64, total: u64) -> Option<f64> {
        if done == 0 || done >= total {
            return None;
        }
        let per_sec = self.per_second(done);
        Some((total - done) as f64 / per_sec.max(1e-9))
    }

    /// One in-flight status line: `"{label}: 42% — 118.3 MB/s, ETA 12s"`.
    ///
    /// `done`/`total` are in bytes. Shared by every long-running stage
    /// (`analyze`, `replay`) so ETA reporting has one shape.
    pub fn eta_line(&self, label: &str, done: u64, total: u64) -> String {
        let pct = if total == 0 {
            100.0
        } else {
            (done as f64 / total as f64 * 100.0).min(100.0)
        };
        let mbps = self.per_second(done) / 1e6;
        match self.eta_secs(done, total) {
            Some(eta) => format!("{label}: {pct:.0}% — {mbps:.1} MB/s, ETA {}", fmt_secs(eta)),
            None => format!("{label}: {pct:.0}% — {mbps:.1} MB/s"),
        }
    }
}

/// Render a duration in seconds as a compact `12s` / `3m40s` / `1h02m`.
pub fn fmt_secs(secs: f64) -> String {
    let s = secs.round().max(0.0) as u64;
    if s < 60 {
        format!("{s}s")
    } else if s < 3600 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    }
}

/// `count / secs` with a guard against division by zero.
pub fn rate(count: u64, secs: f64) -> f64 {
    count as f64 / secs.max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_have_the_standard_shape() {
        let p = Progress::start();
        let s = p.summary("generated", 1000);
        assert!(s.starts_with("generated 1000 records in "));
        assert!(s.ends_with(" records/s"));
        let st = p.summary_threads("analyzed", 1000, 1);
        assert!(st.contains("on 1 thread —"), "{st}");
        let st8 = p.summary_threads("analyzed", 1000, 8);
        assert!(st8.contains("on 8 threads —"), "{st8}");
    }

    #[test]
    fn rate_guards_zero_elapsed() {
        assert!(rate(100, 0.0).is_finite());
        assert_eq!(rate(100, 2.0), 50.0);
    }

    #[test]
    fn eta_is_none_at_the_edges() {
        let p = Progress::start();
        assert!(p.eta_secs(0, 100).is_none());
        assert!(p.eta_secs(100, 100).is_none());
        assert!(p.eta_secs(200, 100).is_none());
    }

    #[test]
    fn eta_line_has_the_standard_shape() {
        let p = Progress::start();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let line = p.eta_line("analyze", 50, 100);
        assert!(line.starts_with("analyze: 50% — "), "{line}");
        assert!(line.contains("MB/s"), "{line}");
        assert!(line.contains("ETA"), "{line}");
        let done = p.eta_line("analyze", 100, 100);
        assert!(!done.contains("ETA"), "{done}");
    }

    #[test]
    fn compact_durations() {
        assert_eq!(fmt_secs(3.2), "3s");
        assert_eq!(fmt_secs(75.0), "1m15s");
        assert_eq!(fmt_secs(3725.0), "1h02m");
    }
}
