//! Workspace-wide error type.
//!
//! A single flat error enum keeps the cross-crate API surface small. Parsing
//! functions return [`Result`] and never panic on untrusted input.

use std::fmt;

/// Result alias used across the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors produced by filterscope crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A date, time, or timestamp string failed to parse.
    InvalidTimestamp(String),
    /// An IPv4 address or CIDR block string failed to parse.
    InvalidAddress(String),
    /// A log line was structurally malformed (wrong field count, bad quoting).
    MalformedRecord {
        /// 1-based line number within the source, when known.
        line: u64,
        /// Human-readable cause.
        reason: String,
    },
    /// An enum field held a value outside its known domain.
    UnknownVariant {
        /// The field being decoded (e.g. `sc-filter-result`).
        field: &'static str,
        /// The offending value.
        value: String,
    },
    /// Bencode document failed to decode.
    Bencode(String),
    /// A streaming frame failed to decode (bad magic, oversize length,
    /// checksum mismatch, or truncation mid-frame).
    BadFrame(String),
    /// Underlying I/O failure, stringified to keep the error `Clone + Eq`.
    Io(String),
    /// A configuration value was rejected (e.g. zero scale factor).
    InvalidConfig(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidTimestamp(s) => write!(f, "invalid timestamp: {s:?}"),
            Error::InvalidAddress(s) => write!(f, "invalid address: {s:?}"),
            Error::MalformedRecord { line, reason } => {
                write!(f, "malformed record at line {line}: {reason}")
            }
            Error::UnknownVariant { field, value } => {
                write!(f, "unknown value {value:?} for field {field}")
            }
            Error::Bencode(s) => write!(f, "bencode error: {s}"),
            Error::BadFrame(s) => write!(f, "bad frame: {s}"),
            Error::Io(s) => write!(f, "i/o error: {s}"),
            Error::InvalidConfig(s) => write!(f, "invalid configuration: {s}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::MalformedRecord {
            line: 7,
            reason: "expected 26 fields, got 3".into(),
        };
        let s = e.to_string();
        assert!(s.contains("line 7"));
        assert!(s.contains("26 fields"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            Error::InvalidAddress("x".into()),
            Error::InvalidAddress("x".into())
        );
        assert_ne!(
            Error::InvalidAddress("x".into()),
            Error::InvalidTimestamp("x".into())
        );
    }
}
