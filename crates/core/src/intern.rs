//! A deterministic string interner for hot aggregation keys.
//!
//! The analysis accumulators key their hottest maps (domains, proxies,
//! anonymizer hosts, category labels) by strings that repeat millions of
//! times across a corpus. Interning replaces those `String` keys with a
//! `Copy` [`Sym`] handle: one allocation per *distinct* string per shard
//! instead of one per record.
//!
//! Determinism contract: symbol ids are assigned in first-intern order,
//! which depends on record order within a shard — and shard contents depend
//! only on the ingest plan, never the thread count. When shards are folded
//! together ([`Interner::absorb_remap`]), the other table's strings are
//! re-interned in *its* insertion order, so the merged table's id
//! assignment depends only on the (deterministic) merge order. Even so,
//! renders must never sort or tie-break by raw `Sym` id: always resolve to
//! the string first. The id order is deterministic but not meaningful.

use std::collections::HashMap;

/// A handle to an interned string. Only valid for the [`Interner`] (or the
/// merged descendant) that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// The raw index (stable within one interner's lifetime).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// FNV-1a over a byte string (the workspace's standard cheap hash).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An append-only string table with hash-consed lookup.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    strings: Vec<Box<str>>,
    /// FNV hash → candidate ids (collision chain; compared by content).
    buckets: HashMap<u64, Vec<u32>>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Intern `s`, returning its symbol (existing or freshly assigned).
    pub fn intern(&mut self, s: &str) -> Sym {
        let h = fnv1a(s.as_bytes());
        let ids = self.buckets.entry(h).or_default();
        for &id in ids.iter() {
            if &*self.strings[id as usize] == s {
                return Sym(id);
            }
        }
        let id = u32::try_from(self.strings.len()).expect("interner overflow");
        self.strings.push(s.into());
        ids.push(id);
        Sym(id)
    }

    /// Look up a symbol without interning. `None` if `s` was never interned.
    pub fn get(&self, s: &str) -> Option<Sym> {
        let ids = self.buckets.get(&fnv1a(s.as_bytes()))?;
        ids.iter()
            .find(|&&id| &*self.strings[id as usize] == s)
            .map(|&id| Sym(id))
    }

    /// The string behind a symbol.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.index()]
    }

    /// Fold another interner into this one, returning the remap table:
    /// `remap[other_sym.index()]` is the equivalent symbol here. Iterates
    /// `other` in insertion order, so the result is deterministic.
    pub fn absorb_remap(&mut self, other: &Interner) -> Vec<Sym> {
        other.strings.iter().map(|s| self.intern(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("facebook.com");
        let b = i.intern("metacafe.com");
        let a2 = i.intern("facebook.com");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "facebook.com");
        assert_eq!(i.resolve(b), "metacafe.com");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("x").is_none());
        let s = i.intern("x");
        assert_eq!(i.get("x"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn absorb_remaps_in_insertion_order() {
        let mut a = Interner::new();
        a.intern("one");
        a.intern("two");
        let mut b = Interner::new();
        let b_two = b.intern("two");
        let b_three = b.intern("three");
        let remap = a.absorb_remap(&b);
        assert_eq!(a.resolve(remap[b_two.index()]), "two");
        assert_eq!(a.resolve(remap[b_three.index()]), "three");
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn merge_order_determinism() {
        // The same sequence of absorbs yields the same symbol table.
        let build = || {
            let mut shard1 = Interner::new();
            shard1.intern("b");
            shard1.intern("a");
            let mut shard2 = Interner::new();
            shard2.intern("c");
            shard2.intern("a");
            let mut merged = Interner::new();
            merged.absorb_remap(&shard1);
            merged.absorb_remap(&shard2);
            (0..merged.len())
                .map(|i| merged.resolve(Sym(i as u32)).to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
        assert_eq!(build(), vec!["b", "a", "c"]);
    }

    #[test]
    fn colliding_hashes_still_distinct() {
        // Force the chain path by interning many strings; content equality
        // guards against any collision.
        let mut i = Interner::new();
        let syms: Vec<Sym> = (0..1000)
            .map(|n| i.intern(&format!("host{n}.example")))
            .collect();
        for (n, s) in syms.iter().enumerate() {
            assert_eq!(i.resolve(*s), format!("host{n}.example"));
        }
        assert_eq!(i.len(), 1000);
    }
}
