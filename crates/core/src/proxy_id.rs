//! Identifiers for the seven leaked Blue Coat SG-9000 appliances.
//!
//! The paper names the proxies SG-42 … SG-48 after the last octet of their
//! management address (`82.137.200.42` – `82.137.200.48`, the `s-ip` log
//! field). [`ProxyId`] is the canonical handle used across the workspace.

use crate::error::{Error, Result};
use std::fmt;
use std::net::Ipv4Addr;

/// One of the seven proxies whose logs were leaked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProxyId {
    Sg42,
    Sg43,
    Sg44,
    Sg45,
    Sg46,
    Sg47,
    Sg48,
}

impl ProxyId {
    /// All proxies, in `s-ip` order.
    pub const ALL: [ProxyId; 7] = [
        ProxyId::Sg42,
        ProxyId::Sg43,
        ProxyId::Sg44,
        ProxyId::Sg45,
        ProxyId::Sg46,
        ProxyId::Sg47,
        ProxyId::Sg48,
    ];

    /// Number of proxies in the deployment.
    pub const COUNT: usize = 7;

    /// Last octet of the proxy's `s-ip` (42–48).
    pub fn octet(self) -> u8 {
        match self {
            ProxyId::Sg42 => 42,
            ProxyId::Sg43 => 43,
            ProxyId::Sg44 => 44,
            ProxyId::Sg45 => 45,
            ProxyId::Sg46 => 46,
            ProxyId::Sg47 => 47,
            ProxyId::Sg48 => 48,
        }
    }

    /// Zero-based index (SG-42 → 0 … SG-48 → 6), for dense per-proxy arrays.
    pub fn index(self) -> usize {
        (self.octet() - 42) as usize
    }

    /// Inverse of [`ProxyId::index`].
    pub fn from_index(i: usize) -> Option<ProxyId> {
        ProxyId::ALL.get(i).copied()
    }

    /// The proxy's `s-ip` address in the leaked logs.
    pub fn s_ip(self) -> Ipv4Addr {
        Ipv4Addr::new(82, 137, 200, self.octet())
    }

    /// Recover the proxy from its `s-ip` field.
    pub fn from_s_ip(ip: Ipv4Addr) -> Result<ProxyId> {
        let o = ip.octets();
        if o[0] == 82 && o[1] == 137 && o[2] == 200 {
            if let Some(p) = ProxyId::ALL.iter().find(|p| p.octet() == o[3]) {
                return Ok(*p);
            }
        }
        Err(Error::UnknownVariant {
            field: "s-ip",
            value: ip.to_string(),
        })
    }

    /// Human label used in the paper, e.g. `"SG-44"`.
    pub fn label(self) -> &'static str {
        match self {
            ProxyId::Sg42 => "SG-42",
            ProxyId::Sg43 => "SG-43",
            ProxyId::Sg44 => "SG-44",
            ProxyId::Sg45 => "SG-45",
            ProxyId::Sg46 => "SG-46",
            ProxyId::Sg47 => "SG-47",
            ProxyId::Sg48 => "SG-48",
        }
    }
}

impl fmt::Display for ProxyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s_ip_roundtrip() {
        for p in ProxyId::ALL {
            assert_eq!(ProxyId::from_s_ip(p.s_ip()).unwrap(), p);
        }
    }

    #[test]
    fn index_roundtrip() {
        for (i, p) in ProxyId::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(ProxyId::from_index(i), Some(*p));
        }
        assert_eq!(ProxyId::from_index(7), None);
    }

    #[test]
    fn rejects_foreign_ips() {
        assert!(ProxyId::from_s_ip(Ipv4Addr::new(82, 137, 200, 41)).is_err());
        assert!(ProxyId::from_s_ip(Ipv4Addr::new(10, 0, 0, 42)).is_err());
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(ProxyId::Sg44.label(), "SG-44");
        assert_eq!(ProxyId::Sg48.to_string(), "SG-48");
    }
}
