//! Calendar time in the Blue Coat log format.
//!
//! The leaked logs carry `date` (`YYYY-MM-DD`) and `time` (`HH:MM:SS`) as two
//! separate CSV fields, both in UTC. The analysis only ever needs second
//! resolution within a ~3-week window, so we model time as a proleptic
//! Gregorian calendar date plus a time of day, with cheap conversion to an
//! absolute second count for binning and ordering.

use crate::error::{Error, Result};
use std::fmt;

/// Days per month in a non-leap year, 1-indexed by month.
const DAYS_IN_MONTH: [u8; 13] = [0, 31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// A calendar date (proleptic Gregorian, validated on construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    year: u16,
    month: u8,
    day: u8,
}

/// Day of the week.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Weekday {
    Monday,
    Tuesday,
    Wednesday,
    Thursday,
    Friday,
    Saturday,
    Sunday,
}

impl Weekday {
    /// Short English name, e.g. `"Fri"`.
    pub fn short_name(self) -> &'static str {
        match self {
            Weekday::Monday => "Mon",
            Weekday::Tuesday => "Tue",
            Weekday::Wednesday => "Wed",
            Weekday::Thursday => "Thu",
            Weekday::Friday => "Fri",
            Weekday::Saturday => "Sat",
            Weekday::Sunday => "Sun",
        }
    }
}

fn is_leap(year: u16) -> bool {
    (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400)
}

fn days_in_month(year: u16, month: u8) -> u8 {
    if month == 2 && is_leap(year) {
        29
    } else {
        DAYS_IN_MONTH[month as usize]
    }
}

impl Date {
    /// Construct a validated date.
    pub fn new(year: u16, month: u8, day: u8) -> Result<Self> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return Err(Error::InvalidTimestamp(format!(
                "{year:04}-{month:02}-{day:02}"
            )));
        }
        Ok(Date { year, month, day })
    }

    /// Year component.
    pub fn year(self) -> u16 {
        self.year
    }

    /// Month component (1–12).
    pub fn month(self) -> u8 {
        self.month
    }

    /// Day-of-month component (1-based).
    pub fn day(self) -> u8 {
        self.day
    }

    /// Parse `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Result<Self> {
        let bad = || Error::InvalidTimestamp(s.to_string());
        let mut it = s.split('-');
        let y = it.next().ok_or_else(bad)?;
        let m = it.next().ok_or_else(bad)?;
        let d = it.next().ok_or_else(bad)?;
        if it.next().is_some() || y.len() != 4 || m.len() != 2 || d.len() != 2 {
            return Err(bad());
        }
        let year: u16 = y.parse().map_err(|_| bad())?;
        let month: u8 = m.parse().map_err(|_| bad())?;
        let day: u8 = d.parse().map_err(|_| bad())?;
        Date::new(year, month, day)
    }

    /// Days since 0000-03-01 (civil-from-days algorithm, no panics for any
    /// valid `Date`).
    pub fn days_from_civil(self) -> i64 {
        let y = self.year as i64 - i64::from(self.month <= 2);
        let era = y.div_euclid(400);
        let yoe = y - era * 400; // [0, 399]
        let m = self.month as i64;
        let d = self.day as i64;
        let mp = (m + 9) % 12; // March = 0
        let doy = (153 * mp + 2) / 5 + d - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe - 719_468 // days since 1970-01-01
    }

    /// Inverse of [`Date::days_from_civil`].
    pub fn from_days(days: i64) -> Self {
        let z = days + 719_468;
        let era = z.div_euclid(146_097);
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8;
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8;
        let year = (y + i64::from(m <= 2)) as u16;
        Date {
            year,
            month: m,
            day: d,
        }
    }

    /// The date `n` days after `self` (negative `n` goes backwards).
    pub fn plus_days(self, n: i64) -> Self {
        Date::from_days(self.days_from_civil() + n)
    }

    /// Day of the week.
    pub fn weekday(self) -> Weekday {
        // 1970-01-01 was a Thursday, i.e. (0 + 4) % 7 must map to Thursday.
        match (self.days_from_civil() + 4).rem_euclid(7) {
            0 => Weekday::Sunday,
            1 => Weekday::Monday,
            2 => Weekday::Tuesday,
            3 => Weekday::Wednesday,
            4 => Weekday::Thursday,
            5 => Weekday::Friday,
            _ => Weekday::Saturday,
        }
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A time of day with second resolution (validated on construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimeOfDay {
    hour: u8,
    minute: u8,
    second: u8,
}

impl TimeOfDay {
    /// Midnight.
    pub const MIDNIGHT: TimeOfDay = TimeOfDay {
        hour: 0,
        minute: 0,
        second: 0,
    };

    /// Construct a validated time of day.
    pub fn new(hour: u8, minute: u8, second: u8) -> Result<Self> {
        if hour > 23 || minute > 59 || second > 59 {
            return Err(Error::InvalidTimestamp(format!(
                "{hour:02}:{minute:02}:{second:02}"
            )));
        }
        Ok(TimeOfDay {
            hour,
            minute,
            second,
        })
    }

    /// Build from a second offset within the day; values ≥ 86400 wrap.
    pub fn from_second_of_day(s: u32) -> Self {
        let s = s % 86_400;
        TimeOfDay {
            hour: (s / 3600) as u8,
            minute: ((s / 60) % 60) as u8,
            second: (s % 60) as u8,
        }
    }

    /// Hour component (0–23).
    pub fn hour(self) -> u8 {
        self.hour
    }

    /// Minute component (0–59).
    pub fn minute(self) -> u8 {
        self.minute
    }

    /// Second component (0–59).
    pub fn second(self) -> u8 {
        self.second
    }

    /// Seconds since midnight.
    pub fn second_of_day(self) -> u32 {
        self.hour as u32 * 3600 + self.minute as u32 * 60 + self.second as u32
    }

    /// Parse `HH:MM:SS`.
    pub fn parse(s: &str) -> Result<Self> {
        let bad = || Error::InvalidTimestamp(s.to_string());
        let b = s.as_bytes();
        if b.len() != 8 || b[2] != b':' || b[5] != b':' {
            return Err(bad());
        }
        let h: u8 = s[0..2].parse().map_err(|_| bad())?;
        let m: u8 = s[3..5].parse().map_err(|_| bad())?;
        let sec: u8 = s[6..8].parse().map_err(|_| bad())?;
        TimeOfDay::new(h, m, sec)
    }
}

impl fmt::Display for TimeOfDay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02}:{:02}:{:02}", self.hour, self.minute, self.second)
    }
}

/// An absolute instant: date plus time of day (UTC, second resolution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp {
    date: Date,
    time: TimeOfDay,
}

impl Timestamp {
    /// Combine a date and a time of day.
    pub fn new(date: Date, time: TimeOfDay) -> Self {
        Timestamp { date, time }
    }

    /// Date component.
    pub fn date(self) -> Date {
        self.date
    }

    /// Time-of-day component.
    pub fn time(self) -> TimeOfDay {
        self.time
    }

    /// Seconds since the Unix epoch.
    pub fn epoch_seconds(self) -> i64 {
        self.date.days_from_civil() * 86_400 + self.time.second_of_day() as i64
    }

    /// Build from seconds since the Unix epoch.
    pub fn from_epoch_seconds(s: i64) -> Self {
        let days = s.div_euclid(86_400);
        let sod = s.rem_euclid(86_400) as u32;
        Timestamp {
            date: Date::from_days(days),
            time: TimeOfDay::from_second_of_day(sod),
        }
    }

    /// The instant `secs` seconds after `self` (negative goes backwards).
    pub fn plus_seconds(self, secs: i64) -> Self {
        Timestamp::from_epoch_seconds(self.epoch_seconds() + secs)
    }

    /// Parse the two log fields `date` and `time`.
    pub fn parse_fields(date: &str, time: &str) -> Result<Self> {
        Ok(Timestamp {
            date: Date::parse(date)?,
            time: TimeOfDay::parse(time)?,
        })
    }

    /// Index of the bin of width `bin_secs` containing this instant,
    /// counting from `origin`. Instants before `origin` yield negative bins.
    pub fn bin_index(self, origin: Timestamp, bin_secs: u32) -> i64 {
        debug_assert!(bin_secs > 0);
        (self.epoch_seconds() - origin.epoch_seconds()).div_euclid(bin_secs as i64)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.date, self.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let d = Date::parse("2011-08-03").unwrap();
        assert_eq!(d.to_string(), "2011-08-03");
        let t = TimeOfDay::parse("08:15:59").unwrap();
        assert_eq!(t.to_string(), "08:15:59");
    }

    #[test]
    fn rejects_invalid_dates() {
        assert!(Date::parse("2011-13-01").is_err());
        assert!(Date::parse("2011-02-29").is_err()); // 2011 not a leap year
        assert!(Date::parse("2011-2-9").is_err()); // must be zero padded
        assert!(Date::parse("garbage").is_err());
        assert!(Date::new(2012, 2, 29).is_ok()); // 2012 is a leap year
    }

    #[test]
    fn rejects_invalid_times() {
        assert!(TimeOfDay::parse("24:00:00").is_err());
        assert!(TimeOfDay::parse("12:60:00").is_err());
        assert!(TimeOfDay::parse("12:00:60").is_err());
        assert!(TimeOfDay::parse("12:00").is_err());
    }

    #[test]
    fn civil_days_roundtrip_over_study_period() {
        // Every day of 2011-2012 survives the round trip.
        let start = Date::new(2011, 1, 1).unwrap().days_from_civil();
        for off in 0..730 {
            let d = Date::from_days(start + off);
            assert_eq!(d.days_from_civil(), start + off);
        }
    }

    #[test]
    fn known_weekdays() {
        // August 5, 2011 was a Friday (the paper's weekly-protest slowdown).
        assert_eq!(Date::new(2011, 8, 5).unwrap().weekday(), Weekday::Friday);
        assert_eq!(Date::new(2011, 7, 22).unwrap().weekday(), Weekday::Friday);
        assert_eq!(Date::new(2011, 8, 3).unwrap().weekday(), Weekday::Wednesday);
    }

    #[test]
    fn epoch_seconds_roundtrip() {
        let ts = Timestamp::parse_fields("2011-08-03", "09:30:00").unwrap();
        assert_eq!(Timestamp::from_epoch_seconds(ts.epoch_seconds()), ts);
        assert_eq!(
            ts.plus_seconds(86_400).date(),
            Date::new(2011, 8, 4).unwrap()
        );
        assert_eq!(ts.plus_seconds(-1).time().to_string(), "09:29:59");
    }

    #[test]
    fn bin_index_five_minute_bins() {
        let origin = Timestamp::parse_fields("2011-08-01", "00:00:00").unwrap();
        let ts = Timestamp::parse_fields("2011-08-01", "00:05:00").unwrap();
        assert_eq!(ts.bin_index(origin, 300), 1);
        assert_eq!(origin.bin_index(origin, 300), 0);
        let before = Timestamp::parse_fields("2011-07-31", "23:59:59").unwrap();
        assert_eq!(before.bin_index(origin, 300), -1);
    }

    #[test]
    fn ordering_follows_time() {
        let a = Timestamp::parse_fields("2011-08-03", "09:30:00").unwrap();
        let b = Timestamp::parse_fields("2011-08-03", "09:30:01").unwrap();
        let c = Timestamp::parse_fields("2011-08-04", "00:00:00").unwrap();
        assert!(a < b && b < c);
    }
}
