//! Minimal JSON document model: build, pretty-print, parse.
//!
//! The machine-readable exports (`filterscope analyze --json`) used to go
//! through `serde_json`; in the offline build this module replaces it. The
//! pretty printer reproduces `serde_json::to_string_pretty`'s layout
//! exactly — two-space indent, `": "` separators, shortest-round-trip float
//! formatting — so downstream tooling diffing historical summaries sees no
//! formatting churn. The parser accepts standard JSON and exists mainly so
//! tests can confirm well-formedness and read values back.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Unsigned integers keep their exact textual form (`5958`, not `5958.0`).
    UInt(u64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered members, matching struct field declaration order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object to push members onto.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a member to an object. Panics when `self` is not an object.
    pub fn push(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(members) => members.push((key.to_string(), value)),
            other => panic!("Json::push on non-object {other:?}"),
        }
        self
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value when this is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value of integers and floats alike.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => write_f64(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (the whole input must be one value).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(text, bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// serde_json prints floats via ryu (shortest form that round-trips);
/// Rust's `{:?}` for f64 has the same contract.
fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{x:?}");
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(text, bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(text, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(text, bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(text, bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(text, bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_string(text: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = text.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one whole UTF-8 scalar from the source text.
                let rest = &text[*pos..];
                let c = rest.chars().next().ok_or("invalid UTF-8 in string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let s = &text[start..*pos];
    if !is_float {
        if let Ok(n) = s.parse::<u64>() {
            return Ok(Json::UInt(n));
        }
    }
    s.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| format!("bad number {s:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_serde_json_layout() {
        let mut obj = Json::object();
        obj.push("total_requests", Json::UInt(5958));
        obj.push("censored_share", Json::Float(0.04));
        obj.push("whole", Json::Float(1.0));
        obj.push("name", Json::Str("metacafe.com".to_string()));
        obj.push("empty_list", Json::Arr(vec![]));
        obj.push(
            "shares",
            Json::Arr(vec![Json::Obj(vec![("count".to_string(), Json::UInt(3))])]),
        );
        let expected = "{\n  \"total_requests\": 5958,\n  \"censored_share\": 0.04,\n  \
                        \"whole\": 1.0,\n  \"name\": \"metacafe.com\",\n  \"empty_list\": [],\n  \
                        \"shares\": [\n    {\n      \"count\": 3\n    }\n  ]\n}";
        assert_eq!(obj.pretty(), expected);
    }

    #[test]
    fn parse_round_trips_pretty_output() {
        let mut obj = Json::object();
        obj.push("a", Json::UInt(1));
        obj.push("b", Json::Float(2.5));
        obj.push("c", Json::Str("x \"quoted\" \\ path\n".to_string()));
        obj.push("d", Json::Arr(vec![Json::Null, Json::Bool(true)]));
        obj.push("nested", Json::Obj(vec![("e".to_string(), Json::UInt(7))]));
        let text = obj.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, obj);
        assert_eq!(back.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(back.get("b").and_then(Json::as_f64), Some(2.5));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_survives() {
        let v = Json::Str("مكافحة الرقابة".to_string());
        let text = v.pretty();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn numbers_parse_both_ways() {
        assert_eq!(Json::parse("5958").unwrap(), Json::UInt(5958));
        assert_eq!(Json::parse("-3"), Ok(Json::Float(-3.0)));
        assert_eq!(Json::parse("0.25").unwrap(), Json::Float(0.25));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
    }
}
