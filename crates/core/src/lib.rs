//! # filterscope-core
//!
//! Shared vocabulary types for the `filterscope` workspace: calendar
//! timestamps matching the Blue Coat log format, IPv4 CIDR blocks, proxy
//! identifiers for the seven SG-9000 appliances studied in the paper, and a
//! common error type.
//!
//! Everything in this crate is deliberately dependency-free, `Copy`-friendly
//! where possible, and total (no panics on untrusted input).

#![forbid(unsafe_code)]

pub mod bytes;
pub mod error;
pub mod intern;
pub mod json;
pub mod net;
pub mod pool;
pub mod progress;
pub mod proxy_id;
pub mod time;

pub use bytes::{crc32, ByteReader, ByteWriter};
pub use error::{Error, Result};
pub use intern::{Interner, Sym};
pub use json::Json;
pub use net::Ipv4Cidr;
pub use progress::Progress;
pub use proxy_id::ProxyId;
pub use time::{Date, TimeOfDay, Timestamp, Weekday};

/// Convenience prelude for downstream crates.
pub mod prelude {
    pub use crate::error::{Error, Result};
    pub use crate::net::Ipv4Cidr;
    pub use crate::proxy_id::ProxyId;
    pub use crate::time::{Date, TimeOfDay, Timestamp, Weekday};
}
