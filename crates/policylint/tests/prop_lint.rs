//! Property tests for the linter's two headline guarantees:
//!
//! 1. **Witnesses are real.** Every `not-equivalent` finding from
//!    [`check_equivalence`] carries a witness URL that, re-executed through
//!    freshly compiled [`PolicyEngine`]s, reproduces exactly the recorded
//!    outcome classes — and those classes differ.
//! 2. **The shipped configuration is clean.** The standard policy and every
//!    one of the seven per-proxy configs lint finding-free at
//!    `--deny warnings`.

use filterscope_core::Ipv4Cidr;
use filterscope_policylint::{check_equivalence, lint_farm, lint_policy, DecisionKind, LintReport};
use filterscope_proxy::config::FarmConfig;
use filterscope_proxy::{PolicyData, PolicyEngine, RuleFamily};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_policy() -> impl Strategy<Value = PolicyData> {
    (
        proptest::collection::vec("[a-z]{3,10}", 0..6),
        proptest::collection::vec("[a-z]{2,8}\\.(com|net|org|il)", 0..8),
        proptest::collection::vec((any::<u32>(), 8u8..=32), 0..5),
        proptest::collection::vec("[a-z]{2,8}\\.example", 0..4),
        proptest::collection::vec(("[a-z.]{2,12}", "/[A-Za-z.]{1,14}"), 0..4),
        proptest::collection::vec("[a-z=&]{0,10}", 0..4),
    )
        .prop_map(
            |(keywords, domains, subnets, redirects, pages, queries)| PolicyData {
                keywords,
                blocked_domains: domains,
                blocked_subnets: subnets
                    .into_iter()
                    .map(|(a, l)| Ipv4Cidr::new(Ipv4Addr::from(a), l).expect("valid len"))
                    .collect(),
                redirect_hosts: redirects,
                custom_pages: pages,
                custom_queries: queries,
            },
        )
}

/// Re-execute every witness in `findings` through fresh engines for
/// `(left, right)` and assert it separates them exactly as recorded.
fn assert_witnesses_separate(
    findings: &[filterscope_policylint::Finding],
    left: &PolicyData,
    right: &PolicyData,
) {
    let le = PolicyEngine::from_data(left, None, 1);
    let re = PolicyEngine::from_data(right, None, 1);
    for f in findings {
        assert_eq!(f.code, "not-equivalent");
        let w = f.witness.as_ref().expect("every finding carries a witness");
        let l = DecisionKind::of(le.decide_url(&w.url));
        let r = DecisionKind::of(re.decide_url(&w.url));
        assert_eq!(l, w.left, "recorded left outcome must reproduce: {f:?}");
        assert_eq!(r, w.right, "recorded right outcome must reproduce: {f:?}");
        assert_ne!(l, r, "witness must actually separate the engines: {f:?}");
    }
}

proptest! {
    /// Any policy is equivalent to itself — no spurious findings.
    #[test]
    fn self_equivalence_is_empty(policy in arb_policy()) {
        let findings = check_equivalence(&policy, &policy, "a", "b");
        prop_assert!(findings.is_empty(), "{findings:?}");
    }

    /// For arbitrary policy pairs, every non-equivalence finding is backed
    /// by a witness that reproduces through fresh engines.
    #[test]
    fn witnesses_always_separate_the_engines(
        left in arb_policy(),
        right in arb_policy(),
    ) {
        let findings = check_equivalence(&left, &right, "left", "right");
        assert_witnesses_separate(&findings, &left, &right);
    }

    /// Ablating any rule family from the standard policy is detected, and
    /// every resulting witness validates.
    #[test]
    fn family_ablations_yield_validated_witnesses(ix in 0usize..RuleFamily::ALL.len()) {
        let full = PolicyData::standard();
        let ablated = PolicyData::standard().without(RuleFamily::ALL[ix]);
        let findings = check_equivalence(&full, &ablated, "full", "ablated");
        prop_assert!(
            !findings.is_empty(),
            "removing {:?} must be observable",
            RuleFamily::ALL[ix]
        );
        assert_witnesses_separate(&findings, &full, &ablated);
    }
}

#[test]
fn shipped_configuration_lints_clean_under_deny_warnings() {
    let farm = FarmConfig::default();
    assert_eq!(farm.proxies.len(), 7);
    let mut findings = lint_policy(&PolicyData::standard());
    findings.extend(lint_farm(&farm));
    let report = LintReport::new("standard", None, findings, None);
    assert!(
        !report.failing(true),
        "standard policy + 7-proxy farm must pass --deny warnings: {}",
        report.render()
    );
    let (errors, warnings, _notes) = report.counts();
    assert_eq!((errors, warnings), (0, 0));
}
