//! Property tests for the compiled-artifact pipeline, from both ends:
//!
//! 1. **Fidelity.** For arbitrary policies, `compile → load → evaluate`
//!    agrees with `parse → build → evaluate` on arbitrary URLs, and the
//!    witness gate ([`verify_artifact`]) finds nothing to veto.
//! 2. **Fail-closed.** Arbitrary single-bit corruption and truncation of
//!    the byte stream either fail to load or (never observed, but the
//!    property allows it) load to a decision-identical engine — a corrupt
//!    artifact can never silently change policy.

use filterscope_core::Ipv4Cidr;
use filterscope_logformat::RequestUrl;
use filterscope_policylint::verify_artifact;
use filterscope_proxy::artifact::{compile, load};
use filterscope_proxy::{PolicyData, PolicyEngine};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_policy() -> impl Strategy<Value = PolicyData> {
    (
        proptest::collection::vec("[a-z]{3,10}", 0..6),
        proptest::collection::vec("[a-z]{2,8}\\.(com|net|org|il)", 0..8),
        proptest::collection::vec((any::<u32>(), 8u8..=32), 0..5),
        proptest::collection::vec("[a-z]{2,8}\\.example", 0..4),
        proptest::collection::vec(("[a-z.]{2,12}", "/[A-Za-z.]{1,14}"), 0..4),
        proptest::collection::vec("[a-z=&]{0,10}", 0..4),
    )
        .prop_map(
            |(keywords, domains, subnets, redirects, pages, queries)| PolicyData {
                keywords,
                blocked_domains: domains,
                blocked_subnets: subnets
                    .into_iter()
                    .map(|(a, l)| Ipv4Cidr::new(Ipv4Addr::from(a), l).expect("valid len"))
                    .collect(),
                redirect_hosts: redirects,
                custom_pages: pages,
                custom_queries: queries,
            },
        )
}

fn arb_urls() -> impl Strategy<Value = Vec<RequestUrl>> {
    proptest::collection::vec(
        ("[a-z]{2,8}\\.(com|net|org|il|example)", "/[a-z]{0,10}"),
        1..8,
    )
    .prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(host, path)| RequestUrl::http(host, path))
            .collect()
    })
}

proptest! {
    /// compile → load → evaluate is indistinguishable from
    /// parse → build → evaluate, on arbitrary policies and URLs, and
    /// the witness gate waves the faithful artifact through.
    #[test]
    fn compiled_artifact_is_decision_identical(
        policy in arb_policy(),
        urls in arb_urls(),
        seed in any::<u64>(),
    ) {
        let bytes = compile(&policy, seed, None);
        let compiled = load(&bytes, None).expect("fresh artifact loads");
        prop_assert_eq!(&compiled.source, &policy, "embedded source survives");
        prop_assert_eq!(compiled.seed, seed);
        let reference = PolicyEngine::from_data(&policy, None, seed);
        for url in &urls {
            prop_assert_eq!(
                compiled.engine.decide_url(url),
                reference.decide_url(url),
                "{:?}", url
            );
        }
        let findings = verify_artifact(&compiled);
        prop_assert!(findings.is_empty(), "{findings:?}");
    }

    /// Flipping any single bit anywhere in the artifact fails closed:
    /// the load is rejected, or — if some flip were ever to slip past
    /// every CRC — the resulting engine still decides identically.
    #[test]
    fn single_bit_corruption_fails_closed(
        policy in arb_policy(),
        urls in arb_urls(),
        flip in any::<u16>(),
        bit in 0u8..8,
    ) {
        let bytes = compile(&policy, 3, None);
        let mut corrupt = bytes.clone();
        let at = flip as usize % corrupt.len();
        corrupt[at] ^= 1 << bit;
        if let Ok(compiled) = load(&corrupt, None) {
            let reference = PolicyEngine::from_data(&policy, None, 3);
            for url in &urls {
                prop_assert_eq!(
                    compiled.engine.decide_url(url),
                    reference.decide_url(url),
                    "corrupting byte {} bit {} changed a decision", at, bit
                );
            }
        }
    }

    /// Every proper prefix of the artifact is rejected.
    #[test]
    fn truncation_fails_closed(
        policy in arb_policy(),
        cut in any::<u16>(),
    ) {
        let bytes = compile(&policy, 9, None);
        let at = cut as usize % bytes.len();
        prop_assert!(load(&bytes[..at], None).is_err(), "prefix of {} bytes", at);
    }

    /// A version bump is rejected even with the header CRC recomputed —
    /// readers must not guess at a future layout.
    #[test]
    fn foreign_version_is_rejected(policy in arb_policy(), version in 2u32..100) {
        let bytes = compile(&policy, 1, None);
        let mut foreign = bytes.clone();
        foreign[4..8].copy_from_slice(&version.to_le_bytes());
        prop_assert!(load(&foreign, None).is_err());
    }
}
