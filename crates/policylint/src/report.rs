//! The assembled lint report: findings + skew matrix, with text and JSON
//! renderings and the gating rule behind `--deny warnings`.

use crate::finding::{sort_findings, Finding, Severity};
use crate::skew::SkewMatrix;
use filterscope_core::Json;

/// Everything one `filterscope lint` run produced.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Name of the linted policy (`standard` or a file path).
    pub policy_name: String,
    /// Name of the comparison policy, when `--against` was given.
    pub against_name: Option<String>,
    /// All findings, in deterministic report order.
    pub findings: Vec<Finding>,
    /// Cross-proxy skew matrix, when a farm was in scope.
    pub skew: Option<SkewMatrix>,
}

impl LintReport {
    /// Assemble a report; findings are (re)sorted into report order.
    pub fn new(
        policy_name: impl Into<String>,
        against_name: Option<String>,
        mut findings: Vec<Finding>,
        skew: Option<SkewMatrix>,
    ) -> Self {
        sort_findings(&mut findings);
        LintReport {
            policy_name: policy_name.into(),
            against_name,
            findings,
            skew,
        }
    }

    /// `(errors, warnings, notes)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let count = |s| self.findings.iter().filter(|f| f.severity == s).count();
        (
            count(Severity::Error),
            count(Severity::Warning),
            count(Severity::Info),
        )
    }

    /// Should this run exit non-zero? Errors always fail; warnings fail
    /// under `--deny warnings`; notes never fail.
    pub fn failing(&self, deny_warnings: bool) -> bool {
        let (errors, warnings, _) = self.counts();
        errors > 0 || (deny_warnings && warnings > 0)
    }

    /// The one-line verdict closing the text report.
    pub fn summary_line(&self) -> String {
        let (errors, warnings, notes) = self.counts();
        if errors == 0 && warnings == 0 {
            format!("no findings ({notes} note(s))")
        } else {
            format!("{errors} error(s), {warnings} warning(s), {notes} note(s)")
        }
    }

    /// Full text rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        match &self.against_name {
            Some(against) => out.push_str(&format!(
                "policy lint: {} vs {}\n",
                self.policy_name, against
            )),
            None => out.push_str(&format!("policy lint: {}\n", self.policy_name)),
        }
        for f in &self.findings {
            out.push_str("  ");
            out.push_str(&f.render_line());
            out.push('\n');
        }
        out.push_str(&self.summary_line());
        out.push('\n');
        if let Some(skew) = &self.skew {
            out.push('\n');
            out.push_str(&skew.render());
        }
        out
    }

    /// Full JSON rendering (stable member order).
    pub fn to_json(&self) -> Json {
        let (errors, warnings, notes) = self.counts();
        let mut obj = Json::object();
        obj.push("policy", Json::Str(self.policy_name.clone()));
        obj.push(
            "against",
            match &self.against_name {
                Some(a) => Json::Str(a.clone()),
                None => Json::Null,
            },
        );
        obj.push(
            "findings",
            Json::Arr(self.findings.iter().map(|f| f.to_json()).collect()),
        );
        let mut summary = Json::object();
        summary.push("errors", Json::UInt(errors as u64));
        summary.push("warnings", Json::UInt(warnings as u64));
        summary.push("notes", Json::UInt(notes as u64));
        obj.push("summary", summary);
        obj.push(
            "skew",
            match &self.skew {
                Some(s) => s.to_json(),
                None => Json::Null,
            },
        );
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_policy, skew_matrix};
    use filterscope_proxy::config::FarmConfig;
    use filterscope_proxy::PolicyData;

    fn standard_report() -> LintReport {
        LintReport::new(
            "standard",
            None,
            lint_policy(&PolicyData::standard()),
            Some(skew_matrix(&FarmConfig::default())),
        )
    }

    #[test]
    fn standard_policy_passes_even_under_deny_warnings() {
        let r = standard_report();
        let (errors, warnings, notes) = r.counts();
        assert_eq!((errors, warnings), (0, 0));
        assert_eq!(notes, 6);
        assert!(!r.failing(false));
        assert!(!r.failing(true));
        assert_eq!(r.summary_line(), "no findings (6 note(s))");
    }

    #[test]
    fn render_contains_findings_and_matrix() {
        let text = standard_report().render();
        assert!(text.starts_with("policy lint: standard\n"));
        assert!(text.contains("note[redirect-masks-domain]"));
        assert!(text.contains("Cross-proxy skew matrix"));
    }

    #[test]
    fn warnings_gate_only_under_deny() {
        let mut p = PolicyData::empty();
        p.keywords = vec!["proxy".into(), "cgiproxy".into()];
        let r = LintReport::new("test", None, lint_policy(&p), None);
        assert!(!r.failing(false));
        assert!(r.failing(true));
        assert_eq!(r.summary_line(), "0 error(s), 1 warning(s), 0 note(s)");
    }

    #[test]
    fn json_roundtrips_through_the_parser() {
        let r = standard_report();
        let parsed = Json::parse(&r.to_json().pretty()).expect("well-formed");
        assert_eq!(
            parsed.get("summary").and_then(|s| s.get("notes")),
            Some(&Json::UInt(6))
        );
        assert_eq!(parsed.get("against"), Some(&Json::Null));
    }
}
