//! Single-policy lint: reachability, shadowing, redundancy, and cross-tier
//! masking, reasoned against the engine's fixed evaluation precedence
//! (custom category → redirect hosts → keywords → domains → subnets).

use crate::finding::{sort_findings, Finding, Severity};
use filterscope_proxy::config::FarmConfig;
use filterscope_proxy::{PolicyData, RuleFamily};

use filterscope_core::ProxyId;
use filterscope_match::aho_corasick::AhoCorasickBuilder;
use filterscope_match::DomainTrie;
use std::collections::HashMap;

/// Normalize a keyword the way the (case-insensitive) automaton sees it.
fn norm_keyword(k: &str) -> String {
    k.to_ascii_lowercase()
}

/// Normalize a domain entry the way the trie stores it.
fn norm_domain(d: &str) -> String {
    d.trim_start_matches('.')
        .trim_end_matches('.')
        .to_ascii_lowercase()
}

fn finding(
    severity: Severity,
    code: &'static str,
    family: RuleFamily,
    rule: String,
    message: String,
) -> Finding {
    Finding {
        severity,
        code,
        family: Some(family),
        rule,
        message,
        witness: None,
    }
}

/// Report exact (normalized) duplicates within one rule family.
fn duplicates<'a>(
    entries: impl IntoIterator<Item = (String, &'a str)>,
    family: RuleFamily,
    render: impl Fn(&str) -> String,
    out: &mut Vec<Finding>,
) {
    let mut first: HashMap<String, &str> = HashMap::new();
    for (norm, orig) in entries {
        if let Some(prev) = first.get(norm.as_str()) {
            out.push(finding(
                Severity::Warning,
                "duplicate-rule",
                family,
                render(orig),
                format!("duplicate of {}", render(prev)),
            ));
        } else {
            first.insert(norm, orig);
        }
    }
}

/// Lint one policy. Findings are returned in deterministic report order
/// (most severe first).
///
/// The checks fall into three groups:
///
/// * **malformed content** (`empty-rule`, `page-dead-path`) — rules the
///   engine can structurally never match;
/// * **within-tier shadowing** (`duplicate-rule`, `keyword-subsumed`,
///   `domain-shadowed`, `subnet-contained`) — rules whose match set is
///   contained in another rule of the same tier, so they can never be the
///   deciding rule;
/// * **cross-tier masking** (`redirect-masks-*`, `page-masks-*`,
///   `page-overlaps-redirect`) — `Info` notes where an earlier tier
///   changes the outcome class a later tier would have produced. These are
///   properties of the deployment, not defects: the shipped standard
///   policy deliberately redirects six upload frontends whose parent
///   domains are deny-listed (Table 7 vs. Table 8).
pub fn lint_policy(policy: &PolicyData) -> Vec<Finding> {
    let mut out = Vec::new();

    // --- malformed content -------------------------------------------------
    for k in &policy.keywords {
        if k.is_empty() {
            out.push(finding(
                Severity::Error,
                "empty-rule",
                RuleFamily::Keywords,
                "keyword \"\"".to_string(),
                "empty keyword matches every request".to_string(),
            ));
        }
    }
    for d in &policy.blocked_domains {
        if norm_domain(d).is_empty() {
            out.push(finding(
                Severity::Error,
                "empty-rule",
                RuleFamily::Domains,
                format!("domain {d:?}"),
                "domain entry has no labels".to_string(),
            ));
        }
    }
    for h in &policy.redirect_hosts {
        if h.is_empty() {
            out.push(finding(
                Severity::Error,
                "empty-rule",
                RuleFamily::Redirects,
                "redirect host \"\"".to_string(),
                "empty redirect host can never match".to_string(),
            ));
        }
    }
    for (host, path) in &policy.custom_pages {
        if host.is_empty() {
            out.push(finding(
                Severity::Error,
                "empty-rule",
                RuleFamily::CustomCategory,
                format!("page ({host:?}, {path:?})"),
                "page rule has an empty host".to_string(),
            ));
        }
        if !path.starts_with('/') {
            out.push(finding(
                Severity::Warning,
                "page-dead-path",
                RuleFamily::CustomCategory,
                format!("page ({host:?}, {path:?})"),
                "logged paths always start with '/', so this rule never matches".to_string(),
            ));
        }
    }

    // --- duplicates --------------------------------------------------------
    duplicates(
        policy
            .keywords
            .iter()
            .map(|k| (norm_keyword(k), k.as_str())),
        RuleFamily::Keywords,
        |k| format!("keyword {k:?}"),
        &mut out,
    );
    duplicates(
        policy
            .blocked_domains
            .iter()
            .map(|d| (norm_domain(d), d.as_str())),
        RuleFamily::Domains,
        |d| format!("domain {d:?}"),
        &mut out,
    );
    duplicates(
        policy
            .redirect_hosts
            .iter()
            .map(|h| (h.clone(), h.as_str())),
        RuleFamily::Redirects,
        |h| format!("redirect host {h:?}"),
        &mut out,
    );
    {
        let mut seen: HashMap<&(String, String), ()> = HashMap::new();
        for pair in &policy.custom_pages {
            if seen.insert(pair, ()).is_some() {
                out.push(finding(
                    Severity::Warning,
                    "duplicate-rule",
                    RuleFamily::CustomCategory,
                    format!("page ({:?}, {:?})", pair.0, pair.1),
                    "duplicate page rule".to_string(),
                ));
            }
        }
        let mut seen_q: HashMap<&str, ()> = HashMap::new();
        for q in &policy.custom_queries {
            if seen_q.insert(q.as_str(), ()).is_some() {
                out.push(finding(
                    Severity::Warning,
                    "duplicate-rule",
                    RuleFamily::CustomCategory,
                    format!("query {q:?}"),
                    "duplicate query string".to_string(),
                ));
            }
        }
        let mut seen_s = HashMap::new();
        for c in &policy.blocked_subnets {
            if seen_s.insert(*c, ()).is_some() {
                out.push(finding(
                    Severity::Warning,
                    "duplicate-rule",
                    RuleFamily::Subnets,
                    format!("subnet {c}"),
                    "duplicate subnet block".to_string(),
                ));
            }
        }
    }

    // --- within-tier shadowing --------------------------------------------
    // Keywords: substring subsumption via the automaton itself. The tier is
    // first-match-wins over one haystack, so a keyword containing another
    // can never be the deciding rule.
    let live_keywords: Vec<&str> = policy
        .keywords
        .iter()
        .map(|k| k.as_str())
        .filter(|k| !k.is_empty())
        .collect();
    let ac = AhoCorasickBuilder::new()
        .ascii_case_insensitive(true)
        .build(&live_keywords);
    for (j, k) in live_keywords.iter().enumerate() {
        if let Some(i) = ac.subsuming_pattern(j) {
            out.push(finding(
                Severity::Warning,
                "keyword-subsumed",
                RuleFamily::Keywords,
                format!("keyword {k:?}"),
                format!(
                    "contains keyword {:?}; any URL it matches is already keyword-denied",
                    live_keywords[i]
                ),
            ));
        }
    }

    // Domains: suffix subsumption via the trie. Track the first spelling of
    // each distinct entry so the message can name the shadowing rule.
    let mut trie = DomainTrie::new();
    let mut entry_names: Vec<String> = Vec::new();
    for d in &policy.blocked_domains {
        let n = norm_domain(d);
        if n.is_empty() {
            continue;
        }
        let ix = trie.insert(&n);
        if ix as usize == entry_names.len() {
            entry_names.push(d.clone());
        }
    }
    for d in &policy.blocked_domains {
        let n = norm_domain(d);
        if n.is_empty() {
            continue;
        }
        if let Some(ix) = trie.shadowing_entry(&n) {
            out.push(finding(
                Severity::Warning,
                "domain-shadowed",
                RuleFamily::Domains,
                format!("domain {d:?}"),
                format!(
                    "every host it covers is already covered by domain {:?}",
                    entry_names[ix as usize]
                ),
            ));
        }
    }

    // Subnets: CIDR blocks are nested or disjoint, so containment is the
    // only possible overlap. Report each block contained in a strictly
    // wider one (the widest container, for a stable message).
    for (j, b) in policy.blocked_subnets.iter().enumerate() {
        let container = policy
            .blocked_subnets
            .iter()
            .enumerate()
            .filter(|&(i, a)| i != j && a != b && a.contains_block(*b))
            .min_by_key(|&(_, a)| a.prefix_len())
            .map(|(_, a)| a);
        if let Some(a) = container {
            out.push(finding(
                Severity::Warning,
                "subnet-contained",
                RuleFamily::Subnets,
                format!("subnet {b}"),
                format!("contained in subnet {a}; it can never be the deciding rule"),
            ));
        }
    }

    // --- cross-tier reachability ------------------------------------------
    // A domain entry containing a keyword is dead: every host the suffix
    // covers carries the entry — hence the keyword — as a substring, and
    // the keyword tier evaluates first.
    for d in &policy.blocked_domains {
        let n = norm_domain(d);
        if n.is_empty() {
            continue;
        }
        if let Some(m) = ac.find(n.as_bytes()) {
            out.push(finding(
                Severity::Warning,
                "domain-dead",
                RuleFamily::Domains,
                format!("domain {d:?}"),
                format!(
                    "every covered host contains keyword {:?}, which denies first",
                    live_keywords[m.pattern]
                ),
            ));
        }
    }

    // Masking notes: an earlier tier changes the outcome *class* a later
    // tier would have produced (redirect instead of deny, or vice versa).
    for h in &policy.redirect_hosts {
        if h.is_empty() {
            continue;
        }
        if ac.is_match(h.as_bytes()) {
            out.push(finding(
                Severity::Info,
                "redirect-masks-keyword",
                RuleFamily::Redirects,
                format!("redirect host {h:?}"),
                "host contains a blacklisted keyword; requests redirect instead of deny"
                    .to_string(),
            ));
        }
        if trie.matches(h) {
            out.push(finding(
                Severity::Info,
                "redirect-masks-domain",
                RuleFamily::Redirects,
                format!("redirect host {h:?}"),
                "host falls under a deny-listed domain; requests redirect instead of deny"
                    .to_string(),
            ));
        }
    }
    for (host, path) in &policy.custom_pages {
        if host.is_empty() || !path.starts_with('/') {
            continue;
        }
        let rule = format!("page ({host:?}, {path:?})");
        if ac.is_match(format!("{host}{path}").as_bytes()) {
            out.push(finding(
                Severity::Info,
                "page-masks-keyword",
                RuleFamily::CustomCategory,
                rule.clone(),
                "page URL contains a blacklisted keyword; exact hits redirect instead of deny"
                    .to_string(),
            ));
        }
        if trie.matches(host) {
            out.push(finding(
                Severity::Info,
                "page-masks-domain",
                RuleFamily::CustomCategory,
                rule.clone(),
                "page host falls under a deny-listed domain; exact hits redirect instead of deny"
                    .to_string(),
            ));
        }
        if policy.redirect_hosts.iter().any(|h| h == host) {
            out.push(finding(
                Severity::Info,
                "page-overlaps-redirect",
                RuleFamily::CustomCategory,
                rule,
                "page host is also a redirect host; both tiers redirect, the page rule decides"
                    .to_string(),
            ));
        }
    }

    // Custom-category rules only fire when BOTH a page and a query string
    // match; either list alone is inert.
    if !policy.custom_pages.is_empty() && policy.custom_queries.is_empty() {
        out.push(finding(
            Severity::Warning,
            "custom-category-inert",
            RuleFamily::CustomCategory,
            format!("{} page rule(s)", policy.custom_pages.len()),
            "no query strings are defined, so no request can enter the custom category".to_string(),
        ));
    }
    if policy.custom_pages.is_empty() && !policy.custom_queries.is_empty() {
        out.push(finding(
            Severity::Warning,
            "custom-category-inert",
            RuleFamily::CustomCategory,
            format!("{} query string(s)", policy.custom_queries.len()),
            "no page rules are defined, so the query strings cover nothing".to_string(),
        ));
    }

    sort_findings(&mut out);
    out
}

/// Lint the per-proxy configuration layer of a farm: the skew itself is
/// reported by [`crate::skew_matrix`]; this checks for configurations the
/// simulator (and the real appliance line) would not accept.
pub fn lint_farm(farm: &FarmConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut push = |severity, code, rule: String, message: String| {
        out.push(Finding {
            severity,
            code,
            family: None,
            rule,
            message,
            witness: None,
        });
    };
    if farm.proxies.len() != ProxyId::COUNT {
        push(
            Severity::Error,
            "farm-size",
            "farm".to_string(),
            format!(
                "{} proxies configured, deployment has {}",
                farm.proxies.len(),
                ProxyId::COUNT
            ),
        );
    }
    for (i, p) in farm.proxies.iter().enumerate() {
        let label = p.id.label();
        if p.id.index() != i {
            push(
                Severity::Error,
                "proxy-order",
                label.to_string(),
                format!("at position {i}, expected index {}", p.id.index()),
            );
        }
        if p.tor_rule_per_mille_cap > 1000 {
            push(
                Severity::Warning,
                "tor-cap-out-of-range",
                label.to_string(),
                format!(
                    "Tor cap {}‰ exceeds 1000‰ (wholesale blocking)",
                    p.tor_rule_per_mille_cap
                ),
            );
        }
        if p.default_category.is_empty() || p.blocked_category.is_empty() {
            push(
                Severity::Warning,
                "empty-category-label",
                label.to_string(),
                "category labels must be non-empty (the appliance always logs one)".to_string(),
            );
        }
    }
    if u64::from(farm.error_per_cent_mille) + u64::from(farm.proxied_per_cent_mille) > 100_000 {
        push(
            Severity::Warning,
            "rate-overflow",
            "farm".to_string(),
            format!(
                "error ({}) + cache ({}) rates exceed 100000 per-cent-mille",
                farm.error_per_cent_mille, farm.proxied_per_cent_mille
            ),
        );
    }
    sort_findings(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use filterscope_core::Ipv4Cidr;

    fn codes(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn standard_policy_yields_only_masking_notes() {
        let findings = lint_policy(&PolicyData::standard());
        assert!(
            findings.iter().all(|f| f.severity == Severity::Info),
            "{findings:?}"
        );
        // The six Table 7 upload frontends whose parent domains are
        // deny-listed (Table 8).
        let masked: Vec<&str> = findings
            .iter()
            .filter(|f| f.code == "redirect-masks-domain")
            .map(|f| f.rule.as_str())
            .collect();
        assert_eq!(masked.len(), 6, "{masked:?}");
        assert!(masked.contains(&"redirect host \"share.metacafe.com\""));
        assert!(masked.contains(&"redirect host \"upload.dailymotion.com\""));
        assert_eq!(findings.len(), 6);
    }

    #[test]
    fn empty_and_duplicate_rules_are_flagged() {
        let mut p = PolicyData::empty();
        p.keywords = vec!["proxy".into(), "".into(), "PROXY".into()];
        let f = lint_policy(&p);
        assert!(codes(&f).contains(&"empty-rule"));
        let dup = f.iter().find(|f| f.code == "duplicate-rule").unwrap();
        assert_eq!(dup.rule, "keyword \"PROXY\"");
        assert_eq!(dup.severity, Severity::Warning);
    }

    #[test]
    fn keyword_subsumption_detected() {
        let mut p = PolicyData::empty();
        p.keywords = vec!["proxy".into(), "cgiproxy".into(), "ultra".into()];
        let f = lint_policy(&p);
        let sub = f.iter().find(|f| f.code == "keyword-subsumed").unwrap();
        assert_eq!(sub.rule, "keyword \"cgiproxy\"");
        assert!(sub.message.contains("\"proxy\""));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn domain_shadowing_and_keyword_deadness_detected() {
        let mut p = PolicyData::empty();
        p.keywords = vec!["israel".into()];
        p.blocked_domains = vec![
            "il".into(),
            "panet.co.il".into(),
            "israelweather.co.il".into(),
        ];
        let f = lint_policy(&p);
        let shadowed: Vec<&str> = f
            .iter()
            .filter(|f| f.code == "domain-shadowed")
            .map(|f| f.rule.as_str())
            .collect();
        assert_eq!(
            shadowed,
            vec!["domain \"israelweather.co.il\"", "domain \"panet.co.il\"",]
        );
        let dead = f.iter().find(|f| f.code == "domain-dead").unwrap();
        assert_eq!(dead.rule, "domain \"israelweather.co.il\"");
        assert!(dead.message.contains("\"israel\""));
    }

    #[test]
    fn subnet_containment_detected() {
        let mut p = PolicyData::empty();
        p.blocked_subnets = vec![
            Ipv4Cidr::parse("46.120.0.0/15").unwrap(),
            Ipv4Cidr::parse("46.121.16.0/20").unwrap(),
            Ipv4Cidr::parse("84.229.0.0/16").unwrap(),
        ];
        let f = lint_policy(&p);
        assert_eq!(codes(&f), vec!["subnet-contained"]);
        assert_eq!(f[0].rule, "subnet 46.121.16.0/20");
        assert!(f[0].message.contains("46.120.0.0/15"));
    }

    #[test]
    fn inert_custom_category_detected() {
        let mut p = PolicyData::empty();
        p.custom_pages = vec![("www.facebook.com".into(), "/Syrian.Revolution".into())];
        let f = lint_policy(&p);
        assert_eq!(codes(&f), vec!["custom-category-inert"]);

        let mut p = PolicyData::empty();
        p.custom_queries = vec!["ref=ts".into()];
        let f = lint_policy(&p);
        assert_eq!(codes(&f), vec!["custom-category-inert"]);
    }

    #[test]
    fn dead_page_path_detected() {
        let mut p = PolicyData::empty();
        p.custom_pages = vec![("www.facebook.com".into(), "Syrian.Revolution".into())];
        p.custom_queries = vec!["".into()];
        let f = lint_policy(&p);
        assert_eq!(codes(&f), vec!["page-dead-path"]);
    }

    #[test]
    fn standard_farm_is_clean_and_bad_farms_are_not() {
        assert!(lint_farm(&FarmConfig::default()).is_empty());
        assert!(lint_farm(&FarmConfig::tor_blocked_era()).is_empty());

        let mut farm = FarmConfig::default();
        farm.proxies[2].tor_rule_per_mille_cap = 1500;
        farm.proxies.swap(0, 1);
        let f = lint_farm(&farm);
        assert_eq!(
            codes(&f),
            vec!["proxy-order", "proxy-order", "tor-cap-out-of-range"]
        );

        let mut farm = FarmConfig::default();
        farm.proxies.pop();
        assert_eq!(codes(&lint_farm(&farm)), vec!["farm-size"]);

        let mut farm = FarmConfig::default();
        farm.error_per_cent_mille = 99_000;
        farm.proxied_per_cent_mille = 2_000;
        assert_eq!(codes(&lint_farm(&farm)), vec!["rate-overflow"]);
    }
}
