//! # filterscope-policylint
//!
//! Static analysis of SG-9000 policies. The paper's central claim (§5.4–§6)
//! is that the Syrian deployment is explainable as a small rule program —
//! keywords, domain suffixes, subnets, redirect hosts, a custom category —
//! with per-proxy skew. This crate *checks* such a program without replaying
//! any traffic, reasoning against the engine's fixed evaluation precedence
//! (custom category → redirect hosts → keywords → domain suffixes → subnets
//! → Tor):
//!
//! * [`lint_policy`] — reachability/shadowing and redundancy/conflict
//!   findings over one [`PolicyData`]: keyword substring subsumption (via
//!   the Aho–Corasick pattern set), domain-suffix subsumption (via the
//!   trie), CIDR containment (via the subnet set), dead custom-category
//!   rules, and cross-tier masking notes;
//! * [`lint_farm`] — consistency checks over the per-proxy configs;
//! * [`skew_matrix`] — a static diff of the seven per-proxy configurations
//!   rendered as a Table-style matrix (recovers SG-44's Tor rule and
//!   SG-48's `metacafe.com` specialization from the standard farm);
//! * [`check_equivalence`] — rule-level equivalence of two policies where
//!   every non-equivalence finding carries a synthesized witness request
//!   URL, self-validated by executing both compiled [`PolicyEngine`]s — no
//!   static claim without a dynamic counterexample;
//! * [`verify_artifact`] — the same witness machinery aimed at a loaded
//!   compiled-policy artifact: the deserialized engine is probed against a
//!   reference engine rebuilt from the artifact's embedded source CPL, and
//!   any disagreement (with its counterexample URL) vetoes a hot swap.
//!
//! Surfaced on the command line as `filterscope lint`.
//!
//! [`PolicyData`]: filterscope_proxy::PolicyData
//! [`PolicyEngine`]: filterscope_proxy::PolicyEngine

#![forbid(unsafe_code)]

pub mod equiv;
pub mod finding;
pub mod lint;
pub mod report;
pub mod skew;

pub use equiv::{check_equivalence, verify_artifact};
pub use finding::{DecisionKind, Finding, Severity, Witness};
pub use lint::{lint_farm, lint_policy};
pub use report::LintReport;
pub use skew::{skew_matrix, SkewMatrix, SkewRow};
