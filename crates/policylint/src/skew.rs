//! Cross-proxy skew: a static diff of the seven per-proxy configurations.
//!
//! The paper reaches its per-proxy findings (§5.2, §7.1) by aggregating
//! millions of log lines; given the configuration itself, the same facts
//! fall out of a column-wise diff. Each row is one configuration axis; a
//! cell that differs from the row's majority value is marked with `*` —
//! those marks recover exactly the paper's skew table: SG-44 runs the Tor
//! relay rule, SG-48 receives the `metacafe.com` specialization (and the
//! trace Tor cap), SG-43/SG-48 use the `none`-style category labels.

use filterscope_analysis::report::Table;
use filterscope_core::{Json, ProxyId};
use filterscope_proxy::config::{FarmConfig, ROUTE_BIASES};

/// One configuration axis across the seven proxies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkewRow {
    /// Axis label (e.g. `Tor relay rule (‰ cap)`).
    pub label: String,
    /// One raw cell value per proxy, indexed by [`ProxyId::index`].
    pub cells: Vec<String>,
    /// The majority value of the row (ties broken toward the first proxy).
    pub majority: String,
}

impl SkewRow {
    fn new(label: impl Into<String>, cells: Vec<String>) -> Self {
        let mut majority = cells[0].clone();
        let mut best = 0;
        for v in &cells {
            let n = cells.iter().filter(|c| *c == v).count();
            if n > best {
                best = n;
                majority = v.clone();
            }
        }
        SkewRow {
            label: label.into(),
            cells,
            majority,
        }
    }

    /// The proxies whose cell deviates from the row majority.
    pub fn skewed(&self) -> Vec<ProxyId> {
        ProxyId::ALL
            .iter()
            .copied()
            .filter(|p| self.cells[p.index()] != self.majority)
            .collect()
    }
}

/// The full skew matrix (one row per configuration axis).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkewMatrix {
    /// Rows in fixed order: categories, Tor cap, then one per routing bias.
    pub rows: Vec<SkewRow>,
}

impl SkewMatrix {
    /// Every `(proxy, axis label)` pair where the proxy deviates from the
    /// farm majority — the machine-readable form of the `*` marks.
    pub fn skews(&self) -> Vec<(ProxyId, String)> {
        let mut out = Vec::new();
        for row in &self.rows {
            for p in row.skewed() {
                out.push((p, row.label.clone()));
            }
        }
        out
    }

    /// Render as a monospace table; minority cells carry a `*` suffix.
    pub fn render(&self) -> String {
        let mut headers = vec!["Setting"];
        for p in ProxyId::ALL {
            headers.push(p.label());
        }
        let mut t = Table::new("Cross-proxy skew matrix", &headers);
        for row in &self.rows {
            let mut cells = vec![row.label.clone()];
            for p in ProxyId::ALL {
                let v = &row.cells[p.index()];
                if *v == row.majority {
                    cells.push(v.clone());
                } else {
                    cells.push(format!("{v}*"));
                }
            }
            t.row(cells);
        }
        t.render()
    }

    /// JSON form: `{"proxies": [...], "rows": [{"label", "cells", "skewed"}]}`.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.push(
            "proxies",
            Json::Arr(
                ProxyId::ALL
                    .iter()
                    .map(|p| Json::Str(p.label().to_string()))
                    .collect(),
            ),
        );
        obj.push(
            "rows",
            Json::Arr(
                self.rows
                    .iter()
                    .map(|row| {
                        let mut r = Json::object();
                        r.push("label", Json::Str(row.label.clone()));
                        r.push(
                            "cells",
                            Json::Arr(row.cells.iter().map(|c| Json::Str(c.clone())).collect()),
                        );
                        r.push(
                            "skewed",
                            Json::Arr(
                                row.skewed()
                                    .into_iter()
                                    .map(|p| Json::Str(p.label().to_string()))
                                    .collect(),
                            ),
                        );
                        r
                    })
                    .collect(),
            ),
        );
        obj
    }
}

/// Build the skew matrix for a farm. Purely static: nothing is simulated,
/// the rows are read off [`FarmConfig`] and [`ROUTE_BIASES`].
pub fn skew_matrix(farm: &FarmConfig) -> SkewMatrix {
    let per_proxy = |f: &dyn Fn(usize) -> String| -> Vec<String> {
        (0..farm.proxies.len().min(ProxyId::COUNT)).map(f).collect()
    };
    let mut rows = Vec::new();
    rows.push(SkewRow::new(
        "default category",
        per_proxy(&|i| farm.proxies[i].default_category.to_string()),
    ));
    rows.push(SkewRow::new(
        "blocked category",
        per_proxy(&|i| farm.proxies[i].blocked_category.to_string()),
    ));
    rows.push(SkewRow::new(
        "Tor relay rule (\u{2030} cap)",
        per_proxy(&|i| farm.proxies[i].tor_rule_per_mille_cap.to_string()),
    ));
    for bias in ROUTE_BIASES {
        rows.push(SkewRow::new(
            format!("route {} (\u{2030})", bias.label()),
            per_proxy(&|i| {
                let share = bias.share_per_mille(ProxyId::ALL[i]);
                if share == 0 {
                    "-".to_string()
                } else {
                    share.to_string()
                }
            }),
        ));
    }
    SkewMatrix { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_farm_recovers_the_paper_skews() {
        let m = skew_matrix(&FarmConfig::default());
        let skews = m.skews();
        // SG-44's Tor rule and SG-48's metacafe concentration — the two
        // headline per-proxy findings — must both be recovered statically.
        assert!(skews.contains(&(ProxyId::Sg44, "Tor relay rule (\u{2030} cap)".to_string())));
        assert!(skews.contains(&(ProxyId::Sg48, "route metacafe.com (\u{2030})".to_string())));
        // SG-43/SG-48 category-label style.
        assert!(skews.contains(&(ProxyId::Sg43, "default category".to_string())));
        assert!(skews.contains(&(ProxyId::Sg48, "default category".to_string())));
        // SG-42 is entirely vanilla.
        assert!(skews.iter().all(|(p, _)| *p != ProxyId::Sg42));
    }

    #[test]
    fn render_marks_minority_cells() {
        let m = skew_matrix(&FarmConfig::default());
        let text = m.render();
        assert!(text.contains("== Cross-proxy skew matrix =="));
        assert!(text.contains("900*"));
        assert!(text.contains("955*"));
        assert!(text.contains("none*"));
    }

    #[test]
    fn tor_blocked_era_has_no_tor_skew() {
        let m = skew_matrix(&FarmConfig::tor_blocked_era());
        let tor = m
            .rows
            .iter()
            .find(|r| r.label.starts_with("Tor relay rule"))
            .unwrap();
        assert!(tor.skewed().is_empty());
        assert_eq!(tor.majority, "1000");
    }

    #[test]
    fn json_shape() {
        let j = skew_matrix(&FarmConfig::default()).to_json();
        let proxies = match j.get("proxies") {
            Some(Json::Arr(a)) => a.len(),
            _ => 0,
        };
        assert_eq!(proxies, 7);
        let rows = match j.get("rows") {
            Some(Json::Arr(a)) => a.clone(),
            _ => panic!("rows missing"),
        };
        assert_eq!(rows.len(), 6); // 3 config axes + 3 routing biases
        assert_eq!(
            rows[0].get("label"),
            Some(&Json::Str("default category".to_string()))
        );
    }
}
