//! Lint findings: severity-graded facts about a policy, with optional
//! executed witnesses.

use filterscope_core::Json;
use filterscope_logformat::RequestUrl;
use filterscope_proxy::{Decision, RuleFamily};

/// How bad a finding is.
///
/// The ordering matters for gating: `--deny warnings` fails the lint on
/// anything `>= Warning`; `Info` notes never fail a run (the shipped
/// standard policy carries six deliberate cross-tier masking notes — see
/// `redirect-masks-domain` — that are properties of the deployment, not
/// defects).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A property worth knowing, not a defect (cross-tier masking).
    Info,
    /// A rule that can never fire, or redundant/conflicting content.
    Warning,
    /// A malformed policy, or a proven behavioural difference.
    Error,
}

impl Severity {
    /// Stable lowercase label (`note` / `warning` / `error`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// The observable outcome class of a [`Decision`], ignoring the trigger.
///
/// Equivalence checking compares policies on what a client experiences:
/// `Deny(Keyword)` and `Deny(Domain)` are behaviourally identical, so two
/// policies disagreeing only on *why* they deny are equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    Allow,
    Deny,
    Redirect,
}

impl DecisionKind {
    /// Project a full decision onto its observable class.
    pub fn of(decision: Decision) -> Self {
        match decision {
            Decision::Allow => DecisionKind::Allow,
            Decision::Deny(_) => DecisionKind::Deny,
            Decision::Redirect(_) => DecisionKind::Redirect,
        }
    }

    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            DecisionKind::Allow => "allow",
            DecisionKind::Deny => "deny",
            DecisionKind::Redirect => "redirect",
        }
    }
}

/// A synthesized request URL on which two compiled engines were *executed*
/// and observed to disagree — the dynamic counterexample behind every
/// `not-equivalent` finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// The request that separates the two policies.
    pub url: RequestUrl,
    /// Outcome under the first (`left`) policy.
    pub left: DecisionKind,
    /// Outcome under the second (`right`) policy.
    pub right: DecisionKind,
}

impl Witness {
    /// The witness URL in display form (`http://host/path?query`).
    pub fn url_string(&self) -> String {
        self.url.to_string()
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Severity grade.
    pub severity: Severity,
    /// Stable machine-readable code (e.g. `keyword-subsumed`).
    pub code: &'static str,
    /// The rule family the finding is about, when it is about one.
    pub family: Option<RuleFamily>,
    /// The rule the finding anchors to, rendered (e.g. `keyword "proxy"`).
    pub rule: String,
    /// Human explanation.
    pub message: String,
    /// Executed counterexample, present on every `not-equivalent` finding.
    pub witness: Option<Witness>,
}

impl Finding {
    /// One-line text rendering.
    pub fn render_line(&self) -> String {
        let mut line = format!(
            "{}[{}] {}: {}",
            self.severity.label(),
            self.code,
            self.rule,
            self.message
        );
        if let Some(w) = &self.witness {
            line.push_str(&format!(
                " (witness {} -> left={} right={})",
                w.url_string(),
                w.left.label(),
                w.right.label()
            ));
        }
        line
    }

    /// JSON form (stable member order: severity, code, family, rule,
    /// message, witness).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.push("severity", Json::Str(self.severity.label().to_string()));
        obj.push("code", Json::Str(self.code.to_string()));
        obj.push(
            "family",
            match self.family {
                Some(f) => Json::Str(f.label().to_string()),
                None => Json::Null,
            },
        );
        obj.push("rule", Json::Str(self.rule.clone()));
        obj.push("message", Json::Str(self.message.clone()));
        obj.push(
            "witness",
            match &self.witness {
                Some(w) => {
                    let mut wj = Json::object();
                    wj.push("url", Json::Str(w.url_string()));
                    wj.push("left", Json::Str(w.left.label().to_string()));
                    wj.push("right", Json::Str(w.right.label().to_string()));
                    wj
                }
                None => Json::Null,
            },
        );
        obj
    }
}

/// Deterministic report order: most severe first, then by code, rule,
/// message.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.code.cmp(b.code))
            .then_with(|| a.rule.cmp(&b.rule))
            .then_with(|| a.message.cmp(&b.message))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use filterscope_proxy::Trigger;

    #[test]
    fn severity_orders_and_labels() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Info.label(), "note");
        assert_eq!(Severity::Error.label(), "error");
    }

    #[test]
    fn decision_kind_projects_triggers_away() {
        assert_eq!(DecisionKind::of(Decision::Allow), DecisionKind::Allow);
        assert_eq!(
            DecisionKind::of(Decision::Deny(Trigger::Keyword)),
            DecisionKind::of(Decision::Deny(Trigger::Domain))
        );
        assert_eq!(
            DecisionKind::of(Decision::Redirect(Trigger::RedirectHost)),
            DecisionKind::Redirect
        );
    }

    #[test]
    fn findings_sort_most_severe_first() {
        let f = |severity, code: &'static str, rule: &str| Finding {
            severity,
            code,
            family: None,
            rule: rule.to_string(),
            message: String::new(),
            witness: None,
        };
        let mut v = vec![
            f(Severity::Info, "b-code", "r1"),
            f(Severity::Error, "a-code", "r2"),
            f(Severity::Warning, "a-code", "r1"),
            f(Severity::Warning, "a-code", "r0"),
        ];
        sort_findings(&mut v);
        let order: Vec<_> = v.iter().map(|f| (f.severity, f.rule.as_str())).collect();
        assert_eq!(
            order,
            vec![
                (Severity::Error, "r2"),
                (Severity::Warning, "r0"),
                (Severity::Warning, "r1"),
                (Severity::Info, "r1"),
            ]
        );
    }

    #[test]
    fn render_line_includes_witness() {
        let f = Finding {
            severity: Severity::Error,
            code: "not-equivalent",
            family: Some(RuleFamily::Keywords),
            rule: "keyword \"proxy\"".to_string(),
            message: "only left denies".to_string(),
            witness: Some(Witness {
                url: RequestUrl::http("w.invalid", "/proxy"),
                left: DecisionKind::Deny,
                right: DecisionKind::Allow,
            }),
        };
        let line = f.render_line();
        assert!(line.starts_with("error[not-equivalent] keyword \"proxy\":"));
        assert!(line.contains("witness http://w.invalid/proxy -> left=deny right=allow"));
        let j = f.to_json();
        assert_eq!(
            j.get("witness").and_then(|w| w.get("left")),
            Some(&Json::Str("deny".to_string()))
        );
    }
}
