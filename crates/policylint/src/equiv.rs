//! Witness-backed rule-level equivalence of two policies.
//!
//! Two policies are *behaviourally equivalent* when every request receives
//! the same observable outcome class ([`DecisionKind`]) under both. The
//! checker enumerates, per rule of either policy, a small set of candidate
//! URLs chosen to isolate that rule, then **executes both compiled
//! [`PolicyEngine`]s** on each candidate (via the static-tier hook
//! [`PolicyEngine::decide_url`]). A finding is emitted only when the two
//! engines are *observed* to disagree, and it carries the disagreeing URL
//! as a [`Witness`] — so every `not-equivalent` finding is true by
//! construction, never a static over-approximation.
//!
//! The converse is best-effort, as it must be: candidate synthesis isolates
//! each rule as well as the neutral hosts allow, so an empty report means
//! "no per-rule counterexample found", not a proof of equivalence.

use crate::finding::{sort_findings, DecisionKind, Finding, Severity, Witness};
use filterscope_logformat::RequestUrl;
use filterscope_match::CidrSet;
use filterscope_proxy::{CompiledPolicy, PolicyData, PolicyEngine, RuleFamily};
use std::collections::HashSet;

/// Neutral hosts for keyword candidates: reserved TLDs that no sane policy
/// lists, used in pairs so an accidental collision with one of them (e.g. a
/// policy blocking `.invalid`) does not hide a real difference.
const NEUTRAL_HOSTS: [&str; 2] = ["w.invalid", "x.test"];

/// One rule's candidate URLs, labelled for the finding.
struct Candidates {
    family: RuleFamily,
    rule: String,
    urls: Vec<RequestUrl>,
}

/// Candidate URLs isolating each rule of `policy`. `other_subnets` is the
/// opposing policy's subnet set, used to aim subnet witnesses at addresses
/// the other side does *not* cover (the strongest separating candidate).
fn candidates(policy: &PolicyData, other_subnets: &CidrSet) -> Vec<Candidates> {
    let mut out = Vec::new();

    for k in &policy.keywords {
        if k.is_empty() {
            continue;
        }
        out.push(Candidates {
            family: RuleFamily::Keywords,
            rule: format!("keyword {k:?}"),
            urls: NEUTRAL_HOSTS
                .iter()
                .map(|h| RequestUrl::http(*h, format!("/{k}")))
                .collect(),
        });
    }

    for d in &policy.blocked_domains {
        let n = d.trim_matches('.').to_ascii_lowercase();
        if n.is_empty() {
            continue;
        }
        out.push(Candidates {
            family: RuleFamily::Domains,
            rule: format!("domain {d:?}"),
            urls: vec![
                RequestUrl::http(n.clone(), "/"),
                RequestUrl::http(format!("w.{n}"), "/"),
            ],
        });
    }

    for c in &policy.blocked_subnets {
        let mut urls = Vec::new();
        // Best candidate: an address in this block the other policy does
        // not cover — if the block is only partially replicated, this is
        // the separating address.
        if let Some(gap) = other_subnets.first_uncovered_in(*c) {
            urls.push(RequestUrl::http(gap.to_string(), "/"));
        }
        urls.push(RequestUrl::http(c.network().to_string(), "/"));
        urls.push(RequestUrl::http(c.nth(c.size() - 1).to_string(), "/"));
        out.push(Candidates {
            family: RuleFamily::Subnets,
            rule: format!("subnet {c}"),
            urls,
        });
    }

    for h in &policy.redirect_hosts {
        if h.is_empty() {
            continue;
        }
        out.push(Candidates {
            family: RuleFamily::Redirects,
            rule: format!("redirect host {h:?}"),
            urls: vec![RequestUrl::http(h.clone(), "/")],
        });
    }

    // A page rule is only reachable through a covered query string; try
    // every query the owning policy defines.
    for (host, path) in &policy.custom_pages {
        if host.is_empty() {
            continue;
        }
        let urls: Vec<RequestUrl> = policy
            .custom_queries
            .iter()
            .map(|q| RequestUrl::http(host.clone(), path.clone()).with_query(q.clone()))
            .collect();
        if urls.is_empty() {
            continue; // inert rule: no witness can exist through it
        }
        out.push(Candidates {
            family: RuleFamily::CustomCategory,
            rule: format!("page ({host:?}, {path:?})"),
            urls,
        });
    }

    out
}

/// Check rule-level equivalence of `left` and `right`. Names are used in
/// messages (e.g. `"inferred"` vs `"standard"`).
///
/// Every returned finding has severity [`Severity::Error`], code
/// `not-equivalent`, and a [`Witness`] URL on which the two compiled
/// engines were executed and produced different outcome classes.
pub fn check_equivalence(
    left: &PolicyData,
    right: &PolicyData,
    left_name: &str,
    right_name: &str,
) -> Vec<Finding> {
    // Seed and relay index are irrelevant on the static tiers decide_url
    // exercises; seed 1 keeps construction deterministic.
    let left_engine = PolicyEngine::from_data(left, None, 1);
    let right_engine = PolicyEngine::from_data(right, None, 1);
    probe_pair(
        left,
        right,
        &left_engine,
        &right_engine,
        left_name,
        right_name,
    )
}

/// The hot-swap witness gate: does a loaded [`CompiledPolicy`]'s engine
/// still decide exactly as an engine freshly built from its own embedded
/// source policy?
///
/// This is what stands between a reloaded artifact and the serve loop: a
/// compiled artifact whose DFA/index/CIDR sections disagree with the CPL
/// they claim to encode (a stale recompile, a post-compile edit, a CRC
/// collision) is caught here with a concrete counterexample URL, and the
/// swap is refused.
pub fn verify_artifact(compiled: &CompiledPolicy) -> Vec<Finding> {
    let reference = PolicyEngine::from_data(&compiled.source, None, 1);
    probe_pair(
        &compiled.source,
        &compiled.source,
        &reference,
        &compiled.engine,
        "source policy",
        "compiled artifact",
    )
}

/// Probe two *prebuilt* engines over per-rule candidates synthesized from
/// both source policies; see [`check_equivalence`] for the contract.
fn probe_pair(
    left: &PolicyData,
    right: &PolicyData,
    left_engine: &PolicyEngine,
    right_engine: &PolicyEngine,
    left_name: &str,
    right_name: &str,
) -> Vec<Finding> {
    let left_subnets = CidrSet::from_blocks(left.blocked_subnets.iter().copied());
    let right_subnets = CidrSet::from_blocks(right.blocked_subnets.iter().copied());

    let mut out = Vec::new();
    let mut seen_rules: HashSet<String> = HashSet::new();
    let mut seen_urls: HashSet<String> = HashSet::new();

    let mut probe = |cands: Vec<Candidates>, seen_rules: &mut HashSet<String>| {
        for c in cands {
            if !seen_rules.insert(c.rule.clone()) {
                continue; // duplicate rule, or same rule present in both policies
            }
            for url in c.urls {
                let l = DecisionKind::of(left_engine.decide_url(&url));
                let r = DecisionKind::of(right_engine.decide_url(&url));
                if l == r {
                    continue;
                }
                let witness = Witness {
                    url: url.clone(),
                    left: l,
                    right: r,
                };
                if seen_urls.insert(witness.url_string()) {
                    out.push(Finding {
                        severity: Severity::Error,
                        code: "not-equivalent",
                        family: Some(c.family),
                        rule: c.rule.clone(),
                        message: format!(
                            "{left_name} {} but {right_name} {}",
                            describe(l),
                            describe(r)
                        ),
                        witness: Some(witness),
                    });
                }
                break; // one witness per rule
            }
        }
    };

    probe(candidates(left, &right_subnets), &mut seen_rules);
    probe(candidates(right, &left_subnets), &mut seen_rules);

    sort_findings(&mut out);
    out
}

fn describe(kind: DecisionKind) -> &'static str {
    match kind {
        DecisionKind::Allow => "allows it",
        DecisionKind::Deny => "denies it",
        DecisionKind::Redirect => "redirects it",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use filterscope_core::Ipv4Cidr;

    #[test]
    fn a_policy_is_equivalent_to_itself() {
        let p = PolicyData::standard();
        assert!(check_equivalence(&p, &p, "a", "b").is_empty());
    }

    #[test]
    fn missing_keyword_yields_validated_witness() {
        let full = PolicyData::standard();
        let ablated = PolicyData::standard().without(RuleFamily::Keywords);
        let findings = check_equivalence(&full, &ablated, "full", "ablated");
        assert!(!findings.is_empty());
        for f in &findings {
            assert_eq!(f.code, "not-equivalent");
            let w = f.witness.as_ref().expect("witness required");
            // Re-execute: the witness must actually separate the engines.
            let l = PolicyEngine::from_data(&full, None, 1).decide_url(&w.url);
            let r = PolicyEngine::from_data(&ablated, None, 1).decide_url(&w.url);
            assert_eq!(DecisionKind::of(l), w.left);
            assert_eq!(DecisionKind::of(r), w.right);
            assert_ne!(w.left, w.right);
        }
        // All five keywords separate the two policies.
        let kw: Vec<&str> = findings
            .iter()
            .filter(|f| f.family == Some(RuleFamily::Keywords))
            .map(|f| f.rule.as_str())
            .collect();
        assert_eq!(kw.len(), 5, "{kw:?}");
    }

    #[test]
    fn narrowed_subnet_found_through_gap_address() {
        let wide = {
            let mut p = PolicyData::empty();
            p.blocked_subnets = vec![Ipv4Cidr::parse("84.229.0.0/16").unwrap()];
            p
        };
        let narrow = {
            let mut p = PolicyData::empty();
            p.blocked_subnets = vec![Ipv4Cidr::parse("84.229.0.0/17").unwrap()];
            p
        };
        let findings = check_equivalence(&wide, &narrow, "wide", "narrow");
        assert_eq!(findings.len(), 1);
        let w = findings[0].witness.as_ref().unwrap();
        // The witness lands in the uncovered upper half.
        assert!(w.url.host.starts_with("84.229.128."));
        assert_eq!(w.left, DecisionKind::Deny);
        assert_eq!(w.right, DecisionKind::Allow);
    }

    #[test]
    fn outcome_class_differences_are_reported_both_ways() {
        // Same host: redirect on the left, domain-deny on the right.
        let mut left = PolicyData::empty();
        left.redirect_hosts = vec!["upload.example.com".into()];
        let mut right = PolicyData::empty();
        right.blocked_domains = vec!["example.com".into()];
        let findings = check_equivalence(&left, &right, "l", "r");
        assert!(findings.iter().any(|f| f.witness.as_ref().unwrap().left
            == DecisionKind::Redirect
            && f.witness.as_ref().unwrap().right == DecisionKind::Deny));
        assert!(findings
            .iter()
            .any(|f| f.witness.as_ref().unwrap().left == DecisionKind::Allow
                && f.witness.as_ref().unwrap().right == DecisionKind::Deny));
    }

    #[test]
    fn faithful_artifact_passes_the_witness_gate() {
        let policy = PolicyData::standard();
        let bytes = filterscope_proxy::artifact::compile(&policy, 1, None);
        let compiled = filterscope_proxy::artifact::load(&bytes, None).unwrap();
        assert!(verify_artifact(&compiled).is_empty());
    }

    #[test]
    fn artifact_disagreeing_with_claimed_source_is_vetoed_with_witness() {
        // Simulate a stale recompile: the compiled sections encode an
        // ablated policy while the embedded CPL claims the full one.
        let ablated = PolicyData::standard().without(RuleFamily::Keywords);
        let bytes = filterscope_proxy::artifact::compile(&ablated, 1, None);
        let mut compiled = filterscope_proxy::artifact::load(&bytes, None).unwrap();
        compiled.source = PolicyData::standard();
        let findings = verify_artifact(&compiled);
        assert!(!findings.is_empty());
        for f in &findings {
            assert_eq!(f.code, "not-equivalent");
            let w = f.witness.as_ref().expect("witness required");
            assert_ne!(w.left, w.right);
            // The counterexample separates the engines when re-executed.
            let reference = PolicyEngine::from_data(&compiled.source, None, 1);
            assert_ne!(
                DecisionKind::of(reference.decide_url(&w.url)),
                DecisionKind::of(compiled.engine.decide_url(&w.url))
            );
        }
    }

    #[test]
    fn trigger_only_differences_are_equivalent() {
        // Left denies api.example.net by domain; right denies it by keyword.
        let mut left = PolicyData::empty();
        left.blocked_domains = vec!["example.net".into()];
        let mut right = PolicyData::empty();
        right.keywords = vec!["example.net".into()];
        let findings = check_equivalence(&left, &right, "l", "r");
        // The keyword candidate "w.invalid/example.net" is denied by the
        // keyword policy only — a real difference. But the domain candidates
        // (example.net, w.example.net) are denied by both. Only genuine
        // separations survive.
        for f in &findings {
            let w = f.witness.as_ref().unwrap();
            assert_ne!(w.left, w.right, "{f:?}");
        }
    }
}
