//! The `Tor_http` / `Tor_onion` split (§7.1).
//!
//! `Tor_http` is HTTP directory signaling: requests for `/tor/...` resources
//! (server descriptors, network status, keys) against a relay's dir port.
//! Everything else to a relay endpoint is `Tor_onion` (circuit traffic).

/// Kind of Tor-related traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TorTrafficKind {
    /// Directory signaling over HTTP (`Tor_http`).
    Http,
    /// Circuit building / relaying (`Tor_onion`).
    Onion,
}

/// Directory-protocol URL prefixes (dir-spec v2): `/tor/server/...`,
/// `/tor/status/...`, `/tor/keys/...`, `/tor/running-routers`, …
pub fn is_dir_path(path: &str) -> bool {
    path.starts_with("/tor/")
}

/// Classify a request already known to target a relay endpoint.
pub fn classify(path: &str) -> TorTrafficKind {
    if is_dir_path(path) {
        TorTrafficKind::Http
    } else {
        TorTrafficKind::Onion
    }
}

/// Well-known directory resource paths, used by the synthetic workload.
pub const DIR_PATHS: [&str; 5] = [
    "/tor/server/authority.z",
    "/tor/server/all.z",
    "/tor/status/all.z",
    "/tor/keys/all.z",
    "/tor/running-routers",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_paths_are_http() {
        for p in DIR_PATHS {
            assert_eq!(classify(p), TorTrafficKind::Http, "{p}");
        }
        assert_eq!(classify("/tor/keys"), TorTrafficKind::Http);
    }

    #[test]
    fn non_dir_paths_are_onion() {
        assert_eq!(classify("/"), TorTrafficKind::Onion);
        assert_eq!(classify(""), TorTrafficKind::Onion);
        assert_eq!(classify("/torrent/x"), TorTrafficKind::Onion);
        assert_eq!(classify("/torx"), TorTrafficKind::Onion);
    }
}
