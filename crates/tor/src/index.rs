//! The `<relay IP, port, date>` triplet index.
//!
//! The §7.1 join: a log row is Tor traffic iff its destination `(ip, port)`
//! matches a relay listed in a consensus valid on the row's date.

use crate::consensus::ConsensusDoc;
use filterscope_core::Date;
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Immutable triplet index over one or more consensus documents.
#[derive(Debug, Default)]
pub struct RelayIndex {
    /// date → set of (addr, port).
    by_date: HashMap<Date, HashSet<(Ipv4Addr, u16)>>,
    /// All relay addresses ever listed, for date-insensitive queries.
    all_addrs: HashSet<Ipv4Addr>,
}

impl RelayIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from consensus documents (one per valid date; multiple docs for
    /// the same date merge).
    pub fn from_consensuses<'a>(docs: impl IntoIterator<Item = &'a ConsensusDoc>) -> Self {
        let mut ix = Self::new();
        for doc in docs {
            ix.add(doc);
        }
        ix
    }

    /// Merge one consensus into the index.
    pub fn add(&mut self, doc: &ConsensusDoc) {
        let entry = self.by_date.entry(doc.valid_date).or_default();
        for r in &doc.relays {
            for port in r.ports() {
                entry.insert((r.addr, port));
            }
            self.all_addrs.insert(r.addr);
        }
    }

    /// Is `(addr, port)` a listed relay endpoint on `date`?
    pub fn contains(&self, addr: Ipv4Addr, port: u16, date: Date) -> bool {
        self.by_date
            .get(&date)
            .is_some_and(|s| s.contains(&(addr, port)))
    }

    /// Was `addr` ever listed as a relay (any date, any port)?
    pub fn is_relay_addr(&self, addr: Ipv4Addr) -> bool {
        self.all_addrs.contains(&addr)
    }

    /// Number of distinct relay addresses across all dates.
    pub fn relay_addr_count(&self) -> usize {
        self.all_addrs.len()
    }

    /// Number of dates covered.
    pub fn date_count(&self) -> usize {
        self.by_date.len()
    }

    /// Distinct endpoints listed on `date`.
    pub fn endpoints_on(&self, date: Date) -> usize {
        self.by_date.get(&date).map_or(0, |s| s.len())
    }

    /// Churn between two dates: `(appeared, disappeared)` endpoint counts
    /// from `from` to `to`. Relay churn bounds how much of Fig. 9's
    /// blocked/allowed alternation could be consensus turnover rather than
    /// policy behaviour.
    pub fn churn(&self, from: Date, to: Date) -> (usize, usize) {
        let empty = HashSet::new();
        let a = self.by_date.get(&from).unwrap_or(&empty);
        let b = self.by_date.get(&to).unwrap_or(&empty);
        let appeared = b.difference(a).count();
        let disappeared = a.difference(b).count();
        (appeared, disappeared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consensus::{RelayDescriptor, RelayFlags};

    fn doc(date: Date, relays: &[(&str, [u8; 4], u16, u16)]) -> ConsensusDoc {
        ConsensusDoc {
            valid_date: date,
            relays: relays
                .iter()
                .map(|(n, ip, orp, dirp)| RelayDescriptor {
                    nickname: n.to_string(),
                    addr: Ipv4Addr::from(*ip),
                    or_port: *orp,
                    dir_port: *dirp,
                    flags: RelayFlags::default(),
                })
                .collect(),
        }
    }

    #[test]
    fn triplet_join_respects_dates() {
        let d1 = Date::new(2011, 8, 1).unwrap();
        let d2 = Date::new(2011, 8, 2).unwrap();
        let ix = RelayIndex::from_consensuses([
            &doc(d1, &[("a", [1, 2, 3, 4], 9001, 9030)]),
            &doc(d2, &[("b", [5, 6, 7, 8], 443, 0)]),
        ]);
        let a = Ipv4Addr::new(1, 2, 3, 4);
        let b = Ipv4Addr::new(5, 6, 7, 8);
        assert!(ix.contains(a, 9001, d1));
        assert!(ix.contains(a, 9030, d1)); // dir port too
        assert!(!ix.contains(a, 9001, d2)); // not listed that day
        assert!(ix.contains(b, 443, d2));
        assert!(!ix.contains(b, 9001, d2)); // wrong port
        assert!(ix.is_relay_addr(a));
        assert!(ix.is_relay_addr(b));
        assert!(!ix.is_relay_addr(Ipv4Addr::new(9, 9, 9, 9)));
    }

    #[test]
    fn same_date_docs_merge() {
        let d = Date::new(2011, 8, 3).unwrap();
        let mut ix = RelayIndex::new();
        ix.add(&doc(d, &[("a", [1, 1, 1, 1], 9001, 0)]));
        ix.add(&doc(d, &[("b", [2, 2, 2, 2], 9001, 0)]));
        assert_eq!(ix.date_count(), 1);
        assert_eq!(ix.endpoints_on(d), 2);
        assert_eq!(ix.relay_addr_count(), 2);
    }

    #[test]
    fn churn_between_days() {
        let d1 = Date::new(2011, 8, 1).unwrap();
        let d2 = Date::new(2011, 8, 2).unwrap();
        let ix = RelayIndex::from_consensuses([
            &doc(
                d1,
                &[("a", [1, 1, 1, 1], 9001, 0), ("b", [2, 2, 2, 2], 9001, 0)],
            ),
            &doc(
                d2,
                &[("b", [2, 2, 2, 2], 9001, 0), ("c", [3, 3, 3, 3], 9001, 0)],
            ),
        ]);
        let (appeared, disappeared) = ix.churn(d1, d2);
        assert_eq!((appeared, disappeared), (1, 1));
        // Against a missing date everything counts as change.
        let d9 = Date::new(2011, 8, 9).unwrap();
        assert_eq!(ix.churn(d1, d9), (0, 2));
        assert_eq!(ix.churn(d9, d2), (2, 0));
    }

    #[test]
    fn empty_index() {
        let ix = RelayIndex::new();
        assert!(!ix.contains(
            Ipv4Addr::new(1, 2, 3, 4),
            9001,
            Date::new(2011, 8, 1).unwrap()
        ));
        assert_eq!(ix.relay_addr_count(), 0);
    }
}
