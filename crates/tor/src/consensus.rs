//! Relay descriptors and the network-status document format.
//!
//! The document format is a simplified network status: one `r` line per
//! relay (`r <nickname> <ip> <or-port> <dir-port>`), an optional `s` line of
//! flags, bracketed by `valid <date>` and terminated by `end`. It carries
//! exactly the information the triplet join needs, round-trips through text,
//! and tolerates unknown lines (forward compatibility, as the real dir spec
//! does).

use filterscope_core::{Date, Error, Result};
use std::fmt;
use std::net::Ipv4Addr;

/// Relay flags (subset relevant to reachability analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RelayFlags {
    /// Listed as usable by the authorities.
    pub running: bool,
    /// Directory mirror.
    pub v2dir: bool,
    /// Guard-eligible.
    pub guard: bool,
    /// Exit-eligible.
    pub exit: bool,
}

impl RelayFlags {
    fn to_line(self) -> String {
        let mut parts = Vec::new();
        if self.running {
            parts.push("Running");
        }
        if self.v2dir {
            parts.push("V2Dir");
        }
        if self.guard {
            parts.push("Guard");
        }
        if self.exit {
            parts.push("Exit");
        }
        parts.join(" ")
    }

    fn parse_line(s: &str) -> Self {
        let mut f = RelayFlags::default();
        for tok in s.split_ascii_whitespace() {
            match tok {
                "Running" => f.running = true,
                "V2Dir" => f.v2dir = true,
                "Guard" => f.guard = true,
                "Exit" => f.exit = true,
                _ => {} // unknown flags tolerated
            }
        }
        f
    }
}

/// One relay in a consensus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelayDescriptor {
    /// Human-readable nickname.
    pub nickname: String,
    /// OR address.
    pub addr: Ipv4Addr,
    /// Onion-routing port (typically 9001 or 443).
    pub or_port: u16,
    /// Directory port (typically 9030 or 80; 0 when absent).
    pub dir_port: u16,
    /// Flags.
    pub flags: RelayFlags,
}

impl RelayDescriptor {
    /// Ports on which this relay accepts connections (OR plus dir if any).
    pub fn ports(&self) -> impl Iterator<Item = u16> + '_ {
        std::iter::once(self.or_port).chain((self.dir_port != 0).then_some(self.dir_port))
    }
}

/// A consensus: the relays valid on a given date.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsensusDoc {
    /// The date this consensus covers.
    pub valid_date: Date,
    /// The relays.
    pub relays: Vec<RelayDescriptor>,
}

impl ConsensusDoc {
    /// Serialize to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("valid {}\n", self.valid_date));
        for r in &self.relays {
            out.push_str(&format!(
                "r {} {} {} {}\n",
                r.nickname, r.addr, r.or_port, r.dir_port
            ));
            let flags = r.flags.to_line();
            if !flags.is_empty() {
                out.push_str(&format!("s {flags}\n"));
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parse the text format. Unknown line types are skipped; a missing
    /// `valid` header or a malformed `r` line is an error.
    pub fn parse(text: &str) -> Result<Self> {
        let mut valid_date: Option<Date> = None;
        let mut relays: Vec<RelayDescriptor> = Vec::new();
        for (no, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line == "end" {
                continue;
            }
            let mal = |reason: &str| Error::MalformedRecord {
                line: (no + 1) as u64,
                reason: reason.to_string(),
            };
            if let Some(rest) = line.strip_prefix("valid ") {
                valid_date = Some(Date::parse(rest.trim())?);
            } else if let Some(rest) = line.strip_prefix("r ") {
                let parts: Vec<&str> = rest.split_ascii_whitespace().collect();
                if parts.len() != 4 {
                    return Err(mal("r line needs: nickname ip or-port dir-port"));
                }
                let addr: Ipv4Addr = parts[1].parse().map_err(|_| mal("bad relay address"))?;
                let or_port: u16 = parts[2].parse().map_err(|_| mal("bad or-port"))?;
                let dir_port: u16 = parts[3].parse().map_err(|_| mal("bad dir-port"))?;
                relays.push(RelayDescriptor {
                    nickname: parts[0].to_string(),
                    addr,
                    or_port,
                    dir_port,
                    flags: RelayFlags::default(),
                });
            } else if let Some(rest) = line.strip_prefix("s ") {
                if let Some(last) = relays.last_mut() {
                    last.flags = RelayFlags::parse_line(rest);
                }
                // an `s` line before any `r` line is tolerated and ignored
            }
            // other line types tolerated for forward compatibility
        }
        Ok(ConsensusDoc {
            valid_date: valid_date.ok_or(Error::MalformedRecord {
                line: 0,
                reason: "missing `valid <date>` header".into(),
            })?,
            relays,
        })
    }
}

impl fmt::Display for ConsensusDoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConsensusDoc {
        ConsensusDoc {
            valid_date: Date::new(2011, 8, 3).unwrap(),
            relays: vec![
                RelayDescriptor {
                    nickname: "moria1".into(),
                    addr: Ipv4Addr::new(128, 31, 0, 34),
                    or_port: 9001,
                    dir_port: 9030,
                    flags: RelayFlags {
                        running: true,
                        v2dir: true,
                        guard: true,
                        exit: false,
                    },
                },
                RelayDescriptor {
                    nickname: "exitnode7".into(),
                    addr: Ipv4Addr::new(94, 228, 129, 7),
                    or_port: 443,
                    dir_port: 0,
                    flags: RelayFlags {
                        running: true,
                        exit: true,
                        ..Default::default()
                    },
                },
            ],
        }
    }

    #[test]
    fn text_roundtrip() {
        let doc = sample();
        let text = doc.to_text();
        let back = ConsensusDoc::parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn ports_iterator() {
        let doc = sample();
        let p0: Vec<u16> = doc.relays[0].ports().collect();
        assert_eq!(p0, vec![9001, 9030]);
        let p1: Vec<u16> = doc.relays[1].ports().collect();
        assert_eq!(p1, vec![443]);
    }

    #[test]
    fn parse_tolerates_unknown_lines() {
        let text =
            "valid 2011-08-01\nx something unknown\nr n1 1.2.3.4 9001 0\nw Bandwidth=200\nend\n";
        let doc = ConsensusDoc::parse(text).unwrap();
        assert_eq!(doc.relays.len(), 1);
        assert_eq!(doc.relays[0].or_port, 9001);
    }

    #[test]
    fn parse_rejects_missing_header_and_bad_r_lines() {
        assert!(ConsensusDoc::parse("r n1 1.2.3.4 9001 0\nend\n").is_err());
        assert!(ConsensusDoc::parse("valid 2011-08-01\nr n1 1.2.3.4 9001\n").is_err());
        assert!(ConsensusDoc::parse("valid 2011-08-01\nr n1 bad-ip 9001 0\n").is_err());
    }

    #[test]
    fn unknown_flags_are_skipped() {
        let text = "valid 2011-08-01\nr n1 1.2.3.4 9001 0\ns Running Stable HSDir\nend\n";
        let doc = ConsensusDoc::parse(text).unwrap();
        assert!(doc.relays[0].flags.running);
        assert!(!doc.relays[0].flags.guard);
    }
}
