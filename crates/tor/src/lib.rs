//! # filterscope-tor
//!
//! A Tor network-consensus substrate for the §7.1 analysis.
//!
//! The paper identifies Tor traffic by extracting `<relay IP, port, date>`
//! triplets from the Tor Metrics server descriptors / network-status files
//! and joining them against the logs, splitting traffic into `Tor_http`
//! (directory signaling: HTTP requests for `/tor/...` resources) and
//! `Tor_onion` (circuit building / relaying). Those archives are an external
//! dependency, so this crate provides:
//!
//! * [`RelayDescriptor`] and a simplified network-status *document* format
//!   with a parser and serializer ([`consensus`]) modelled on the v2 dir
//!   spec's `r`/`s` lines;
//! * [`RelayIndex`] — the `<IP, port, date>` triplet index used for the join;
//! * [`signaling::is_dir_path`] — the `Tor_http` classifier;
//! * [`synthesize_consensus`] — a deterministic synthetic consensus for the
//!   simulation (the real 2011 archives are not shipped with this repo).

#![forbid(unsafe_code)]

pub mod consensus;
pub mod index;
pub mod signaling;
pub mod synth;

pub use consensus::{ConsensusDoc, RelayDescriptor, RelayFlags};
pub use index::RelayIndex;
pub use synth::{synthesize_consensus, SynthConsensusConfig};
