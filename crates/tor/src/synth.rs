//! Deterministic synthetic consensus generation.
//!
//! The paper joined the logs against the real Tor Metrics archives for
//! July/August 2011 (≈1,100 relays matched: "95K requests to 1,111 different
//! Tor relays"). Those archives are an external data dependency, so the
//! simulation generates a consensus series of comparable shape: a stable
//! relay population with a small daily churn, OR ports drawn from the
//! real-world distribution (9001 dominant, then 443/9090/8080), and dir
//! ports on a subset.
//!
//! Generation is a pure function of the config — no RNG state leaks in, so
//! the same config always yields byte-identical consensuses (a requirement
//! for reproducible experiments).

use crate::consensus::{ConsensusDoc, RelayDescriptor, RelayFlags};
use filterscope_core::Date;
use std::net::Ipv4Addr;

/// Configuration for [`synthesize_consensus`].
#[derive(Debug, Clone)]
pub struct SynthConsensusConfig {
    /// Number of relays in the stable population.
    pub relay_count: usize,
    /// Fraction (per mille) of the population churned per day.
    pub daily_churn_per_mille: u32,
    /// Seed mixed into the address generator.
    pub seed: u64,
}

impl Default for SynthConsensusConfig {
    fn default() -> Self {
        SynthConsensusConfig {
            relay_count: 1111, // the paper's matched-relay count
            daily_churn_per_mille: 20,
            seed: 0x7031_2011,
        }
    }
}

/// SplitMix64: tiny, deterministic, well-distributed.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The i-th relay of the stable population.
fn relay(cfg: &SynthConsensusConfig, i: usize) -> RelayDescriptor {
    let h = splitmix(cfg.seed ^ (i as u64).wrapping_mul(0x5851_F42D_4C95_7F2D));
    // Public-ish space, avoiding the simulation's own registered subnets.
    let addr = Ipv4Addr::new(
        100 + ((h >> 8) % 80) as u8, // 100..180
        (h >> 16) as u8,
        (h >> 24) as u8,
        1 + ((h >> 32) % 254) as u8,
    );
    let or_port = match h % 100 {
        0..=59 => 9001,
        60..=79 => 443,
        80..=89 => 9090,
        _ => 8080,
    };
    // ~40% of relays mirror the directory.
    let dir_port = match h % 10 {
        0..=2 => 9030,
        3 => 80,
        _ => 0,
    };
    RelayDescriptor {
        nickname: format!("syn{i:04}"),
        addr,
        or_port,
        dir_port,
        flags: RelayFlags {
            running: true,
            v2dir: dir_port != 0,
            guard: h.is_multiple_of(7),
            exit: h.is_multiple_of(5),
        },
    }
}

/// Generate the consensus valid on `date`.
///
/// Churn model: each relay `i` is absent on `date` iff
/// `hash(seed, i, day) < churn_threshold`, so roughly `daily_churn_per_mille`
/// ‰ of relays are missing on any given day, with the absent set varying
/// smoothly across days.
pub fn synthesize_consensus(cfg: &SynthConsensusConfig, date: Date) -> ConsensusDoc {
    let day = date.days_from_civil() as u64;
    let mut relays = Vec::with_capacity(cfg.relay_count);
    for i in 0..cfg.relay_count {
        let churn =
            splitmix(cfg.seed ^ 0xC0FF_EE00 ^ (i as u64) ^ day.wrapping_mul(0x1234_5678_9ABC));
        if churn % 1000 < cfg.daily_churn_per_mille as u64 {
            continue;
        }
        relays.push(relay(cfg, i));
    }
    ConsensusDoc {
        valid_date: date,
        relays,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::RelayIndex;

    fn d(day: u8) -> Date {
        Date::new(2011, 8, day).unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConsensusConfig::default();
        let a = synthesize_consensus(&cfg, d(3));
        let b = synthesize_consensus(&cfg, d(3));
        assert_eq!(a, b);
    }

    #[test]
    fn population_size_and_churn() {
        let cfg = SynthConsensusConfig::default();
        let doc = synthesize_consensus(&cfg, d(1));
        // ~2% churn of 1111 relays.
        assert!(
            doc.relays.len() > 1000 && doc.relays.len() < 1111,
            "{}",
            doc.relays.len()
        );
        let doc2 = synthesize_consensus(&cfg, d(2));
        assert_ne!(doc, doc2, "different days must differ (churn)");
    }

    #[test]
    fn or_port_distribution_is_9001_heavy() {
        let cfg = SynthConsensusConfig::default();
        let doc = synthesize_consensus(&cfg, d(3));
        let n9001 = doc.relays.iter().filter(|r| r.or_port == 9001).count();
        assert!(
            n9001 * 2 > doc.relays.len(),
            "9001 should be the majority OR port"
        );
    }

    #[test]
    fn consensus_roundtrips_through_text() {
        let cfg = SynthConsensusConfig {
            relay_count: 50,
            ..Default::default()
        };
        let doc = synthesize_consensus(&cfg, d(4));
        let back = crate::consensus::ConsensusDoc::parse(&doc.to_text()).unwrap();
        // Flags round-trip only for the subset our format serializes, which
        // is exactly the subset we generate.
        assert_eq!(back, doc);
    }

    #[test]
    fn index_over_period_answers_joins() {
        let cfg = SynthConsensusConfig::default();
        let docs: Vec<_> = (1..=6)
            .map(|day| synthesize_consensus(&cfg, d(day)))
            .collect();
        let ix = RelayIndex::from_consensuses(docs.iter());
        assert_eq!(ix.date_count(), 6);
        // A relay present on day 3 joins on day 3.
        let r = &docs[2].relays[0];
        assert!(ix.contains(r.addr, r.or_port, d(3)));
    }
}
