//! Reversed-label trie for domain-suffix blacklists.
//!
//! The paper recovers a list of 105 domains "for which no request is allowed"
//! (§5.4, Table 8) and shows that the `.il` ccTLD is blocked wholesale. A
//! domain blacklist therefore needs *registrable-suffix* semantics:
//! `facebook.com` must match `www.facebook.com` but not `notfacebook.com`,
//! and the entry `.il` (or equivalently `il`) must match every Israeli host.
//!
//! Labels are inserted in reverse order (`com` → `facebook`) so a lookup
//! walks the host's labels right-to-left and stops at the first node marked
//! terminal — one pass, no allocation.

use std::collections::HashMap;

#[derive(Debug, Default)]
struct Node {
    children: HashMap<Box<str>, Node>,
    /// Index of the blacklist entry terminating here, if any.
    terminal: Option<u32>,
}

/// A set of domain suffixes with right-to-left label matching.
#[derive(Debug, Default)]
pub struct DomainTrie {
    root: Node,
    len: usize,
}

impl DomainTrie {
    /// Empty trie.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of entries. Leading dots are ignored
    /// (`".il"` and `"il"` are the same entry); entries are lowercased.
    pub fn from_entries<'a>(entries: impl IntoIterator<Item = &'a str>) -> Self {
        let mut t = Self::new();
        for e in entries {
            t.insert(e);
        }
        t
    }

    /// Number of entries inserted (duplicates counted once).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the trie empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a suffix entry; returns the entry index it was assigned, or the
    /// existing index if the exact entry was already present.
    pub fn insert(&mut self, entry: &str) -> u32 {
        let entry = entry.trim_start_matches('.');
        let mut node = &mut self.root;
        for label in entry.rsplit('.') {
            let label = label.to_ascii_lowercase();
            node = node.children.entry(label.into_boxed_str()).or_default();
        }
        match node.terminal {
            Some(ix) => ix,
            None => {
                let ix = self.len as u32;
                node.terminal = Some(ix);
                self.len += 1;
                ix
            }
        }
    }

    /// If `host` is covered by an entry, return that entry's index.
    ///
    /// The *shortest* covering suffix wins (matching the outermost blacklist
    /// entry), e.g. with entries `il` and `co.il`, host `panet.co.il` reports
    /// `il`. ASCII case is ignored; a trailing dot on the host is tolerated.
    pub fn lookup(&self, host: &str) -> Option<u32> {
        let host = host.strip_suffix('.').unwrap_or(host);
        if host.is_empty() {
            return None;
        }
        let mut node = &self.root;
        for label in host.rsplit('.') {
            // Allocation-free lowercase probe: fast path for already-lower
            // labels, fallback buffer otherwise.
            let child = if label.bytes().any(|b| b.is_ascii_uppercase()) {
                let lower = label.to_ascii_lowercase();
                node.children.get(lower.as_str())
            } else {
                node.children.get(label)
            };
            match child {
                Some(n) => {
                    if let Some(ix) = n.terminal {
                        return Some(ix);
                    }
                    node = n;
                }
                None => return None,
            }
        }
        None
    }

    /// If `host` is covered by an entry, return the index of the *longest*
    /// (most specific) covering entry.
    ///
    /// Complements [`Self::lookup`]: blacklists want the outermost entry,
    /// category oracles want the most specific one (`mail.yahoo.com` over
    /// `yahoo.com`).
    pub fn lookup_longest(&self, host: &str) -> Option<u32> {
        let host = host.strip_suffix('.').unwrap_or(host);
        if host.is_empty() {
            return None;
        }
        let mut node = &self.root;
        let mut best = None;
        for label in host.rsplit('.') {
            let child = if label.bytes().any(|b| b.is_ascii_uppercase()) {
                let lower = label.to_ascii_lowercase();
                node.children.get(lower.as_str())
            } else {
                node.children.get(label)
            };
            match child {
                Some(n) => {
                    if let Some(ix) = n.terminal {
                        best = Some(ix);
                    }
                    node = n;
                }
                None => break,
            }
        }
        best
    }

    /// Does any entry cover `host`?
    pub fn matches(&self, host: &str) -> bool {
        self.lookup(host).is_some()
    }

    /// If a *strictly shorter* entry covers the suffix `entry`, return its
    /// index.
    ///
    /// This is the suffix-subsumption query behind the policy linter: with
    /// entries `il` and `co.il`, the entry `co.il` can never be the deciding
    /// rule (every host it covers is already covered by `il`), so
    /// `shadowing_entry("co.il")` reports the index of `il`. An entry is
    /// never reported as shadowing itself, and exact duplicates collapse at
    /// insert time, so the returned entry is always a proper suffix.
    pub fn shadowing_entry(&self, entry: &str) -> Option<u32> {
        let entry = entry.trim_start_matches('.');
        if entry.is_empty() {
            return None;
        }
        let mut node = &self.root;
        let mut labels = entry.rsplit('.').peekable();
        while let Some(label) = labels.next() {
            let lower = label.to_ascii_lowercase();
            node = node.children.get(lower.as_str())?;
            // A terminal strictly above the entry's own node shadows it.
            if labels.peek().is_some() {
                if let Some(ix) = node.terminal {
                    return Some(ix);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_subdomain_match() {
        let t = DomainTrie::from_entries(["facebook.com", "metacafe.com"]);
        assert!(t.matches("facebook.com"));
        assert!(t.matches("www.facebook.com"));
        assert!(t.matches("ar-ar.facebook.com"));
        assert!(!t.matches("notfacebook.com"));
        assert!(!t.matches("facebook.com.evil.net"));
        assert!(!t.matches("com"));
    }

    #[test]
    fn tld_entry_blocks_cctld() {
        let t = DomainTrie::from_entries([".il"]);
        assert!(t.matches("panet.co.il"));
        assert!(t.matches("walla.co.il"));
        assert!(t.matches("il"));
        assert!(!t.matches("il.example.com"));
    }

    #[test]
    fn shortest_suffix_wins() {
        let mut t = DomainTrie::new();
        let il = t.insert("il");
        let _coil = t.insert("co.il");
        assert_eq!(t.lookup("panet.co.il"), Some(il));
    }

    #[test]
    fn lookup_longest_prefers_most_specific() {
        let mut t = DomainTrie::new();
        let il = t.insert("il");
        let coil = t.insert("co.il");
        assert_eq!(t.lookup_longest("panet.co.il"), Some(coil));
        assert_eq!(t.lookup_longest("idf.il"), Some(il));
        assert_eq!(t.lookup_longest("example.com"), None);
        assert_eq!(t.lookup_longest(""), None);
        // Exact entry is its own longest match.
        assert_eq!(t.lookup_longest("co.il"), Some(coil));
    }

    #[test]
    fn shadowing_entry_reports_proper_suffixes_only() {
        let mut t = DomainTrie::new();
        let il = t.insert("il");
        let _coil = t.insert("co.il");
        let _panet = t.insert("panet.co.il");
        let _com = t.insert("metacafe.com");
        // `co.il` is shadowed by `il`; `panet.co.il` by the shortest cover.
        assert_eq!(t.shadowing_entry("co.il"), Some(il));
        assert_eq!(t.shadowing_entry("panet.co.il"), Some(il));
        // Shortest entries shadow themselves never.
        assert_eq!(t.shadowing_entry("il"), None);
        assert_eq!(t.shadowing_entry("metacafe.com"), None);
        // Entries not in the trie report their shortest covering suffix.
        assert_eq!(t.shadowing_entry("x.co.il"), Some(il));
        assert_eq!(t.shadowing_entry("example.org"), None);
        assert_eq!(t.shadowing_entry(""), None);
        assert_eq!(t.shadowing_entry(".CO.IL"), Some(il));
    }

    #[test]
    fn case_and_trailing_dot_insensitive() {
        let t = DomainTrie::from_entries(["Skype.COM"]);
        assert!(t.matches("download.skype.com"));
        assert!(t.matches("SKYPE.com."));
    }

    #[test]
    fn duplicate_insert_reuses_index() {
        let mut t = DomainTrie::new();
        let a = t.insert("badoo.com");
        let b = t.insert(".badoo.com");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_trie_and_empty_host() {
        let t = DomainTrie::new();
        assert!(t.is_empty());
        assert!(!t.matches("anything.com"));
        let t = DomainTrie::from_entries(["x.com"]);
        assert!(!t.matches(""));
    }

    #[test]
    fn agrees_with_naive_reference() {
        let entries = ["facebook.com", ".il", "skype.com", "jumblo.com"];
        let t = DomainTrie::from_entries(entries);
        for host in [
            "facebook.com",
            "www.facebook.com",
            "il",
            "x.co.il",
            "skype.com.fake.org",
            "jumblo.com",
            "example.org",
            "IL",
        ] {
            assert_eq!(
                t.matches(host),
                crate::naive::domain_matches(&entries, host),
                "host {host:?}"
            );
        }
    }
}
