//! Reference implementations used for differential testing and ablation.
//!
//! These are intentionally the simplest correct implementations of the
//! operations the optimized engines in this crate provide. Property tests
//! assert equivalence; the ablation benches in `filterscope-bench` quantify
//! how much the optimized engines buy.

use filterscope_core::Ipv4Cidr;
use std::net::Ipv4Addr;

/// All `(pattern index, start offset)` occurrences of any pattern in
/// `haystack`, by scanning every pattern at every offset.
pub fn find_all<P: AsRef<[u8]>>(patterns: &[P], haystack: &[u8]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (pi, pat) in patterns.iter().enumerate() {
        let pat = pat.as_ref();
        if pat.is_empty() || pat.len() > haystack.len() {
            continue;
        }
        for start in 0..=(haystack.len() - pat.len()) {
            if &haystack[start..start + pat.len()] == pat {
                out.push((pi, start));
            }
        }
    }
    out
}

/// Does any pattern occur as a substring of `haystack`? Case-sensitive.
pub fn is_match<P: AsRef<[u8]>>(patterns: &[P], haystack: &[u8]) -> bool {
    patterns.iter().any(|p| {
        let p = p.as_ref();
        !p.is_empty() && haystack.windows(p.len()).any(|w| w == p)
    })
}

/// Linear-scan CIDR containment: is `addr` inside any of `blocks`?
pub fn cidr_contains(blocks: &[Ipv4Cidr], addr: Ipv4Addr) -> bool {
    blocks.iter().any(|b| b.contains(addr))
}

/// Suffix-check domain blacklist: does `host` equal, or end with a dot plus,
/// any entry? Entries beginning with `'.'` (e.g. `.il`) match any host with
/// that suffix, including the bare suffix itself.
pub fn domain_matches(entries: &[&str], host: &str) -> bool {
    let host = host.to_ascii_lowercase();
    entries.iter().any(|e| {
        let e = e.to_ascii_lowercase();
        if let Some(stripped) = e.strip_prefix('.') {
            host == stripped || host.ends_with(&e)
        } else {
            host == e || host.ends_with(&format!(".{e}"))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_find_all_basics() {
        let hits = find_all(&["ab", "b"], b"abab");
        assert!(hits.contains(&(0, 0)));
        assert!(hits.contains(&(0, 2)));
        assert!(hits.contains(&(1, 1)));
        assert!(hits.contains(&(1, 3)));
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn naive_domain_suffix_semantics() {
        let entries = ["facebook.com", ".il"];
        assert!(domain_matches(&entries, "facebook.com"));
        assert!(domain_matches(&entries, "www.facebook.com"));
        assert!(!domain_matches(&entries, "notfacebook.com"));
        assert!(domain_matches(&entries, "panet.co.il"));
        assert!(!domain_matches(&entries, "il.example.com"));
    }

    #[test]
    fn naive_cidr_scan() {
        let blocks = vec![Ipv4Cidr::parse("84.229.0.0/16").unwrap()];
        assert!(cidr_contains(&blocks, "84.229.1.1".parse().unwrap()));
        assert!(!cidr_contains(&blocks, "84.230.0.0".parse().unwrap()));
    }
}
