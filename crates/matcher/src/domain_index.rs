//! Flat, serializable form of the domain-suffix blacklist.
//!
//! [`crate::DomainTrie`] hangs `HashMap` nodes off each other — ideal for
//! incremental inserts and the linter's shadowing queries, but it cannot
//! be written into the compiled policy artifact, and every lookup hashes
//! each label. [`DomainIndex`] is the same reversed-label automaton
//! flattened DAFSA-style into three arrays: a pool of lowercased label
//! bytes, a sorted edge table, and a node table of edge ranges. Lookups
//! binary-search the node's edge run with allocation-free case-folded
//! comparison, and the whole structure serializes as a handful of
//! length-prefixed arrays.
//!
//! Matching semantics are identical to `DomainTrie` by construction
//! (property-tested): labels walk right-to-left, the *shortest* covering
//! suffix wins, ASCII case is ignored, one trailing host dot is
//! tolerated, and leading entry dots are stripped.

use filterscope_core::{ByteReader, ByteWriter, Error, Result};
use std::collections::BTreeMap;

/// Sentinel terminal value for "no entry ends at this node".
const NO_ENTRY: u32 = u32::MAX;

/// Allocation ceiling for deserialized tables (labels bytes, edge and
/// node counts), so a corrupt length cannot trigger an absurd allocation.
const MAX_TABLE: usize = 1 << 26;

/// One labelled edge: `labels[off..off + len]` leads to node `child`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Edge {
    off: u32,
    len: u16,
    child: u32,
}

/// One node: a run of sorted edges plus an optional terminal entry index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NodeRec {
    edge_start: u32,
    edge_count: u32,
    terminal: u32,
}

/// A set of domain suffixes as flat arrays; see the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainIndex {
    /// Lowercased label bytes, concatenated.
    labels: Vec<u8>,
    /// All edges, grouped by owning node, sorted by label within a group.
    edges: Vec<Edge>,
    /// Node 0 is the root.
    nodes: Vec<NodeRec>,
    /// Number of distinct entries.
    len: usize,
}

/// Build-time node, keyed by lowercased label (sorted iteration gives the
/// sorted edge runs for free).
#[derive(Default)]
struct TempNode {
    children: BTreeMap<Vec<u8>, TempNode>,
    terminal: Option<u32>,
}

impl DomainIndex {
    /// Build from entries, mirroring `DomainTrie::from_entries`: leading
    /// dots stripped, labels lowercased, duplicates collapse onto the
    /// first entry's index.
    pub fn from_entries<'a>(entries: impl IntoIterator<Item = &'a str>) -> DomainIndex {
        let mut root = TempNode::default();
        let mut len = 0u32;
        for entry in entries {
            let entry = entry.trim_start_matches('.');
            let mut node = &mut root;
            for label in entry.rsplit('.') {
                let label = label.to_ascii_lowercase().into_bytes();
                node = node.children.entry(label).or_default();
            }
            if node.terminal.is_none() {
                node.terminal = Some(len);
                len += 1;
            }
        }

        // Flatten breadth-first so each node's edges form one contiguous,
        // sorted run.
        let mut labels = Vec::new();
        let mut edges = Vec::new();
        let mut nodes = Vec::new();
        let mut queue: std::collections::VecDeque<TempNode> = std::collections::VecDeque::new();
        queue.push_back(root);
        let mut next_id = 1u32;
        while let Some(node) = queue.pop_front() {
            let edge_start = edges.len() as u32;
            for (label, child) in node.children {
                let off = labels.len() as u32;
                labels.extend_from_slice(&label);
                edges.push(Edge {
                    off,
                    len: label.len() as u16,
                    child: next_id,
                });
                next_id += 1;
                queue.push_back(child);
            }
            nodes.push(NodeRec {
                edge_start,
                edge_count: edges.len() as u32 - edge_start,
                terminal: node.terminal.unwrap_or(NO_ENTRY),
            });
        }
        // The queue preserves child order, but each child's own NodeRec is
        // appended when *it* is dequeued — BFS ids therefore match `child`.
        DomainIndex {
            labels,
            edges,
            nodes,
            len: len as usize,
        }
    }

    /// Number of distinct entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Case-folded comparison of a stored edge label against a probe
    /// label from the host (probe is folded on the fly; stored labels are
    /// lowercased at build time).
    fn cmp_label(&self, edge: Edge, probe: &str) -> std::cmp::Ordering {
        let stored = &self.labels[edge.off as usize..edge.off as usize + edge.len as usize];
        let probe = probe.as_bytes();
        let n = stored.len().min(probe.len());
        for i in 0..n {
            let p = probe[i].to_ascii_lowercase();
            match stored[i].cmp(&p) {
                std::cmp::Ordering::Equal => {}
                other => return other,
            }
        }
        stored.len().cmp(&probe.len())
    }

    /// The child reached from `node` over `label`, if any.
    fn descend(&self, node: NodeRec, label: &str) -> Option<NodeRec> {
        let run =
            &self.edges[node.edge_start as usize..(node.edge_start + node.edge_count) as usize];
        let i = run.binary_search_by(|&e| self.cmp_label(e, label)).ok()?;
        Some(self.nodes[run[i].child as usize])
    }

    /// If `host` is covered by an entry, the index of the *shortest*
    /// covering suffix (semantics of [`crate::DomainTrie::lookup`]).
    pub fn lookup(&self, host: &str) -> Option<u32> {
        let host = host.strip_suffix('.').unwrap_or(host);
        if host.is_empty() {
            return None;
        }
        let mut node = self.nodes[0];
        for label in host.rsplit('.') {
            node = self.descend(node, label)?;
            if node.terminal != NO_ENTRY {
                return Some(node.terminal);
            }
        }
        None
    }

    /// Does any entry cover `host`?
    pub fn matches(&self, host: &str) -> bool {
        self.lookup(host).is_some()
    }

    /// Serialize into `w` (see [`DomainIndex::read_from`]).
    pub fn write_into(&self, w: &mut ByteWriter) {
        w.put_u32(self.len as u32);
        w.put_bytes(&self.labels);
        w.put_u32(self.edges.len() as u32);
        for e in &self.edges {
            w.put_u32(e.off);
            w.put_u16(e.len);
            w.put_u32(e.child);
        }
        w.put_u32(self.nodes.len() as u32);
        for n in &self.nodes {
            w.put_u32(n.edge_start);
            w.put_u32(n.edge_count);
            w.put_u32(n.terminal);
        }
    }

    /// Deserialize, validating every index: label slices inside the pool,
    /// edge runs inside the edge table, children inside the node table,
    /// terminals below the entry count. Violations fail closed.
    pub fn read_from(r: &mut ByteReader<'_>) -> Result<DomainIndex> {
        let bad = |what: &str| Error::InvalidConfig(format!("domain index: {what}"));
        let len = r.get_u32()? as usize;
        let labels = r.get_bytes()?.to_vec();
        if labels.len() > MAX_TABLE {
            return Err(bad("label pool exceeds the size ceiling"));
        }
        let edge_count = r.get_u32()? as usize;
        if edge_count > MAX_TABLE {
            return Err(bad("edge table exceeds the size ceiling"));
        }
        let mut edges = Vec::with_capacity(edge_count);
        for _ in 0..edge_count {
            let (off, elen, child) = (r.get_u32()?, r.get_u16()?, r.get_u32()?);
            if off as usize + elen as usize > labels.len() {
                return Err(bad("edge label outside the pool"));
            }
            edges.push(Edge {
                off,
                len: elen,
                child,
            });
        }
        let node_count = r.get_u32()? as usize;
        if node_count == 0 || node_count > MAX_TABLE {
            return Err(bad("node table empty or exceeds the size ceiling"));
        }
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let (edge_start, edge_count_n, terminal) = (r.get_u32()?, r.get_u32()?, r.get_u32()?);
            let end = edge_start
                .checked_add(edge_count_n)
                .ok_or_else(|| bad("edge run overflows"))?;
            if end as usize > edges.len() {
                return Err(bad("edge run outside the edge table"));
            }
            if terminal != NO_ENTRY && terminal as usize >= len {
                return Err(bad("terminal entry out of range"));
            }
            nodes.push(NodeRec {
                edge_start,
                edge_count: edge_count_n,
                terminal,
            });
        }
        for e in &edges {
            if e.child as usize >= nodes.len() {
                return Err(bad("edge child out of range"));
            }
        }
        Ok(DomainIndex {
            labels,
            edges,
            nodes,
            len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DomainTrie;

    fn both(entries: &[&str]) -> (DomainTrie, DomainIndex) {
        (
            DomainTrie::from_entries(entries.iter().copied()),
            DomainIndex::from_entries(entries.iter().copied()),
        )
    }

    #[test]
    fn agrees_with_trie_on_fixed_cases() {
        let (trie, index) = both(&["facebook.com", ".il", "Skype.COM", "co.il", "jumblo.com"]);
        for host in [
            "facebook.com",
            "www.facebook.com",
            "ar-ar.facebook.com",
            "notfacebook.com",
            "facebook.com.evil.net",
            "com",
            "il",
            "IL",
            "panet.co.il",
            "x.co.il",
            "download.skype.com",
            "SKYPE.com.",
            "skype.com.fake.org",
            "jumblo.com",
            "example.org",
            "",
            ".",
            "a..com",
        ] {
            assert_eq!(trie.lookup(host), index.lookup(host), "host {host:?}");
            assert_eq!(trie.matches(host), index.matches(host), "host {host:?}");
        }
    }

    #[test]
    fn shortest_suffix_wins_like_the_trie() {
        let (_, index) = both(&["il", "co.il", "panet.co.il"]);
        assert_eq!(index.lookup("panet.co.il"), Some(0));
        assert_eq!(index.lookup("idf.il"), Some(0));
    }

    #[test]
    fn duplicate_entries_collapse() {
        let index = DomainIndex::from_entries(["badoo.com", ".badoo.com", "badoo.com"]);
        assert_eq!(index.len(), 1);
        assert!(index.matches("m.badoo.com"));
    }

    #[test]
    fn empty_index_and_empty_host() {
        let index = DomainIndex::from_entries([]);
        assert!(index.is_empty());
        assert!(!index.matches("anything.com"));
        let index = DomainIndex::from_entries(["x.com"]);
        assert!(!index.matches(""));
    }

    #[test]
    fn serialization_roundtrip_is_identity() {
        let (_, index) = both(&["facebook.com", ".il", "skype.com", "co.il"]);
        let mut w = ByteWriter::new();
        index.write_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = DomainIndex::read_from(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(index, back);
        assert!(back.matches("www.facebook.com"));
        assert!(back.matches("panet.co.il"));
        assert!(!back.matches("example.org"));
    }

    #[test]
    fn corrupt_serializations_fail_closed() {
        let index = DomainIndex::from_entries(["facebook.com", ".il"]);
        let mut w = ByteWriter::new();
        index.write_into(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            assert!(
                DomainIndex::read_from(&mut ByteReader::new(&bytes[..cut])).is_err(),
                "cut {cut}"
            );
        }
        // A label-pool length lying past the end is caught by the reader.
        let mut bad = bytes.clone();
        bad[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(DomainIndex::read_from(&mut ByteReader::new(&bad)).is_err());
    }
}
