//! # filterscope-match
//!
//! Pattern-matching engines used by the Blue Coat policy simulator and by the
//! censorship-inference analysis:
//!
//! * [`AhoCorasick`] — a from-scratch multi-pattern substring automaton. The
//!   SG-9000 string filter is "a simple string-matching engine that detects
//!   any blacklisted substring in the URL" (§5.4); an Aho–Corasick automaton
//!   is the canonical way to run that set-membership scan in a single pass.
//! * [`DomainTrie`] — reversed-label suffix trie for domain blacklists
//!   (`facebook.com` must match `www.facebook.com` and `.il` must match any
//!   Israeli ccTLD host).
//! * [`CidrSet`] — sorted, merged interval set over IPv4 space for subnet
//!   blacklists (the Israeli-subnet block of Table 12).
//! * [`AcDfa`] / [`DomainIndex`] — dense-DFA and flat-array forms of the
//!   first two, decision-identical by construction, built for the compiled
//!   policy artifact (`filterscope compile`): all three hot structures
//!   serialize through `filterscope_core::bytes` and deserialize with
//!   fail-closed validation.
//! * [`naive`] — deliberately simple reference implementations used in
//!   property tests and ablation benches.

#![forbid(unsafe_code)]

pub mod aho_corasick;
pub mod cidr_set;
pub mod dfa;
pub mod domain_index;
pub mod domain_trie;
pub mod naive;

pub use aho_corasick::{AhoCorasick, Match};
pub use cidr_set::CidrSet;
pub use dfa::AcDfa;
pub use domain_index::DomainIndex;
pub use domain_trie::DomainTrie;
