//! Sorted interval set over IPv4 space for subnet blacklists.
//!
//! Blocks are normalized to `[first, last]` integer ranges, sorted, and
//! merged, so containment is a single binary search. This is the index behind
//! both the proxy's destination-IP filter and the Table 11/12 geo analysis.

use filterscope_core::Ipv4Cidr;
use std::net::Ipv4Addr;

/// An immutable set of IPv4 ranges built from CIDR blocks.
#[derive(Debug, Clone, Default)]
pub struct CidrSet {
    /// Disjoint, sorted, merged `[start, end]` inclusive ranges.
    ranges: Vec<(u32, u32)>,
    /// Number of blocks supplied at construction (pre-merge).
    source_blocks: usize,
}

impl CidrSet {
    /// Build from any iterator of CIDR blocks; overlapping and adjacent
    /// blocks are merged.
    pub fn from_blocks(blocks: impl IntoIterator<Item = Ipv4Cidr>) -> Self {
        let mut raw: Vec<(u32, u32)> = blocks
            .into_iter()
            .map(|b| (b.first_u32(), b.last_u32()))
            .collect();
        let source_blocks = raw.len();
        raw.sort_unstable();
        let mut ranges: Vec<(u32, u32)> = Vec::with_capacity(raw.len());
        for (s, e) in raw {
            match ranges.last_mut() {
                // Merge overlapping or exactly adjacent ranges.
                Some((_, pe)) if s <= pe.saturating_add(1) => {
                    if e > *pe {
                        *pe = e;
                    }
                }
                _ => ranges.push((s, e)),
            }
        }
        CidrSet {
            ranges,
            source_blocks,
        }
    }

    /// Parse a list of CIDR strings; any malformed entry fails the whole set.
    pub fn parse_blocks<'a>(
        blocks: impl IntoIterator<Item = &'a str>,
    ) -> filterscope_core::Result<Self> {
        let parsed: filterscope_core::Result<Vec<_>> =
            blocks.into_iter().map(Ipv4Cidr::parse).collect();
        Ok(Self::from_blocks(parsed?))
    }

    /// Is `addr` inside any block?
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        let x = u32::from(addr);
        // Find the last range whose start is <= x.
        match self.ranges.partition_point(|&(s, _)| s <= x) {
            0 => false,
            i => x <= self.ranges[i - 1].1,
        }
    }

    /// Is every address of `block` inside the set?
    ///
    /// Because ranges are merged at construction, a fully covered block is
    /// always covered by exactly one range, so this is one binary search.
    pub fn covers(&self, block: Ipv4Cidr) -> bool {
        let (first, last) = (block.first_u32(), block.last_u32());
        match self.ranges.partition_point(|&(s, _)| s <= first) {
            0 => false,
            i => last <= self.ranges[i - 1].1,
        }
    }

    /// Does `block` share at least one address with the set?
    pub fn overlaps(&self, block: Ipv4Cidr) -> bool {
        let (first, last) = (block.first_u32(), block.last_u32());
        // The candidate ranges are the one starting at or before `first` and
        // any starting inside the block.
        let i = self.ranges.partition_point(|&(s, _)| s <= first);
        (i > 0 && first <= self.ranges[i - 1].1)
            || self.ranges.get(i).is_some_and(|&(s, _)| s <= last)
    }

    /// The smallest address of `block` *not* covered by the set, if any —
    /// the witness generator for "this CIDR rule is not fully subsumed".
    pub fn first_uncovered_in(&self, block: Ipv4Cidr) -> Option<Ipv4Addr> {
        let (first, last) = (block.first_u32() as u64, block.last_u32() as u64);
        let mut cursor = first;
        for &(s, e) in &self.ranges {
            let (s, e) = (s as u64, e as u64);
            if e < cursor {
                continue;
            }
            if s > cursor {
                break; // gap at `cursor`
            }
            cursor = e + 1;
            if cursor > last {
                return None;
            }
        }
        (cursor <= last).then(|| Ipv4Addr::from(cursor as u32))
    }

    /// Number of disjoint ranges after merging.
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// Number of blocks supplied at construction.
    pub fn source_block_count(&self) -> usize {
        self.source_blocks
    }

    /// Total number of addresses covered.
    pub fn address_count(&self) -> u64 {
        self.ranges
            .iter()
            .map(|&(s, e)| (e as u64) - (s as u64) + 1)
            .sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The merged `[start, end]` ranges, sorted and disjoint.
    pub fn ranges(&self) -> &[(u32, u32)] {
        &self.ranges
    }

    /// Serialize into `w` (see [`CidrSet::read_from`]).
    pub fn write_into(&self, w: &mut filterscope_core::ByteWriter) {
        w.put_u32(self.source_blocks as u32);
        w.put_u32(self.ranges.len() as u32);
        for &(s, e) in &self.ranges {
            w.put_u32(s);
            w.put_u32(e);
        }
    }

    /// Deserialize, re-validating the construction invariant every query
    /// relies on: ranges are well-formed (`start <= end`), sorted, and
    /// pairwise disjoint with no mergeable adjacency. A serialized set
    /// that violates it would answer `contains` wrongly, so loading fails
    /// closed instead.
    pub fn read_from(
        r: &mut filterscope_core::ByteReader<'_>,
    ) -> filterscope_core::Result<CidrSet> {
        let bad =
            |what: &str| filterscope_core::Error::InvalidConfig(format!("CIDR table: {what}"));
        let source_blocks = r.get_u32()? as usize;
        let count = r.get_u32()? as usize;
        let mut ranges: Vec<(u32, u32)> = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let (s, e) = (r.get_u32()?, r.get_u32()?);
            if s > e {
                return Err(bad("inverted range"));
            }
            if let Some(&(_, prev_e)) = ranges.last() {
                // Disjoint AND non-adjacent: `from_blocks` would have
                // merged `prev_e + 1 == s`, so a load must reject it too.
                if u64::from(s) <= u64::from(prev_e) + 1 {
                    return Err(bad("ranges out of order, overlapping, or unmerged"));
                }
            }
            ranges.push((s, e));
        }
        Ok(CidrSet {
            ranges,
            source_blocks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn set(blocks: &[&str]) -> CidrSet {
        CidrSet::parse_blocks(blocks.iter().copied()).unwrap()
    }

    #[test]
    fn contains_israeli_table12_subnets() {
        let s = set(&[
            "84.229.0.0/16",
            "46.120.0.0/15",
            "89.138.0.0/15",
            "212.235.64.0/19",
            "212.150.0.0/16",
        ]);
        assert!(s.contains(ip("84.229.13.7")));
        assert!(s.contains(ip("46.121.255.255")));
        assert!(s.contains(ip("212.235.95.0")));
        assert!(!s.contains(ip("212.235.96.0")));
        assert!(!s.contains(ip("8.8.8.8")));
    }

    #[test]
    fn merges_overlaps_and_adjacency() {
        let s = set(&["10.0.0.0/25", "10.0.0.128/25", "10.0.0.64/26"]);
        assert_eq!(s.range_count(), 1);
        assert_eq!(s.address_count(), 256);
        assert!(s.contains(ip("10.0.0.255")));
        assert!(!s.contains(ip("10.0.1.0")));
    }

    #[test]
    fn empty_set() {
        let s = CidrSet::from_blocks([]);
        assert!(s.is_empty());
        assert!(!s.contains(ip("1.2.3.4")));
    }

    #[test]
    fn boundary_addresses() {
        let s = set(&["0.0.0.0/8", "255.255.255.255/32"]);
        assert!(s.contains(ip("0.0.0.0")));
        assert!(s.contains(ip("0.255.255.255")));
        assert!(!s.contains(ip("1.0.0.0")));
        assert!(s.contains(ip("255.255.255.255")));
        assert!(!s.contains(ip("255.255.255.254")));
    }

    #[test]
    fn containment_overlap_and_gap_queries() {
        let s = set(&["84.229.0.0/16", "46.120.0.0/15"]);
        let c = |t: &str| Ipv4Cidr::parse(t).unwrap();
        // Full containment: sub-blocks and the blocks themselves.
        assert!(s.covers(c("84.229.128.0/17")));
        assert!(s.covers(c("84.229.0.0/16")));
        assert!(!s.covers(c("84.228.0.0/15"))); // only the upper half is in
        assert!(!s.covers(c("8.8.8.0/24")));
        // Overlap: any shared address counts.
        assert!(s.overlaps(c("84.228.0.0/15")));
        assert!(s.overlaps(c("46.121.200.0/24")));
        assert!(!s.overlaps(c("46.122.0.0/16")));
        // Witness generation: first uncovered address inside a block.
        assert_eq!(s.first_uncovered_in(c("84.229.0.0/16")), None);
        assert_eq!(
            s.first_uncovered_in(c("84.228.0.0/15")),
            Some(ip("84.228.0.0"))
        );
        assert_eq!(s.first_uncovered_in(c("46.121.0.0/16")), None);
        // A gap between two covered ranges is found.
        let two = set(&["10.0.0.0/25", "10.0.0.192/26"]);
        assert_eq!(
            two.first_uncovered_in(c("10.0.0.0/24")),
            Some(ip("10.0.0.128"))
        );
        // The all-ones boundary does not overflow.
        let top = set(&["255.255.255.254/31"]);
        assert_eq!(top.first_uncovered_in(c("255.255.255.254/31")), None);
        assert_eq!(
            top.first_uncovered_in(c("255.255.255.252/30")),
            Some(ip("255.255.255.252"))
        );
        // Empty set: everything is uncovered, nothing overlaps.
        let none = CidrSet::from_blocks([]);
        assert!(!none.overlaps(c("0.0.0.0/0")));
        assert_eq!(
            none.first_uncovered_in(c("5.5.5.0/24")),
            Some(ip("5.5.5.0"))
        );
    }

    #[test]
    fn rejects_malformed_block_list() {
        assert!(CidrSet::parse_blocks(["1.2.3.0/24", "oops"]).is_err());
    }

    #[test]
    fn serialization_roundtrip_preserves_queries() {
        use filterscope_core::{ByteReader, ByteWriter};
        let s = set(&["84.229.0.0/16", "46.120.0.0/15", "212.150.0.0/16"]);
        let mut w = ByteWriter::new();
        s.write_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = CidrSet::read_from(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.ranges(), s.ranges());
        assert_eq!(back.source_block_count(), s.source_block_count());
        assert!(back.contains(ip("84.229.13.7")));
        assert!(!back.contains(ip("8.8.8.8")));
    }

    #[test]
    fn corrupt_range_tables_fail_closed() {
        use filterscope_core::{ByteReader, ByteWriter};
        let s = set(&["84.229.0.0/16", "46.120.0.0/15"]);
        let mut w = ByteWriter::new();
        s.write_into(&mut w);
        let bytes = w.into_bytes();
        // Truncations error, never panic.
        for cut in 0..bytes.len() {
            assert!(
                CidrSet::read_from(&mut ByteReader::new(&bytes[..cut])).is_err(),
                "cut {cut}"
            );
        }
        // An inverted range is rejected.
        let mut bad = bytes.clone();
        bad[8..12].copy_from_slice(&u32::MAX.to_le_bytes()); // first range start
        assert!(CidrSet::read_from(&mut ByteReader::new(&bad)).is_err());
        // Out-of-order / overlapping ranges are rejected (swap the pairs).
        let mut swapped = bytes.clone();
        let (a, b) = (8usize, 16usize);
        for i in 0..8 {
            swapped.swap(a + i, b + i);
        }
        assert!(CidrSet::read_from(&mut ByteReader::new(&swapped)).is_err());
    }

    #[test]
    fn agrees_with_linear_scan() {
        let blocks: Vec<Ipv4Cidr> = ["84.229.0.0/16", "46.120.0.0/15", "212.150.0.0/16"]
            .iter()
            .map(|s| Ipv4Cidr::parse(s).unwrap())
            .collect();
        let s = CidrSet::from_blocks(blocks.iter().copied());
        for probe in [
            "84.229.0.0",
            "84.228.255.255",
            "46.120.0.1",
            "46.122.0.0",
            "212.150.200.4",
            "212.151.0.0",
            "0.0.0.0",
            "255.255.255.255",
        ] {
            let a = ip(probe);
            assert_eq!(
                s.contains(a),
                crate::naive::cidr_contains(&blocks, a),
                "probe {probe}"
            );
        }
    }
}
