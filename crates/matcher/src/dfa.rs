//! Dense DFA form of the keyword automaton, precomputed for the compiled
//! policy artifact.
//!
//! [`crate::AhoCorasick`] resolves each input byte with a binary search
//! over sparse edges plus a failure-link walk — cheap to build, but two
//! data-dependent branches per byte on the hottest path the proxy farm
//! has. [`AcDfa`] runs the same automaton after closing it over the
//! failure function: one table lookup per byte, no failure walks, with
//! ASCII case folding baked into a 256-entry byte-class table. Byte
//! classes (all bytes no pattern uses share one class) keep the
//! transition table small enough to serialize into the artifact and stay
//! cache-resident.
//!
//! `AcDfa::is_match` is decision-identical to `AhoCorasick::is_match` by
//! construction (property-tested), which is what lets the policy engine
//! swap one for the other without the witness-equivalence gate noticing.

use crate::aho_corasick::{AhoCorasick, AhoCorasickBuilder};
use filterscope_core::{ByteReader, ByteWriter, Error, Result};

/// Hard ceiling on `states × classes` accepted from a serialized artifact,
/// so a corrupt header cannot make the loader allocate unbounded memory.
const MAX_TABLE_ENTRIES: usize = 1 << 26;

/// A fully tabulated Aho–Corasick DFA (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcDfa {
    /// Byte → equivalence class; case folding is applied here.
    classes: Box<[u8; 256]>,
    /// Number of distinct classes (≥ 1; class 0 is "byte unused by any
    /// pattern" when such bytes exist).
    class_count: u32,
    /// Number of DFA states (≥ 1; state 0 is the root).
    state_count: u32,
    /// Row-major transition table: `trans[state * class_count + class]`.
    trans: Vec<u32>,
    /// Per-state "some pattern ends here" flag.
    matches: Vec<bool>,
}

impl AcDfa {
    /// Compile `patterns` straight to a DFA (builds the NFA internally).
    pub fn build<P: AsRef<[u8]>>(
        patterns: impl IntoIterator<Item = P>,
        ascii_case_insensitive: bool,
    ) -> AcDfa {
        let ac = AhoCorasickBuilder::new()
            .ascii_case_insensitive(ascii_case_insensitive)
            .build(patterns);
        AcDfa::from_automaton(&ac)
    }

    /// Tabulate an existing automaton.
    pub fn from_automaton(ac: &AhoCorasick) -> AcDfa {
        let used = ac.used_bytes();
        // Assign classes over *normalized* bytes: every byte some pattern
        // uses gets its own class, every other byte shares class 0 (all
        // such bytes behave identically — no edge anywhere targets them,
        // so they reset every state to the root's default path).
        let mut class_of_norm = [0u8; 256];
        let mut class_count: u32 = 0;
        let mut rep_of_class: Vec<u8> = Vec::new();
        // Class 0 is the shared "unused" class — but only when an unused
        // byte exists (otherwise 256 per-byte classes would overflow `u8`).
        if let Some(unused) = (0..=255u8).find(|&b| !used[b as usize]) {
            rep_of_class.push(unused);
            class_count = 1;
        }
        for b in 0..=255u8 {
            if used[b as usize] {
                class_of_norm[b as usize] = class_count as u8;
                rep_of_class.push(b);
                class_count += 1;
            }
        }
        // Fold the haystack-side case mapping into the table.
        let mut classes = Box::new([0u8; 256]);
        for b in 0..=255u8 {
            let norm = if ac.is_case_insensitive() {
                b.to_ascii_lowercase()
            } else {
                b
            };
            classes[b as usize] = class_of_norm[norm as usize];
        }

        let state_count = ac.state_count() as u32;
        let mut trans = Vec::with_capacity(state_count as usize * class_count as usize);
        let mut matches = Vec::with_capacity(state_count as usize);
        for s in 0..state_count {
            for c in 0..class_count {
                // `step` re-folds case; representatives are already
                // normalized, and lowercasing is idempotent.
                trans.push(ac.step(s, rep_of_class[c as usize]));
            }
            matches.push(ac.state_is_match(s));
        }
        AcDfa {
            classes,
            class_count,
            state_count,
            trans,
            matches,
        }
    }

    /// Does any pattern occur in `haystack`? One table lookup per byte.
    pub fn is_match(&self, haystack: impl AsRef<[u8]>) -> bool {
        let cc = self.class_count as usize;
        let mut state = 0usize;
        for &b in haystack.as_ref() {
            state = self.trans[state * cc + self.classes[b as usize] as usize] as usize;
            if self.matches[state] {
                return true;
            }
        }
        false
    }

    /// Number of DFA states (diagnostics).
    pub fn state_count(&self) -> usize {
        self.state_count as usize
    }

    /// Number of byte classes (diagnostics).
    pub fn class_count(&self) -> usize {
        self.class_count as usize
    }

    /// Serialize into `w` (see [`AcDfa::read_from`] for the layout).
    pub fn write_into(&self, w: &mut ByteWriter) {
        w.put_u32(self.state_count);
        w.put_u32(self.class_count);
        w.put_raw(&self.classes[..]);
        for &t in &self.trans {
            w.put_u32(t);
        }
        for &m in &self.matches {
            w.put_u8(u8::from(m));
        }
    }

    /// Deserialize, validating every invariant the matcher relies on:
    /// table dimensions within the allocation ceiling, every class id
    /// below `class_count`, every transition target below `state_count`.
    /// Any violation fails closed with [`Error::InvalidConfig`].
    pub fn read_from(r: &mut ByteReader<'_>) -> Result<AcDfa> {
        let bad = |what: &str| Error::InvalidConfig(format!("keyword DFA: {what}"));
        let state_count = r.get_u32()?;
        let class_count = r.get_u32()?;
        if state_count == 0 || class_count == 0 {
            return Err(bad("empty state or class space"));
        }
        let entries = (state_count as usize)
            .checked_mul(class_count as usize)
            .filter(|&n| n <= MAX_TABLE_ENTRIES)
            .ok_or_else(|| bad("transition table exceeds the size ceiling"))?;
        let mut classes = Box::new([0u8; 256]);
        classes.copy_from_slice(r.get_raw(256)?);
        if classes.iter().any(|&c| u32::from(c) >= class_count) {
            return Err(bad("byte class out of range"));
        }
        let mut trans = Vec::with_capacity(entries);
        for _ in 0..entries {
            let t = r.get_u32()?;
            if t >= state_count {
                return Err(bad("transition target out of range"));
            }
            trans.push(t);
        }
        let mut matches = Vec::with_capacity(state_count as usize);
        for _ in 0..state_count {
            match r.get_u8()? {
                0 => matches.push(false),
                1 => matches.push(true),
                _ => return Err(bad("match flag is not 0/1")),
            }
        }
        Ok(AcDfa {
            classes,
            class_count,
            state_count,
            trans,
            matches,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dfa(patterns: &[&str], ci: bool) -> (AhoCorasick, AcDfa) {
        let ac = AhoCorasickBuilder::new()
            .ascii_case_insensitive(ci)
            .build(patterns);
        let dfa = AcDfa::from_automaton(&ac);
        (ac, dfa)
    }

    #[test]
    fn agrees_with_nfa_on_urls() {
        let (ac, dfa) = dfa(
            &[
                "proxy",
                "hotspotshield",
                "ultrareach",
                "israel",
                "ultrasurf",
            ],
            true,
        );
        for hay in [
            "google.com/tbproxy/af/query",
            "www.facebook.com/fbml/fbjs_ajax_proxy.php",
            "example.com/x?q=UltraSurf",
            "WWW.ISRAEL.NET/",
            "benign.example/path?ok=1",
            "",
            "pro",
            "proxproxproxy",
        ] {
            assert_eq!(ac.is_match(hay), dfa.is_match(hay), "haystack {hay:?}");
        }
    }

    #[test]
    fn agrees_with_nfa_exhaustively_on_small_alphabet() {
        let (ac, dfa) = dfa(&["ab", "ba", "aaa"], false);
        // Every string over {a,b,c} up to length 6.
        let alphabet = [b'a', b'b', b'c'];
        let mut stack: Vec<Vec<u8>> = vec![Vec::new()];
        while let Some(s) = stack.pop() {
            assert_eq!(ac.is_match(&s), dfa.is_match(&s), "haystack {s:?}");
            if s.len() < 6 {
                for &c in &alphabet {
                    let mut t = s.clone();
                    t.push(c);
                    stack.push(t);
                }
            }
        }
    }

    #[test]
    fn case_folding_is_in_the_class_table() {
        let (_, dfa) = dfa(&["Tor"], true);
        assert!(dfa.is_match("monitor"));
        assert!(dfa.is_match("MONITOR"));
        assert!(dfa.is_match("ToR"));
        assert!(!dfa.is_match("t-o-r"));
    }

    #[test]
    fn empty_pattern_set_never_matches() {
        let dfa = AcDfa::build(Vec::<&str>::new(), true);
        assert!(!dfa.is_match("anything"));
        assert_eq!(dfa.state_count(), 1);
    }

    #[test]
    fn unused_bytes_share_one_class() {
        let (_, dfa) = dfa(&["abc"], false);
        // 3 used bytes + 1 shared unused class.
        assert_eq!(dfa.class_count(), 4);
    }

    #[test]
    fn serialization_roundtrip_is_identity() {
        let (_, dfa) = dfa(&["proxy", "israel", "ultra"], true);
        let mut w = ByteWriter::new();
        dfa.write_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = AcDfa::read_from(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(dfa, back);
    }

    #[test]
    fn corrupt_serializations_fail_closed() {
        let (_, dfa) = dfa(&["proxy"], true);
        let mut w = ByteWriter::new();
        dfa.write_into(&mut w);
        let bytes = w.into_bytes();
        // Truncations at every prefix length must error, never panic.
        for cut in 0..bytes.len() {
            assert!(
                AcDfa::read_from(&mut ByteReader::new(&bytes[..cut])).is_err(),
                "cut {cut}"
            );
        }
        // Oversize declared dimensions are rejected before allocating.
        let mut huge = bytes.clone();
        huge[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        huge[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(AcDfa::read_from(&mut ByteReader::new(&huge)).is_err());
        // An out-of-range transition target is rejected.
        let mut bad = bytes;
        let trans_start = 4 + 4 + 256;
        bad[trans_start..trans_start + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(AcDfa::read_from(&mut ByteReader::new(&bad)).is_err());
    }
}
