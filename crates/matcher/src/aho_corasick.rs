//! Multi-pattern substring search (Aho–Corasick), implemented from scratch.
//!
//! The automaton is built once from a set of byte patterns and then scans
//! haystacks in a single pass, O(haystack + matches). States are stored in a
//! flat `Vec` with dense 256-way transition tables for the root's first two
//! levels and sorted sparse edges below, which keeps construction cheap for
//! blacklists of a few hundred keywords while scanning at memory speed.
//!
//! Matching is case-insensitive when built with
//! [`AhoCorasickBuilder::ascii_case_insensitive`], mirroring the proxies'
//! behaviour on URLs.

/// A single match: which pattern matched and where.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Index of the pattern in the order given at build time.
    pub pattern: usize,
    /// Byte offset of the first byte of the match in the haystack.
    pub start: usize,
    /// Byte offset one past the last byte of the match.
    pub end: usize,
}

#[derive(Debug, Clone)]
struct State {
    /// Sorted (byte, next-state) edges.
    edges: Vec<(u8, u32)>,
    /// Failure link.
    fail: u32,
    /// Patterns ending at this state (indexes into the pattern list).
    out: Vec<u32>,
}

impl State {
    fn new() -> Self {
        State {
            edges: Vec::new(),
            fail: 0,
            out: Vec::new(),
        }
    }

    fn get(&self, b: u8) -> Option<u32> {
        self.edges
            .binary_search_by_key(&b, |e| e.0)
            .ok()
            .map(|i| self.edges[i].1)
    }

    fn set(&mut self, b: u8, next: u32) {
        match self.edges.binary_search_by_key(&b, |e| e.0) {
            Ok(i) => self.edges[i].1 = next,
            Err(i) => self.edges.insert(i, (b, next)),
        }
    }
}

/// Builder for [`AhoCorasick`].
#[derive(Debug, Clone, Default)]
pub struct AhoCorasickBuilder {
    case_insensitive: bool,
}

impl AhoCorasickBuilder {
    /// Start building with default options (case sensitive).
    pub fn new() -> Self {
        Self::default()
    }

    /// Treat ASCII letters case-insensitively in both patterns and haystack.
    pub fn ascii_case_insensitive(mut self, yes: bool) -> Self {
        self.case_insensitive = yes;
        self
    }

    /// Build the automaton from `patterns`. Empty patterns are rejected by
    /// being ignored (an empty needle would match everywhere and is never a
    /// meaningful blacklist entry); the pattern indexes reported in matches
    /// refer to positions in the *original* list.
    pub fn build<P: AsRef<[u8]>>(self, patterns: impl IntoIterator<Item = P>) -> AhoCorasick {
        let mut states = vec![State::new()];
        let mut pattern_lens = Vec::new();
        let mut normalized = Vec::new();

        for (idx, pat) in patterns.into_iter().enumerate() {
            let bytes = pat.as_ref();
            pattern_lens.push(bytes.len());
            let norm: Vec<u8> = if self.case_insensitive {
                bytes.iter().map(|b| b.to_ascii_lowercase()).collect()
            } else {
                bytes.to_vec()
            };
            normalized.push(norm);
            if bytes.is_empty() {
                continue;
            }
            let mut cur = 0u32;
            for &b in &normalized[idx] {
                cur = match states[cur as usize].get(b) {
                    Some(next) => next,
                    None => {
                        let next = states.len() as u32;
                        states.push(State::new());
                        states[cur as usize].set(b, next);
                        next
                    }
                };
            }
            states[cur as usize].out.push(idx as u32);
        }

        // BFS to compute failure links and merge output sets.
        let mut queue = std::collections::VecDeque::new();
        let root_edges = states[0].edges.clone();
        for (_, next) in &root_edges {
            states[*next as usize].fail = 0;
            queue.push_back(*next);
        }
        while let Some(s) = queue.pop_front() {
            let edges = states[s as usize].edges.clone();
            for (b, next) in edges {
                queue.push_back(next);
                // Walk failure links of the parent to find the longest proper
                // suffix state that has a `b` edge.
                let mut f = states[s as usize].fail;
                let fail_next = loop {
                    if let Some(t) = states[f as usize].get(b) {
                        if t != next {
                            break t;
                        }
                    }
                    if f == 0 {
                        break 0;
                    }
                    f = states[f as usize].fail;
                };
                states[next as usize].fail = fail_next;
                let inherited = states[fail_next as usize].out.clone();
                states[next as usize].out.extend(inherited);
            }
        }

        AhoCorasick {
            states,
            patterns: normalized,
            pattern_lens,
            case_insensitive: self.case_insensitive,
        }
    }
}

/// A compiled multi-pattern matcher.
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    states: Vec<State>,
    /// Normalized (lowercased when case-insensitive) pattern bytes, kept for
    /// the pattern-vs-pattern subsumption queries used by the policy linter.
    patterns: Vec<Vec<u8>>,
    pattern_lens: Vec<usize>,
    case_insensitive: bool,
}

impl AhoCorasick {
    /// Build a case-sensitive automaton; see [`AhoCorasickBuilder`] for options.
    pub fn new<P: AsRef<[u8]>>(patterns: impl IntoIterator<Item = P>) -> Self {
        AhoCorasickBuilder::new().build(patterns)
    }

    /// Number of patterns this automaton was built from (including empties).
    pub fn pattern_count(&self) -> usize {
        self.pattern_lens.len()
    }

    /// Length in bytes of pattern `i` as given at build time.
    pub fn pattern_len(&self, i: usize) -> usize {
        self.pattern_lens[i]
    }

    /// Automaton size, root included (the DFA compiler walks every state).
    pub(crate) fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Does any pattern end at (or fail-propagate into) state `s`?
    pub(crate) fn state_is_match(&self, s: u32) -> bool {
        !self.states[s as usize].out.is_empty()
    }

    /// The normalized bytes with an outgoing edge anywhere in the automaton
    /// — the alphabet the DFA compiler builds byte classes from.
    pub(crate) fn used_bytes(&self) -> [bool; 256] {
        let mut used = [false; 256];
        for s in &self.states {
            for &(b, _) in &s.edges {
                used[b as usize] = true;
            }
        }
        used
    }

    /// Was the automaton built case-insensitively?
    pub(crate) fn is_case_insensitive(&self) -> bool {
        self.case_insensitive
    }

    #[inline]
    pub(crate) fn step(&self, mut state: u32, b: u8) -> u32 {
        let b = if self.case_insensitive {
            b.to_ascii_lowercase()
        } else {
            b
        };
        loop {
            if let Some(next) = self.states[state as usize].get(b) {
                return next;
            }
            if state == 0 {
                return 0;
            }
            state = self.states[state as usize].fail;
        }
    }

    /// Does any pattern occur in `haystack`? Stops at the first hit.
    pub fn is_match(&self, haystack: impl AsRef<[u8]>) -> bool {
        let mut state = 0u32;
        for &b in haystack.as_ref() {
            state = self.step(state, b);
            if !self.states[state as usize].out.is_empty() {
                return true;
            }
        }
        false
    }

    /// The first match in scan order (earliest end position), if any.
    pub fn find(&self, haystack: impl AsRef<[u8]>) -> Option<Match> {
        let hay = haystack.as_ref();
        let mut state = 0u32;
        for (i, &b) in hay.iter().enumerate() {
            state = self.step(state, b);
            if let Some(&pat) = self.states[state as usize].out.first() {
                let len = self.pattern_lens[pat as usize];
                return Some(Match {
                    pattern: pat as usize,
                    start: i + 1 - len,
                    end: i + 1,
                });
            }
        }
        None
    }

    /// All matches, in order of end position; overlapping matches are all
    /// reported.
    pub fn find_all(&self, haystack: impl AsRef<[u8]>) -> Vec<Match> {
        let hay = haystack.as_ref();
        let mut out = Vec::new();
        let mut state = 0u32;
        for (i, &b) in hay.iter().enumerate() {
            state = self.step(state, b);
            for &pat in &self.states[state as usize].out {
                let len = self.pattern_lens[pat as usize];
                out.push(Match {
                    pattern: pat as usize,
                    start: i + 1 - len,
                    end: i + 1,
                });
            }
        }
        out
    }

    /// Lazily iterate matches in end-position order without materializing
    /// them (streaming scans over large haystacks).
    pub fn find_iter<'a, 'h>(&'a self, haystack: &'h [u8]) -> FindIter<'a, 'h> {
        FindIter {
            ac: self,
            haystack,
            pos: 0,
            state: 0,
            pending: Vec::new(),
        }
    }

    /// The normalized bytes of pattern `i` (lowercased when the automaton is
    /// case-insensitive), as used for matching.
    pub fn pattern(&self, i: usize) -> &[u8] {
        &self.patterns[i]
    }

    /// Indexes of the *other* patterns occurring inside pattern `j`, sorted.
    ///
    /// Every haystack that matches pattern `j` necessarily also matches each
    /// returned pattern, so within a first-match-wins blacklist tier pattern
    /// `j` is subsumed by any of them. Exact duplicates of `j` are included
    /// (they trivially occur inside it); empty patterns never are.
    pub fn patterns_within(&self, j: usize) -> Vec<usize> {
        let mut pats: Vec<usize> = self
            .find_all(&self.patterns[j])
            .into_iter()
            .map(|m| m.pattern)
            .filter(|&i| i != j)
            .collect();
        pats.sort_unstable();
        pats.dedup();
        pats
    }

    /// The smallest index of a *different, non-identical* pattern occurring
    /// inside pattern `j`, if any — the canonical "this rule is subsumed by"
    /// witness. Identical duplicates are excluded so that duplicate detection
    /// and subsumption detection stay distinct diagnostics.
    pub fn subsuming_pattern(&self, j: usize) -> Option<usize> {
        self.patterns_within(j)
            .into_iter()
            .find(|&i| self.patterns[i] != self.patterns[j])
    }

    /// Indexes of the distinct patterns that occur in `haystack`, sorted.
    pub fn matching_patterns(&self, haystack: impl AsRef<[u8]>) -> Vec<usize> {
        let mut pats: Vec<usize> = self
            .find_all(haystack)
            .into_iter()
            .map(|m| m.pattern)
            .collect();
        pats.sort_unstable();
        pats.dedup();
        pats
    }
}

/// Iterator over matches (see [`AhoCorasick::find_iter`]).
pub struct FindIter<'a, 'h> {
    ac: &'a AhoCorasick,
    haystack: &'h [u8],
    pos: usize,
    state: u32,
    /// Matches ending at the current position not yet yielded (overlaps).
    pending: Vec<Match>,
}

impl Iterator for FindIter<'_, '_> {
    type Item = Match;

    fn next(&mut self) -> Option<Match> {
        loop {
            if let Some(m) = self.pending.pop() {
                return Some(m);
            }
            if self.pos >= self.haystack.len() {
                return None;
            }
            let b = self.haystack[self.pos];
            self.pos += 1;
            self.state = self.ac.step(self.state, b);
            let outs = &self.ac.states[self.state as usize].out;
            if !outs.is_empty() {
                // Push in reverse so pop() yields in out-list order.
                for &pat in outs.iter().rev() {
                    let len = self.ac.pattern_lens[pat as usize];
                    self.pending.push(Match {
                        pattern: pat as usize,
                        start: self.pos - len,
                        end: self.pos,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    #[test]
    fn finds_single_pattern() {
        let ac = AhoCorasick::new(["proxy"]);
        assert!(ac.is_match("http://x.com/tbproxy/af/query"));
        assert!(!ac.is_match("http://x.com/prox/y"));
        let m = ac.find("aproxyb").unwrap();
        assert_eq!((m.pattern, m.start, m.end), (0, 1, 6));
    }

    #[test]
    fn finds_overlapping_patterns() {
        let ac = AhoCorasick::new(["he", "she", "his", "hers"]);
        let ms = ac.find_all("ushers");
        let triples: Vec<_> = ms.iter().map(|m| (m.pattern, m.start, m.end)).collect();
        assert!(triples.contains(&(1, 1, 4))); // she
        assert!(triples.contains(&(0, 2, 4))); // he
        assert!(triples.contains(&(3, 2, 6))); // hers
    }

    #[test]
    fn case_insensitive_matches_urls() {
        let ac = AhoCorasickBuilder::new()
            .ascii_case_insensitive(true)
            .build(["hotspotshield", "israel"]);
        assert!(ac.is_match("www.HotspotShield.com"));
        assert!(ac.is_match("WWW.ISRAEL.NET"));
        assert!(!ac.is_match("hotspot-shield"));
    }

    #[test]
    fn empty_pattern_is_ignored() {
        let ac = AhoCorasick::new(["", "tor"]);
        assert!(ac.is_match("monitor"));
        assert!(!ac.is_match("xyz"));
        assert_eq!(ac.find("tor").unwrap().pattern, 1);
    }

    #[test]
    fn no_patterns_never_matches() {
        let ac = AhoCorasick::new(Vec::<&str>::new());
        assert!(!ac.is_match("anything"));
        assert!(ac.find("anything").is_none());
    }

    #[test]
    fn pattern_that_is_suffix_of_another() {
        let ac = AhoCorasick::new(["ultrasurf", "surf"]);
        let pats = ac.matching_patterns("go-ultrasurf-now");
        assert_eq!(pats, vec![0, 1]);
    }

    #[test]
    fn find_iter_equals_find_all() {
        let ac = AhoCorasick::new(["he", "she", "his", "hers"]);
        for hay in ["ushers", "", "hishehers", "xyz"] {
            let eager = ac.find_all(hay);
            let lazy: Vec<Match> = ac.find_iter(hay.as_bytes()).collect();
            assert_eq!(eager, lazy, "haystack {hay:?}");
        }
    }

    #[test]
    fn pattern_subsumption_queries() {
        let ac = AhoCorasickBuilder::new()
            .ascii_case_insensitive(true)
            .build(["ultra", "UltraSurf", "surf", "proxy", "ultrasurf", ""]);
        // "UltraSurf" contains "ultra", "surf", and its duplicate (index 4).
        assert_eq!(ac.patterns_within(1), vec![0, 2, 4]);
        // The canonical subsumer skips the identical duplicate.
        assert_eq!(ac.subsuming_pattern(1), Some(0));
        assert_eq!(ac.subsuming_pattern(4), Some(0));
        // "ultra" and "proxy" are not subsumed by anything.
        assert_eq!(ac.subsuming_pattern(0), None);
        assert_eq!(ac.subsuming_pattern(3), None);
        // Empty patterns never subsume and are never subsumed.
        assert_eq!(ac.patterns_within(5), Vec::<usize>::new());
        assert_eq!(ac.pattern(1), b"ultrasurf");
    }

    #[test]
    fn agrees_with_naive_on_fixed_cases() {
        let pats = ["proxy", "israel", "ultra", "sur", "ultrasurf", "a"];
        let ac = AhoCorasick::new(pats);
        for hay in [
            "",
            "a",
            "proxyproxy",
            "ultrasurfisrael",
            "xxultraxxsurxx",
            "banana",
            "isra",
        ] {
            let mut got = ac
                .find_all(hay)
                .into_iter()
                .map(|m| (m.pattern, m.start))
                .collect::<Vec<_>>();
            got.sort_unstable();
            let mut want = naive::find_all(&pats, hay.as_bytes());
            want.sort_unstable();
            assert_eq!(got, want, "haystack {hay:?}");
        }
    }
}
