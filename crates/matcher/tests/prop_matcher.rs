//! Property tests: the optimized engines agree with the naive references on
//! arbitrary inputs.

use filterscope_core::Ipv4Cidr;
use filterscope_match::{naive, AhoCorasick, CidrSet, DomainTrie};
use proptest::prelude::*;

proptest! {
    /// Aho–Corasick reports exactly the matches a quadratic scan finds.
    #[test]
    fn aho_corasick_equals_naive(
        patterns in proptest::collection::vec("[a-c]{1,4}", 0..6),
        haystack in "[a-c]{0,40}",
    ) {
        let ac = AhoCorasick::new(&patterns);
        let mut got: Vec<(usize, usize)> = ac
            .find_all(haystack.as_bytes())
            .into_iter()
            .map(|m| (m.pattern, m.start))
            .collect();
        got.sort_unstable();
        let mut want = naive::find_all(&patterns, haystack.as_bytes());
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// `is_match` agrees with the full scan.
    #[test]
    fn aho_corasick_is_match_consistent(
        patterns in proptest::collection::vec("[a-b]{1,3}", 1..5),
        haystack in "[a-b]{0,30}",
    ) {
        let ac = AhoCorasick::new(&patterns);
        prop_assert_eq!(
            ac.is_match(haystack.as_bytes()),
            naive::is_match(&patterns, haystack.as_bytes())
        );
    }

    /// CidrSet containment equals a linear scan over the source blocks.
    #[test]
    fn cidr_set_equals_linear(
        blocks in proptest::collection::vec((any::<u32>(), 8u8..=32), 0..20),
        probes in proptest::collection::vec(any::<u32>(), 0..50),
    ) {
        let blocks: Vec<Ipv4Cidr> = blocks
            .into_iter()
            .map(|(addr, len)| Ipv4Cidr::new(std::net::Ipv4Addr::from(addr), len).unwrap())
            .collect();
        let set = CidrSet::from_blocks(blocks.iter().copied());
        for p in probes {
            let a = std::net::Ipv4Addr::from(p);
            prop_assert_eq!(set.contains(a), naive::cidr_contains(&blocks, a));
        }
    }

    /// DomainTrie matching equals the naive suffix check.
    #[test]
    fn domain_trie_equals_naive(
        entries in proptest::collection::vec("[a-c]{1,3}(\\.[a-c]{1,3}){0,2}", 0..8),
        host in "[a-d]{1,3}(\\.[a-d]{1,3}){0,3}",
    ) {
        let entry_refs: Vec<&str> = entries.iter().map(|s| s.as_str()).collect();
        let trie = DomainTrie::from_entries(entry_refs.iter().copied());
        prop_assert_eq!(
            trie.matches(&host),
            naive::domain_matches(&entry_refs, &host)
        );
    }

    /// Every match reported by find_all is an actual occurrence.
    #[test]
    fn matches_are_real_occurrences(
        patterns in proptest::collection::vec("[a-d]{1,5}", 1..6),
        haystack in "[a-d]{0,60}",
    ) {
        let ac = AhoCorasick::new(&patterns);
        for m in ac.find_all(haystack.as_bytes()) {
            prop_assert_eq!(
                &haystack.as_bytes()[m.start..m.end],
                patterns[m.pattern].as_bytes()
            );
        }
    }
}
