//! Property tests: the optimized engines agree with the naive references on
//! arbitrary inputs.

use filterscope_core::{ByteReader, ByteWriter, Ipv4Cidr};
use filterscope_match::{naive, AcDfa, AhoCorasick, CidrSet, DomainIndex, DomainTrie};
use proptest::prelude::*;

proptest! {
    /// Aho–Corasick reports exactly the matches a quadratic scan finds.
    #[test]
    fn aho_corasick_equals_naive(
        patterns in proptest::collection::vec("[a-c]{1,4}", 0..6),
        haystack in "[a-c]{0,40}",
    ) {
        let ac = AhoCorasick::new(&patterns);
        let mut got: Vec<(usize, usize)> = ac
            .find_all(haystack.as_bytes())
            .into_iter()
            .map(|m| (m.pattern, m.start))
            .collect();
        got.sort_unstable();
        let mut want = naive::find_all(&patterns, haystack.as_bytes());
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// `is_match` agrees with the full scan.
    #[test]
    fn aho_corasick_is_match_consistent(
        patterns in proptest::collection::vec("[a-b]{1,3}", 1..5),
        haystack in "[a-b]{0,30}",
    ) {
        let ac = AhoCorasick::new(&patterns);
        prop_assert_eq!(
            ac.is_match(haystack.as_bytes()),
            naive::is_match(&patterns, haystack.as_bytes())
        );
    }

    /// CidrSet containment equals a linear scan over the source blocks.
    #[test]
    fn cidr_set_equals_linear(
        blocks in proptest::collection::vec((any::<u32>(), 8u8..=32), 0..20),
        probes in proptest::collection::vec(any::<u32>(), 0..50),
    ) {
        let blocks: Vec<Ipv4Cidr> = blocks
            .into_iter()
            .map(|(addr, len)| Ipv4Cidr::new(std::net::Ipv4Addr::from(addr), len).unwrap())
            .collect();
        let set = CidrSet::from_blocks(blocks.iter().copied());
        for p in probes {
            let a = std::net::Ipv4Addr::from(p);
            prop_assert_eq!(set.contains(a), naive::cidr_contains(&blocks, a));
        }
    }

    /// DomainTrie matching equals the naive suffix check.
    #[test]
    fn domain_trie_equals_naive(
        entries in proptest::collection::vec("[a-c]{1,3}(\\.[a-c]{1,3}){0,2}", 0..8),
        host in "[a-d]{1,3}(\\.[a-d]{1,3}){0,3}",
    ) {
        let entry_refs: Vec<&str> = entries.iter().map(|s| s.as_str()).collect();
        let trie = DomainTrie::from_entries(entry_refs.iter().copied());
        prop_assert_eq!(
            trie.matches(&host),
            naive::domain_matches(&entry_refs, &host)
        );
    }

    /// The dense DFA compiled for the policy artifact agrees with the
    /// sparse automaton it was tabulated from, and survives a
    /// serialization round trip unchanged.
    #[test]
    fn ac_dfa_equals_automaton(
        patterns in proptest::collection::vec("[a-dA-D]{1,4}", 0..6),
        haystacks in proptest::collection::vec("[a-eA-E]{0,30}", 0..10),
        ci in any::<bool>(),
    ) {
        let ac = filterscope_match::aho_corasick::AhoCorasickBuilder::new()
            .ascii_case_insensitive(ci)
            .build(&patterns);
        let dfa = AcDfa::from_automaton(&ac);
        let mut w = ByteWriter::new();
        dfa.write_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = AcDfa::read_from(&mut r).unwrap();
        prop_assert!(r.is_exhausted());
        prop_assert_eq!(&dfa, &back);
        for hay in &haystacks {
            let want = ac.is_match(hay.as_bytes());
            prop_assert_eq!(dfa.is_match(hay), want, "haystack {:?}", hay);
            prop_assert_eq!(back.is_match(hay), want, "haystack {:?}", hay);
        }
    }

    /// The flat domain index agrees with the pointer-chasing trie on
    /// arbitrary entries and hosts, before and after serialization.
    #[test]
    fn domain_index_equals_trie(
        entries in proptest::collection::vec(
            "(\\.){0,1}[a-cA-C]{1,3}(\\.[a-cA-C]{1,3}){0,2}", 0..8),
        hosts in proptest::collection::vec(
            "[a-dA-D]{1,3}(\\.[a-dA-D]{1,3}){0,3}(\\.){0,1}", 0..10),
    ) {
        let entry_refs: Vec<&str> = entries.iter().map(|s| s.as_str()).collect();
        let trie = DomainTrie::from_entries(entry_refs.iter().copied());
        let index = DomainIndex::from_entries(entry_refs.iter().copied());
        let mut w = ByteWriter::new();
        index.write_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = DomainIndex::read_from(&mut r).unwrap();
        prop_assert!(r.is_exhausted());
        prop_assert_eq!(&index, &back);
        for host in &hosts {
            let want = trie.lookup(host);
            prop_assert_eq!(index.lookup(host), want, "host {:?}", host);
            prop_assert_eq!(back.lookup(host), want, "host {:?}", host);
        }
    }

    /// CidrSet queries survive a serialization round trip unchanged.
    #[test]
    fn cidr_set_roundtrip_preserves_containment(
        blocks in proptest::collection::vec((any::<u32>(), 8u8..=32), 0..16),
        probes in proptest::collection::vec(any::<u32>(), 0..40),
    ) {
        let blocks: Vec<Ipv4Cidr> = blocks
            .into_iter()
            .map(|(addr, len)| Ipv4Cidr::new(std::net::Ipv4Addr::from(addr), len).unwrap())
            .collect();
        let set = CidrSet::from_blocks(blocks.iter().copied());
        let mut w = ByteWriter::new();
        set.write_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = CidrSet::read_from(&mut r).unwrap();
        prop_assert!(r.is_exhausted());
        for p in probes {
            let a = std::net::Ipv4Addr::from(p);
            prop_assert_eq!(set.contains(a), back.contains(a));
        }
    }

    /// Every match reported by find_all is an actual occurrence.
    #[test]
    fn matches_are_real_occurrences(
        patterns in proptest::collection::vec("[a-d]{1,5}", 1..6),
        haystack in "[a-d]{0,60}",
    ) {
        let ac = AhoCorasick::new(&patterns);
        for m in ac.find_all(haystack.as_bytes()) {
            prop_assert_eq!(
                &haystack.as_bytes()[m.start..m.end],
                patterns[m.pattern].as_bytes()
            );
        }
    }
}
