//! Interleaving-explorer checks over the serve daemon's concurrency core.
//!
//! These tests run the *production* functions from `filterscope_stream::proto`
//! — not models of them — under `interleave::Explorer`, which enumerates
//! every interleaving of their lock/atomic/channel operations up to a
//! preemption bound. Four protocols are checked (see `proto`'s module
//! docs): shard delta take/fold, policy hot swap at batch boundaries,
//! append-before-merge snapshot ordering, and drain-then-final-snapshot
//! shutdown.
//!
//! The default tests explore at 2 preemptions and finish in seconds; the
//! `#[ignore]`d deep run raises the bound and prints schedule counts and
//! prune rates. `explorer_finds_pre_pr9_counter_race` pins the historical
//! counter-derivation bug as a negative: the explorer must *find* that
//! race, deterministically, and replay it from its seed.

use std::sync::Arc;

use filterscope_analysis::{AnalysisContext, AnalysisSuite, Selection, SuiteParams};
use filterscope_core::{ProxyId, Timestamp};
use filterscope_logformat::record::RecordBuilder;
use filterscope_logformat::RequestUrl;
use filterscope_proxy::{Decision, PolicyEngine, Trigger};
use filterscope_snapstore::{encode_value, suite_at, Frame, FrameKind, SUITE_KEY};
use filterscope_stream::metrics::{ConnStats, ServerStats};
use filterscope_stream::proto::{
    await_drain, fold_shards, ingest_batch, run_worker, snapshot_cycle, ConnHandle, Decide,
    FoldTotals, LineParser, PublishCounters, Shard, SnapSink,
};
use filterscope_stream::shutdown::{request, requested};
use filterscope_stream::PolicyCell;
use interleave::{sync_channel, thread, Explorer, FailureKind, IAtomicBool, IMutex, Ordering};

// ---------------------------------------------------------------------------
// Fixture: canonical record batches and the expected sequential result
// ---------------------------------------------------------------------------

fn fresh_suite() -> AnalysisSuite {
    AnalysisSuite::with_selection(&SuiteParams::new(3), &Selection::default_suite())
}

fn line(i: usize) -> String {
    RecordBuilder::new(
        Timestamp::parse_fields("2011-08-03", &format!("10:00:{i:02}")).unwrap(),
        ProxyId::Sg42,
        RequestUrl::http(&format!("host{i}.example.com"), &format!("/p{i}")),
    )
    .build()
    .write_csv()
}

struct Fixture {
    ctx: AnalysisContext,
    /// One record.
    batch_a: Vec<u8>,
    /// One record, different host.
    batch_b: Vec<u8>,
    /// Two records in one payload.
    batch_two: Vec<u8>,
    /// `render_all` of a sequential single-threaded pass over a then b.
    expected_ab: String,
}

impl Fixture {
    fn new() -> Fixture {
        let ctx = AnalysisContext::standard(None);
        let batch_a = format!("{}\n", line(1)).into_bytes();
        let batch_b = format!("{}\n", line(2)).into_bytes();
        let batch_two = format!("{}\n{}\n", line(3), line(4)).into_bytes();
        let expected_ab = sequential_render(&ctx, &[&batch_a, &batch_b]);
        Fixture {
            ctx,
            batch_a,
            batch_b,
            batch_two,
            expected_ab,
        }
    }
}

/// The ground truth the fold must reproduce: ingest every batch on one
/// thread (std passthrough backend), then merge and render.
fn sequential_render(ctx: &AnalysisContext, batches: &[&[u8]]) -> String {
    let stats = ServerStats::new();
    let conn = ConnStats::new(0, "seq".to_string());
    let delta = IMutex::new(Shard::new(fresh_suite()));
    let mut parser = LineParser::new();
    for payload in batches {
        ingest_batch::<PolicyEngine>(&mut parser, payload, ctx, &delta, None, &conn, &stats);
    }
    let mut shard = delta.into_inner();
    let mut global = fresh_suite();
    global.merge(shard.suite.take_delta());
    global.render_all(ctx)
}

/// Register a fresh connection (stats + empty shard) on `conns`.
fn add_conn(conns: &IMutex<Vec<ConnHandle>>, id: u64) -> (Arc<ConnStats>, Arc<IMutex<Shard>>) {
    let conn = Arc::new(ConnStats::new(id, format!("model-{id}")));
    let delta = Arc::new(IMutex::new(Shard::new(fresh_suite())));
    conns.lock().push(ConnHandle {
        stats: Arc::clone(&conn),
        delta: Arc::clone(&delta),
    });
    (conn, delta)
}

// ---------------------------------------------------------------------------
// Protocol 1: shard delta take/fold
// ---------------------------------------------------------------------------

/// Two workers ingest into their own shards while the main task folds
/// concurrently; a second fold collects the stragglers. Under every
/// schedule the folded result must equal the sequential pass, and the
/// exact fold counts must account for every record.
fn model_fold_equivalence(fx: &Fixture) {
    let stats = ServerStats::new();
    let conns: IMutex<Vec<ConnHandle>> = IMutex::new(Vec::new());
    let (conn_a, delta_a) = add_conn(&conns, 0);
    let (conn_b, delta_b) = add_conn(&conns, 1);
    let mut global = fresh_suite();
    let mut total = FoldTotals::default();
    thread::scope(|s| {
        s.spawn(|| {
            let mut parser = LineParser::new();
            ingest_batch::<PolicyEngine>(
                &mut parser,
                &fx.batch_a,
                &fx.ctx,
                &delta_a,
                None,
                &conn_a,
                &stats,
            );
        });
        s.spawn(|| {
            let mut parser = LineParser::new();
            ingest_batch::<PolicyEngine>(
                &mut parser,
                &fx.batch_b,
                &fx.ctx,
                &delta_b,
                None,
                &conn_b,
                &stats,
            );
        });
        // Fold while the workers may still be mid-batch.
        let (r, e) = fold_shards(&conns, &mut global);
        total.records += r;
        total.parse_errors += e;
    });
    // Workers joined; one more fold must pick up everything left.
    let (r, e) = fold_shards(&conns, &mut global);
    total.records += r;
    total.parse_errors += e;
    assert_eq!(total.records, 2, "fold counts must cover every record");
    assert_eq!(total.parse_errors, 0);
    assert_eq!(stats.records.load(Ordering::SeqCst), 2);
    assert_eq!(conn_a.records.load(Ordering::SeqCst), 1);
    assert_eq!(conn_b.records.load(Ordering::SeqCst), 1);
    assert_eq!(
        global.render_all(&fx.ctx),
        fx.expected_ab,
        "fold(deltas) diverged from the sequential ingest"
    );
}

#[test]
fn fold_is_equivalent_to_sequential_ingest_under_all_schedules() {
    let fx = Fixture::new();
    let report = Explorer::new()
        .preemptions(2)
        .explore(|| model_fold_equivalence(&fx));
    println!("fold equivalence (2 preemptions): {report}");
    assert!(report.schedules > 1, "exploration must branch");
}

// ---------------------------------------------------------------------------
// Protocol 2: policy hot swap lands on batch boundaries
// ---------------------------------------------------------------------------

/// Deterministic stand-in for the compiled engine: generation 1 allows
/// everything, generation 2 denies everything. A swap that lands
/// mid-batch would leave an odd allowed/denied count.
struct Stamp(u64);

impl Decide for Stamp {
    fn decide_url(&self, _url: &RequestUrl) -> Decision {
        if self.0 == 1 {
            Decision::Allow
        } else {
            Decision::Deny(Trigger::Keyword)
        }
    }
}

/// One worker drains two 2-record batches through the real `run_worker`
/// while another task swaps the policy cell. Batches of two records make
/// a mid-batch swap visible as odd decision counters.
fn model_policy_swap(fx: &Fixture) {
    let stats = ServerStats::new();
    let conn = Arc::new(ConnStats::new(0, "swap".to_string()));
    let delta = Arc::new(IMutex::new(Shard::new(fresh_suite())));
    let cell = PolicyCell::new(Stamp(1));
    let (tx, rx) = sync_channel::<Vec<u8>>(2);
    conn.queue_depth.fetch_add(1, Ordering::SeqCst);
    tx.send(fx.batch_two.clone()).unwrap();
    conn.queue_depth.fetch_add(1, Ordering::SeqCst);
    tx.send(fx.batch_two.clone()).unwrap();
    drop(tx);
    thread::scope(|s| {
        s.spawn(|| run_worker(rx, &conn, &stats, &delta, &fx.ctx, Some(&cell)));
        s.spawn(|| {
            cell.swap(Stamp(2));
        });
    });
    let allowed = stats.policy_allowed.load(Ordering::SeqCst);
    let denied = stats.policy_denied.load(Ordering::SeqCst);
    assert_eq!(allowed + denied, 4, "every record must be decided");
    assert_eq!(
        allowed % 2,
        0,
        "a policy swap split a batch: {allowed} allowed / {denied} denied"
    );
    assert_eq!(cell.version(), 2);
    assert!(
        conn.done.load(Ordering::SeqCst),
        "worker must drain and exit"
    );
    assert_eq!(conn.queue_depth.load(Ordering::SeqCst), 0);
    assert_eq!(stats.records.load(Ordering::SeqCst), 4);
}

#[test]
fn policy_swap_never_splits_a_batch_under_any_schedule() {
    let fx = Fixture::new();
    let report = Explorer::new()
        .preemptions(2)
        .explore(|| model_policy_swap(&fx));
    println!("policy swap (2 preemptions): {report}");
    assert!(report.schedules > 1, "exploration must branch");
}

// ---------------------------------------------------------------------------
// Protocol 3: append-before-merge snapshot ordering
// ---------------------------------------------------------------------------

/// In-memory [`SnapSink`] that stores real snapstore frames and asserts
/// the log/report equivalence invariant at every publish: folding the
/// frames must reproduce the published global suite and the exact folded
/// counts. Also asserts the zero-delta skip — an empty cycle must never
/// reach the log.
struct MemSink<'a> {
    ctx: &'a AnalysisContext,
    frames: Vec<Frame>,
    next_seq: u64,
    /// Compact once the log holds this many frames (`usize::MAX` = never).
    checkpoint_after: usize,
    publishes: u64,
}

impl<'a> MemSink<'a> {
    fn new(ctx: &'a AnalysisContext, checkpoint_after: usize) -> MemSink<'a> {
        MemSink {
            ctx,
            frames: Vec::new(),
            next_seq: 0,
            checkpoint_after,
            publishes: 0,
        }
    }
}

impl SnapSink for MemSink<'_> {
    fn append_delta(
        &mut self,
        ts: u64,
        records: u64,
        parse_errors: u64,
        delta: &AnalysisSuite,
    ) -> Result<(), String> {
        assert!(
            records > 0 || parse_errors > 0,
            "a zero-delta cycle reached the log"
        );
        self.next_seq += 1;
        self.frames.push(Frame {
            kind: FrameKind::Delta,
            seq: self.next_seq,
            ts,
            key: SUITE_KEY.to_string(),
            value: encode_value(records, parse_errors, delta),
        });
        Ok(())
    }

    fn should_checkpoint(&self) -> bool {
        self.frames.len() >= self.checkpoint_after
    }

    fn checkpoint(
        &mut self,
        ts: u64,
        records: u64,
        parse_errors: u64,
        global: &AnalysisSuite,
    ) -> Result<(), String> {
        self.next_seq += 1;
        self.frames = vec![Frame {
            kind: FrameKind::Checkpoint,
            seq: self.next_seq,
            ts,
            key: SUITE_KEY.to_string(),
            value: encode_value(records, parse_errors, global),
        }];
        Ok(())
    }

    fn publish(&mut self, counters: PublishCounters, global: &AnalysisSuite) -> Result<(), String> {
        self.publishes += 1;
        match suite_at(&self.frames, u64::MAX).map_err(|e| e.to_string())? {
            Some(view) => {
                assert_eq!(
                    view.records, counters.folded.records,
                    "log record count diverged from the fold bookkeeping"
                );
                assert_eq!(view.parse_errors, counters.folded.parse_errors);
                assert_eq!(
                    view.suite.render_all(self.ctx),
                    global.render_all(self.ctx),
                    "folding the log diverged from the published report"
                );
            }
            None => {
                assert_eq!(
                    counters.folded.records, 0,
                    "records were folded but the log is empty"
                );
            }
        }
        Ok(())
    }
}

/// One worker ingests two batches while the main task runs snapshot
/// cycles concurrently, then a final cycle after the join. The MemSink
/// invariant is asserted at *every* publish under *every* schedule;
/// schedules that produce two delta frames also exercise checkpoint
/// compaction (threshold 2).
fn model_snaplog_order(fx: &Fixture) {
    let stats = ServerStats::new();
    let conns: IMutex<Vec<ConnHandle>> = IMutex::new(Vec::new());
    let (conn, delta) = add_conn(&conns, 0);
    let mut global = fresh_suite();
    let mut folded = FoldTotals::default();
    let mut sink = MemSink::new(&fx.ctx, 2);
    thread::scope(|s| {
        s.spawn(|| {
            let mut parser = LineParser::new();
            ingest_batch::<PolicyEngine>(
                &mut parser,
                &fx.batch_a,
                &fx.ctx,
                &delta,
                None,
                &conn,
                &stats,
            );
            ingest_batch::<PolicyEngine>(
                &mut parser,
                &fx.batch_b,
                &fx.ctx,
                &delta,
                None,
                &conn,
                &stats,
            );
        });
        for _ in 0..2 {
            let errors = snapshot_cycle(
                &conns,
                fresh_suite(),
                &mut global,
                &mut folded,
                &stats,
                &mut sink,
            );
            assert!(errors.is_empty(), "{errors:?}");
        }
    });
    let errors = snapshot_cycle(
        &conns,
        fresh_suite(),
        &mut global,
        &mut folded,
        &stats,
        &mut sink,
    );
    assert!(errors.is_empty(), "{errors:?}");
    assert_eq!(
        folded.records, 2,
        "the final cycle must have folded everything"
    );
    assert_eq!(global.render_all(&fx.ctx), fx.expected_ab);
    assert_eq!(sink.publishes, 3);
    assert_eq!(stats.snapshot_errors.load(Ordering::SeqCst), 0);
}

#[test]
fn snaplog_append_precedes_merge_under_all_schedules() {
    let fx = Fixture::new();
    let report = Explorer::new()
        .preemptions(2)
        .explore(|| model_snaplog_order(&fx));
    println!("snaplog ordering (2 preemptions): {report}");
    assert!(report.schedules > 1, "exploration must branch");
}

// ---------------------------------------------------------------------------
// Protocol 4: drain-then-final-snapshot shutdown
// ---------------------------------------------------------------------------

/// A worker drains a pre-filled queue through the real `run_worker`
/// while the main task requests shutdown, awaits the drain with a
/// bounded poll budget, and publishes the final snapshot. Whenever the
/// drain completes inside the budget, the final snapshot must be
/// complete; the MemSink log/report invariant holds unconditionally.
fn model_drain_shutdown(fx: &Fixture) {
    let stats = ServerStats::new();
    let conns: IMutex<Vec<ConnHandle>> = IMutex::new(Vec::new());
    let (conn, delta) = add_conn(&conns, 0);
    let flag = IAtomicBool::new(false);
    let (tx, rx) = sync_channel::<Vec<u8>>(2);
    conn.queue_depth.fetch_add(1, Ordering::SeqCst);
    tx.send(fx.batch_a.clone()).unwrap();
    conn.queue_depth.fetch_add(1, Ordering::SeqCst);
    tx.send(fx.batch_b.clone()).unwrap();
    drop(tx);
    let mut global = fresh_suite();
    let mut folded = FoldTotals::default();
    let mut sink = MemSink::new(&fx.ctx, usize::MAX);
    let mut drained = false;
    thread::scope(|s| {
        s.spawn(|| {
            run_worker::<PolicyEngine>(rx, &conn, &stats, &delta, &fx.ctx, None);
        });
        request(&flag);
        assert!(requested(&flag));
        // Production paces this loop with a sleep and a wall-clock
        // deadline; the model's budget is a poll count.
        let mut polls = 0u32;
        drained = await_drain(&conns, || {
            polls += 1;
            polls > 5
        });
        let errors = snapshot_cycle(
            &conns,
            fresh_suite(),
            &mut global,
            &mut folded,
            &stats,
            &mut sink,
        );
        assert!(errors.is_empty(), "{errors:?}");
    });
    if drained {
        assert_eq!(
            folded.records, 2,
            "a drained shutdown must publish every record"
        );
        assert_eq!(global.render_all(&fx.ctx), fx.expected_ab);
        assert!(conn.done.load(Ordering::SeqCst));
        assert_eq!(conn.queue_depth.load(Ordering::SeqCst), 0);
    }
}

#[test]
fn drained_shutdown_publishes_complete_final_snapshot() {
    let fx = Fixture::new();
    let report = Explorer::new()
        .preemptions(2)
        .explore(|| model_drain_shutdown(&fx));
    println!("drain shutdown (2 preemptions): {report}");
    assert!(report.schedules > 1, "exploration must branch");
}

// ---------------------------------------------------------------------------
// Regression: the pre-snaplog counter-derivation race
// ---------------------------------------------------------------------------

/// The buggy shape this repo shipped before the snap log landed: the
/// per-cycle delta count was derived from the *global* ingest counters
/// (`now - last`) instead of taken under the shard locks. A worker that
/// ingests between the fold and the counter read makes the derived count
/// disagree with the folded content — the log frame then claims records
/// its payload does not contain (or a folded shard is skipped as empty).
/// The assert states the implicit claim the buggy code made.
fn counter_race_model(fx: &Fixture) {
    let stats = ServerStats::new();
    let conns: IMutex<Vec<ConnHandle>> = IMutex::new(Vec::new());
    let (conn, delta) = add_conn(&conns, 0);
    thread::scope(|s| {
        s.spawn(|| {
            let mut parser = LineParser::new();
            ingest_batch::<PolicyEngine>(
                &mut parser,
                &fx.batch_a,
                &fx.ctx,
                &delta,
                None,
                &conn,
                &stats,
            );
            ingest_batch::<PolicyEngine>(
                &mut parser,
                &fx.batch_b,
                &fx.ctx,
                &delta,
                None,
                &conn,
                &stats,
            );
        });
        let mut cycle = fresh_suite();
        let (exact, _) = fold_shards(&conns, &mut cycle);
        let derived = stats.records.load(Ordering::SeqCst);
        assert_eq!(
            derived, exact,
            "per-cycle delta derived from global counters disagrees with the folded content"
        );
    });
}

#[test]
fn explorer_finds_pre_snaplog_counter_race() {
    let fx = Fixture::new();
    let explore = || {
        Explorer::new()
            .preemptions(2)
            .try_explore(|| counter_race_model(&fx))
    };
    let failure = explore().expect_err("the counter-derivation race must be found");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(!failure.seed.is_empty(), "failure must carry a replay seed");
    assert!(
        failure.message.contains("disagrees"),
        "unexpected counterexample: {failure}"
    );
    println!(
        "counter race found after {} schedule(s), seed {}",
        failure.schedules, failure.seed
    );

    // The counterexample is deterministic: a second exploration finds the
    // same schedule.
    let again = explore().expect_err("second exploration must find the race too");
    assert_eq!(again.seed, failure.seed);

    // And the seed replays to the identical failure.
    let seed = failure.seed.clone();
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Explorer::replay(&seed, || counter_race_model(&fx));
    }))
    .expect_err("replay must reproduce the race");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        message.contains("disagrees"),
        "replay failed differently: {message}"
    );
}

// ---------------------------------------------------------------------------
// Deep exploration (not part of the default test run)
// ---------------------------------------------------------------------------

/// Higher-bound sweep over all four protocols, printing schedule counts
/// and prune rates; run with `cargo test -p filterscope-stream -- --ignored`.
/// The sleep-set pruning under a preemption bound is a heuristic, so the
/// policy-swap protocol is also swept unpruned and must visit at least as
/// many schedules.
#[test]
#[ignore]
fn deep_exploration_all_protocols() {
    let fx = Fixture::new();
    let deep = |name: &str, model: &dyn Fn()| {
        let report = Explorer::new().preemptions(3).explore(model);
        println!("{name} (3 preemptions, pruned): {report}");
        report
    };
    deep("fold equivalence", &|| model_fold_equivalence(&fx));
    let pruned = deep("policy swap", &|| model_policy_swap(&fx));
    deep("snaplog ordering", &|| model_snaplog_order(&fx));
    deep("drain shutdown", &|| model_drain_shutdown(&fx));

    let unpruned = Explorer::new()
        .preemptions(3)
        .pruning(false)
        .max_schedules(10_000_000)
        .explore(|| model_policy_swap(&fx));
    println!("policy swap (3 preemptions, unpruned): {unpruned}");
    assert!(
        unpruned.schedules >= pruned.schedules,
        "pruning must only remove schedules"
    );
}
