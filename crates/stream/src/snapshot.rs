//! Atomic checkpoint snapshots for the serve daemon.
//!
//! Each snapshot is three files in the snapshot directory:
//!
//! * `report.txt` — the rendered analysis report, byte-identical to what
//!   `filterscope analyze` prints to stdout for the same records;
//! * `summary.json` — the machine-readable summary, byte-identical to
//!   `analyze --json`;
//! * `status.json` — snapshot sequence number and ingest counters.
//!
//! Every file is written to a `.tmp` sibling first and renamed into
//! place, so a reader never observes a torn file. `status.json` is
//! renamed last: once a reader sees sequence `n` in `status.json`, the
//! matching report and summary are already in place.

use std::path::{Path, PathBuf};

use filterscope_core::Result;

/// Writes atomic snapshots into a directory.
#[derive(Debug)]
pub struct SnapshotWriter {
    dir: PathBuf,
    seq: u64,
}

impl SnapshotWriter {
    /// Create the snapshot directory (and parents) if needed.
    pub fn new(dir: &Path) -> Result<SnapshotWriter> {
        std::fs::create_dir_all(dir)?;
        Ok(SnapshotWriter {
            dir: dir.to_path_buf(),
            seq: 0,
        })
    }

    /// The snapshot directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence number of the last snapshot written (0 = none yet).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Write one snapshot: `report` (already newline-terminated by the
    /// caller), `summary` JSON, and a `status.json` recording the new
    /// sequence number plus ingest counters. Returns the new sequence.
    pub fn write(
        &mut self,
        report: &str,
        summary: &str,
        records: u64,
        parse_errors: u64,
    ) -> Result<u64> {
        let seq = self.seq + 1;
        self.replace("report.txt", report.as_bytes())?;
        self.replace("summary.json", summary.as_bytes())?;
        let status = format!(
            "{{\n  \"snapshot\": {seq},\n  \"records\": {records},\n  \"parse_errors\": {parse_errors}\n}}\n"
        );
        self.replace("status.json", status.as_bytes())?;
        self.seq = seq;
        Ok(seq)
    }

    fn replace(&self, name: &str, bytes: &[u8]) -> Result<()> {
        let tmp = self.dir.join(format!("{name}.tmp"));
        let fin = self.dir.join(name);
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, &fin)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fs-snapshot-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn snapshots_replace_in_place_and_bump_seq() {
        let dir = temp_dir("basic");
        let mut writer = SnapshotWriter::new(&dir).unwrap();
        assert_eq!(writer.seq(), 0);

        assert_eq!(writer.write("report one\n", "{}", 10, 0).unwrap(), 1);
        assert_eq!(writer.write("report two\n", "{\"a\":1}", 25, 2).unwrap(), 2);
        assert_eq!(writer.seq(), 2);

        let report = std::fs::read_to_string(dir.join("report.txt")).unwrap();
        assert_eq!(report, "report two\n");
        let summary = std::fs::read_to_string(dir.join("summary.json")).unwrap();
        assert_eq!(summary, "{\"a\":1}");
        let status = std::fs::read_to_string(dir.join("status.json")).unwrap();
        assert!(status.contains("\"snapshot\": 2"), "{status}");
        assert!(status.contains("\"records\": 25"), "{status}");
        assert!(status.contains("\"parse_errors\": 2"), "{status}");

        // No temp files linger.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name();
            assert!(
                !name.to_string_lossy().ends_with(".tmp"),
                "leftover temp file {name:?}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
