//! Atomic checkpoint snapshots for the serve daemon.
//!
//! Each snapshot is three files in the snapshot directory:
//!
//! * `report.txt` — the rendered analysis report, byte-identical to what
//!   `filterscope analyze` prints to stdout for the same records;
//! * `summary.json` — the machine-readable summary, byte-identical to
//!   `analyze --json`;
//! * `status.json` — snapshot sequence number and ingest counters.
//!
//! Every file is written to a `.tmp` sibling first, fsynced, and renamed
//! into place, so a reader never observes a torn file and a crashed host
//! never resurrects a pre-rename ghost: without the fsync before the
//! rename, a power loss can leave the *final* name pointing at a file
//! whose data blocks were never flushed. `status.json` is renamed last:
//! once a reader sees sequence `n` in `status.json`, the matching report
//! and summary are already in place. Stale `.tmp` siblings from a
//! previous crashed run are removed at startup.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use filterscope_core::Result;

/// Snapshot-log observability recorded into `status.json` when the serve
/// daemon writes a snap log alongside its snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapLogStatus {
    /// Sequence of the last frame appended to the log.
    pub log_seq: u64,
    /// Frames recovered from the log at startup (0 on a fresh log).
    pub recovered_frames: u64,
}

/// Writes atomic snapshots into a directory.
#[derive(Debug)]
pub struct SnapshotWriter {
    dir: PathBuf,
    seq: u64,
}

impl SnapshotWriter {
    /// Create the snapshot directory (and parents) if needed, and clean
    /// up `.tmp` files a crashed predecessor may have left mid-write.
    pub fn new(dir: &Path) -> Result<SnapshotWriter> {
        std::fs::create_dir_all(dir)?;
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "tmp") && path.is_file() {
                // Best-effort: a cleanup failure must not block startup.
                let _ = std::fs::remove_file(&path);
            }
        }
        Ok(SnapshotWriter {
            dir: dir.to_path_buf(),
            seq: 0,
        })
    }

    /// The snapshot directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence number of the last snapshot written (0 = none yet).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Write one snapshot: `report` (already newline-terminated by the
    /// caller), `summary` JSON, and a `status.json` recording the new
    /// sequence number plus ingest counters — and, when a snap log is
    /// being written, the log's position so recovery is observable.
    /// Returns the new sequence.
    pub fn write(
        &mut self,
        report: &str,
        summary: &str,
        records: u64,
        parse_errors: u64,
        snap_log: Option<SnapLogStatus>,
    ) -> Result<u64> {
        let seq = self.seq + 1;
        self.replace("report.txt", report.as_bytes())?;
        self.replace("summary.json", summary.as_bytes())?;
        let log_fields = match snap_log {
            Some(s) => format!(
                ",\n  \"log_seq\": {},\n  \"recovered_frames\": {}",
                s.log_seq, s.recovered_frames
            ),
            None => String::new(),
        };
        let status = format!(
            "{{\n  \"snapshot\": {seq},\n  \"records\": {records},\n  \"parse_errors\": {parse_errors}{log_fields}\n}}\n"
        );
        self.replace("status.json", status.as_bytes())?;
        self.seq = seq;
        Ok(seq)
    }

    fn replace(&self, name: &str, bytes: &[u8]) -> Result<()> {
        let tmp = self.dir.join(format!("{name}.tmp"));
        let fin = self.dir.join(name);
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        // The data must be durable *before* the rename publishes the
        // name, or a crash can leave the final path pointing at
        // unflushed blocks.
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, &fin)?;
        // Best-effort directory sync so the rename itself survives a
        // crash; not all platforms/filesystems allow fsync on a
        // directory handle, and a snapshot must not fail over that.
        if let Ok(d) = std::fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fs-snapshot-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn snapshots_replace_in_place_and_bump_seq() {
        let dir = temp_dir("basic");
        let mut writer = SnapshotWriter::new(&dir).unwrap();
        assert_eq!(writer.seq(), 0);

        assert_eq!(writer.write("report one\n", "{}", 10, 0, None).unwrap(), 1);
        assert_eq!(
            writer
                .write("report two\n", "{\"a\":1}", 25, 2, None)
                .unwrap(),
            2
        );
        assert_eq!(writer.seq(), 2);

        let report = std::fs::read_to_string(dir.join("report.txt")).unwrap();
        assert_eq!(report, "report two\n");
        let summary = std::fs::read_to_string(dir.join("summary.json")).unwrap();
        assert_eq!(summary, "{\"a\":1}");
        let status = std::fs::read_to_string(dir.join("status.json")).unwrap();
        assert!(status.contains("\"snapshot\": 2"), "{status}");
        assert!(status.contains("\"records\": 25"), "{status}");
        assert!(status.contains("\"parse_errors\": 2"), "{status}");
        assert!(!status.contains("log_seq"), "no snap log, no log fields");

        writer
            .write(
                "report three\n",
                "{}",
                30,
                2,
                Some(SnapLogStatus {
                    log_seq: 7,
                    recovered_frames: 3,
                }),
            )
            .unwrap();
        let status = std::fs::read_to_string(dir.join("status.json")).unwrap();
        assert!(status.contains("\"log_seq\": 7"), "{status}");
        assert!(status.contains("\"recovered_frames\": 3"), "{status}");

        // No temp files linger.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name();
            assert!(
                !name.to_string_lossy().ends_with(".tmp"),
                "leftover temp file {name:?}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_tmp_files_are_cleaned_at_startup() {
        let dir = temp_dir("stale");
        std::fs::create_dir_all(&dir).unwrap();
        // A crashed predecessor left a half-written temp file; a real
        // snapshot from that run must survive the cleanup.
        std::fs::write(dir.join("report.txt.tmp"), b"torn").unwrap();
        std::fs::write(dir.join("summary.json.tmp"), b"{\"torn\"").unwrap();
        std::fs::write(dir.join("report.txt"), b"complete\n").unwrap();

        let mut writer = SnapshotWriter::new(&dir).unwrap();
        assert!(!dir.join("report.txt.tmp").exists());
        assert!(!dir.join("summary.json.tmp").exists());
        assert_eq!(
            std::fs::read_to_string(dir.join("report.txt")).unwrap(),
            "complete\n"
        );

        writer.write("fresh\n", "{}", 1, 0, None).unwrap();
        assert_eq!(
            std::fs::read_to_string(dir.join("report.txt")).unwrap(),
            "fresh\n"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
