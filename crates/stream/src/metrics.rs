//! Observability for `filterscope serve`: lock-free counters updated on
//! the hot ingest path, rendered as a plaintext `/metrics`-style page by a
//! minimal HTTP responder.
//!
//! The endpoint speaks just enough HTTP/1.0 for `curl` and scrapers: any
//! `GET` is answered with the metrics page, except `GET /shutdown`, which
//! requests a graceful daemon shutdown (the signal-free control path used
//! on platforms without SIGINT and by tests).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use interleave::{IAtomicBool, IAtomicU64, IAtomicUsize, IMutex, Ordering};

use filterscope_proxy::ProfileKind;

/// Per-connection counters, shared between the reader, the worker, the
/// snapshot thread, and the metrics renderer.
#[derive(Debug)]
pub struct ConnStats {
    /// Connection ordinal (fold order; assigned at accept time).
    pub id: u64,
    /// Source label: the peer address until a `Hello` frame names it.
    pub label: IMutex<String>,
    /// Records parsed and ingested.
    pub records: IAtomicU64,
    /// Lines that failed to parse (the batch path never drops a
    /// connection for a bad line — only for a bad frame).
    pub parse_errors: IAtomicU64,
    /// Frames received.
    pub frames: IAtomicU64,
    /// Payload bytes received.
    pub bytes: IAtomicU64,
    /// Batches queued but not yet ingested (bounded by the queue).
    pub queue_depth: IAtomicUsize,
    /// When the connection was accepted.
    pub connected: Instant,
    /// Set when the worker has drained the queue and exited.
    pub done: IAtomicBool,
    /// The framing error that dropped this connection, if any.
    pub error: IMutex<Option<String>>,
}

impl ConnStats {
    /// Fresh counters for connection `id` from `peer`.
    pub fn new(id: u64, peer: String) -> ConnStats {
        ConnStats {
            id,
            label: IMutex::new(peer),
            records: IAtomicU64::new(0),
            parse_errors: IAtomicU64::new(0),
            frames: IAtomicU64::new(0),
            bytes: IAtomicU64::new(0),
            queue_depth: IAtomicUsize::new(0),
            connected: Instant::now(),
            done: IAtomicBool::new(false),
            error: IMutex::new(None),
        }
    }

    /// The current label (peer address or `Hello` name).
    pub fn label(&self) -> String {
        self.label.lock().clone()
    }

    /// Records ingested per second of connection lifetime.
    pub fn records_per_sec(&self) -> f64 {
        let secs = self.connected.elapsed().as_secs_f64().max(1e-9);
        self.records.load(Ordering::Relaxed) as f64 / secs
    }
}

/// Daemon-wide counters.
#[derive(Debug)]
pub struct ServerStats {
    /// When the daemon started.
    pub started: Instant,
    /// Connections accepted over the daemon's lifetime.
    pub connections_total: IAtomicU64,
    /// Connections currently being read.
    pub connections_live: IAtomicU64,
    /// Connections dropped for framing errors.
    pub connections_dropped: IAtomicU64,
    /// Records ingested across all connections.
    pub records: IAtomicU64,
    /// Unparseable lines across all connections.
    pub parse_errors: IAtomicU64,
    /// Frames received across all connections.
    pub frames: IAtomicU64,
    /// Payload bytes received across all connections.
    pub bytes: IAtomicU64,
    /// Sequence number of the newest snapshot (0 = none yet).
    pub snapshot_seq: IAtomicU64,
    /// Snapshot write failures (the daemon keeps running).
    pub snapshot_errors: IAtomicU64,
    /// When the newest snapshot was written.
    pub snapshot_at: IMutex<Option<Instant>>,
    /// Policy generation (0 = no policy configured; 1 = startup artifact).
    pub policy_version: IAtomicU64,
    /// Accepted policy hot-swaps.
    pub policy_reloads: IAtomicU64,
    /// Rejected policy reload attempts.
    pub policy_reload_failures: IAtomicU64,
    /// Records the policy allowed.
    pub policy_allowed: IAtomicU64,
    /// Records the policy denied.
    pub policy_denied: IAtomicU64,
    /// Records the policy redirected.
    pub policy_redirected: IAtomicU64,
    /// Censored records per inferred censorship mechanism, indexed by
    /// [`ProfileKind::index`]; uncensored records vote for nothing.
    pub mechanism: [IAtomicU64; 4],
    /// The mechanism `serve --censor` declared, stored as
    /// [`ProfileKind::index`] + 1 (0 = no expectation declared).
    pub expected_mechanism: IAtomicU64,
    /// Largest record timestamp (epoch seconds) ingested so far; the
    /// snap-log frame timestamp, so time-travel queries index by record
    /// time, not wall-clock arrival time.
    pub max_record_ts: IAtomicU64,
    /// Whether a snapshot log is being written (gates the snaplog gauges).
    pub snaplog_active: IAtomicBool,
    /// Bytes in the snapshot log after the last append/compaction.
    pub snaplog_bytes: IAtomicU64,
    /// Frames in the snapshot log after the last append/compaction.
    pub snaplog_frames: IAtomicU64,
    /// Sequence of the last compaction checkpoint (0 = never compacted).
    pub snaplog_last_compaction_seq: IAtomicU64,
}

impl ServerStats {
    /// Fresh zeroed stats.
    pub fn new() -> ServerStats {
        ServerStats {
            started: Instant::now(),
            connections_total: IAtomicU64::new(0),
            connections_live: IAtomicU64::new(0),
            connections_dropped: IAtomicU64::new(0),
            records: IAtomicU64::new(0),
            parse_errors: IAtomicU64::new(0),
            frames: IAtomicU64::new(0),
            bytes: IAtomicU64::new(0),
            snapshot_seq: IAtomicU64::new(0),
            snapshot_errors: IAtomicU64::new(0),
            snapshot_at: IMutex::new(None),
            policy_version: IAtomicU64::new(0),
            policy_reloads: IAtomicU64::new(0),
            policy_reload_failures: IAtomicU64::new(0),
            policy_allowed: IAtomicU64::new(0),
            policy_denied: IAtomicU64::new(0),
            policy_redirected: IAtomicU64::new(0),
            mechanism: std::array::from_fn(|_| IAtomicU64::new(0)),
            expected_mechanism: IAtomicU64::new(0),
            max_record_ts: IAtomicU64::new(0),
            snaplog_active: IAtomicBool::new(false),
            snaplog_bytes: IAtomicU64::new(0),
            snaplog_frames: IAtomicU64::new(0),
            snaplog_last_compaction_seq: IAtomicU64::new(0),
        }
    }

    /// Declare the mechanism the operator expects ingested traffic to show.
    pub fn expect_mechanism(&self, kind: ProfileKind) {
        self.expected_mechanism
            .store(kind.index() as u64 + 1, Ordering::SeqCst);
    }

    /// Seconds since the newest snapshot, if one was written.
    pub fn snapshot_age(&self) -> Option<f64> {
        self.snapshot_at.lock().map(|at| at.elapsed().as_secs_f64())
    }

    /// Record a successful snapshot write.
    pub fn snapshot_written(&self, seq: u64) {
        self.snapshot_seq.store(seq, Ordering::Relaxed);
        *self.snapshot_at.lock() = Some(Instant::now());
    }
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats::new()
    }
}

/// Render the metrics page: daemon-wide gauges first, then one labelled
/// line set per connection, in accept order.
pub fn render(stats: &ServerStats, conns: &[Arc<ConnStats>]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(1024);
    let load = |a: &IAtomicU64| a.load(Ordering::Relaxed);
    let _ = writeln!(
        out,
        "filterscope_uptime_seconds {:.3}",
        stats.started.elapsed().as_secs_f64()
    );
    let _ = writeln!(
        out,
        "filterscope_connections_live {}",
        load(&stats.connections_live)
    );
    let _ = writeln!(
        out,
        "filterscope_connections_total {}",
        load(&stats.connections_total)
    );
    let _ = writeln!(
        out,
        "filterscope_connections_dropped_total {}",
        load(&stats.connections_dropped)
    );
    let _ = writeln!(out, "filterscope_records_total {}", load(&stats.records));
    let _ = writeln!(
        out,
        "filterscope_parse_errors_total {}",
        load(&stats.parse_errors)
    );
    let _ = writeln!(out, "filterscope_frames_total {}", load(&stats.frames));
    let _ = writeln!(out, "filterscope_bytes_total {}", load(&stats.bytes));
    let _ = writeln!(
        out,
        "filterscope_snapshot_seq {}",
        load(&stats.snapshot_seq)
    );
    let _ = writeln!(
        out,
        "filterscope_snapshot_errors_total {}",
        load(&stats.snapshot_errors)
    );
    match stats.snapshot_age() {
        Some(age) => {
            let _ = writeln!(out, "filterscope_snapshot_age_seconds {age:.3}");
        }
        None => {
            let _ = writeln!(out, "filterscope_snapshot_age_seconds NaN");
        }
    }
    // Policy gauges appear only when a policy artifact is being served
    // (generation 0 means policy evaluation is disabled).
    if load(&stats.policy_version) > 0 {
        let _ = writeln!(
            out,
            "filterscope_policy_version {}",
            load(&stats.policy_version)
        );
        let _ = writeln!(
            out,
            "filterscope_policy_reloads_total {}",
            load(&stats.policy_reloads)
        );
        let _ = writeln!(
            out,
            "filterscope_policy_reload_failures_total {}",
            load(&stats.policy_reload_failures)
        );
        let _ = writeln!(
            out,
            "filterscope_policy_decisions_total{{decision=\"allow\"}} {}",
            load(&stats.policy_allowed)
        );
        let _ = writeln!(
            out,
            "filterscope_policy_decisions_total{{decision=\"deny\"}} {}",
            load(&stats.policy_denied)
        );
        let _ = writeln!(
            out,
            "filterscope_policy_decisions_total{{decision=\"redirect\"}} {}",
            load(&stats.policy_redirected)
        );
    }
    // Snap-log gauges appear only when `serve --snap-log` is writing one.
    if stats.snaplog_active.load(Ordering::Relaxed) {
        let _ = writeln!(
            out,
            "filterscope_snaplog_bytes {}",
            load(&stats.snaplog_bytes)
        );
        let _ = writeln!(
            out,
            "filterscope_snaplog_frames_total {}",
            load(&stats.snaplog_frames)
        );
        let _ = writeln!(
            out,
            "filterscope_snaplog_last_compaction_seq {}",
            load(&stats.snaplog_last_compaction_seq)
        );
    }
    // Mechanism gauges appear once a censored record has been classified,
    // or as soon as `--censor` declared what the operator expects.
    let mechanism_total: u64 = stats.mechanism.iter().map(load).sum();
    let expected = load(&stats.expected_mechanism);
    if mechanism_total > 0 || expected > 0 {
        for kind in ProfileKind::ALL {
            let _ = writeln!(
                out,
                "filterscope_mechanism_records_total{{mechanism=\"{}\"}} {}",
                kind.name(),
                load(&stats.mechanism[kind.index()])
            );
        }
        if expected > 0 {
            let _ = writeln!(
                out,
                "filterscope_expected_mechanism{{mechanism=\"{}\"}} 1",
                ProfileKind::ALL[(expected - 1) as usize].name()
            );
        }
    }
    for conn in conns {
        let label = conn.label();
        let _ = writeln!(
            out,
            "filterscope_conn_records_total{{conn=\"{label}\"}} {}",
            conn.records.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "filterscope_conn_records_per_sec{{conn=\"{label}\"}} {:.1}",
            conn.records_per_sec()
        );
        let _ = writeln!(
            out,
            "filterscope_conn_queue_depth{{conn=\"{label}\"}} {}",
            conn.queue_depth.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "filterscope_conn_parse_errors_total{{conn=\"{label}\"}} {}",
            conn.parse_errors.load(Ordering::Relaxed)
        );
        if let Some(err) = conn.error.lock().as_deref() {
            let _ = writeln!(
                out,
                "filterscope_conn_dropped{{conn=\"{label}\",reason=\"{}\"}} 1",
                err.replace('"', "'")
            );
        }
    }
    out
}

/// Serve the metrics endpoint until `shutdown` is set. Each request gets
/// a fresh page from `render_page`; `GET /shutdown` additionally invokes
/// `on_shutdown`. The listener must be non-blocking.
pub fn serve_http(
    listener: &TcpListener,
    shutdown: &IAtomicBool,
    render_page: impl Fn() -> String,
    on_shutdown: impl Fn(),
) {
    while !shutdown.load(Ordering::SeqCst) {
        let (sock, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        let _ = sock.set_read_timeout(Some(Duration::from_millis(500)));
        let _ = sock.set_nodelay(true);
        let mut reader = BufReader::new(sock);
        let mut request_line = String::new();
        if reader.read_line(&mut request_line).is_err() {
            continue;
        }
        let path = request_line.split_whitespace().nth(1).unwrap_or("/");
        let body = if path == "/shutdown" {
            on_shutdown();
            "shutting down\n".to_string()
        } else {
            render_page()
        };
        let mut sock = reader.into_inner();
        let _ = write!(
            sock,
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        let _ = sock.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_covers_global_and_per_conn_lines() {
        let stats = ServerStats::new();
        stats.records.store(42, Ordering::Relaxed);
        stats.snapshot_written(3);
        let conn = Arc::new(ConnStats::new(0, "sg-42".to_string()));
        conn.records.store(42, Ordering::Relaxed);
        let page = render(&stats, &[conn]);
        assert!(page.contains("filterscope_records_total 42"));
        assert!(page.contains("filterscope_snapshot_seq 3"));
        assert!(page.contains("filterscope_snapshot_age_seconds"));
        assert!(page.contains("filterscope_conn_records_total{conn=\"sg-42\"} 42"));
        assert!(page.contains("filterscope_conn_queue_depth{conn=\"sg-42\"} 0"));
        // No policy configured → no policy gauges; no censored records
        // classified and no expectation declared → no mechanism gauges;
        // no snap log configured → no snaplog gauges.
        assert!(!page.contains("filterscope_policy_version"));
        assert!(!page.contains("filterscope_mechanism_records_total"));
        assert!(!page.contains("filterscope_snaplog_bytes"));
    }

    #[test]
    fn render_covers_snaplog_gauges_when_active() {
        let stats = ServerStats::new();
        stats.snaplog_active.store(true, Ordering::Relaxed);
        stats.snaplog_bytes.store(4096, Ordering::Relaxed);
        stats.snaplog_frames.store(12, Ordering::Relaxed);
        stats
            .snaplog_last_compaction_seq
            .store(8, Ordering::Relaxed);
        let page = render(&stats, &[]);
        assert!(page.contains("filterscope_snaplog_bytes 4096"));
        assert!(page.contains("filterscope_snaplog_frames_total 12"));
        assert!(page.contains("filterscope_snaplog_last_compaction_seq 8"));
    }

    #[test]
    fn render_covers_mechanism_gauges_when_votes_or_expectation_exist() {
        let stats = ServerStats::new();
        stats.mechanism[ProfileKind::DnsPoison.index()].store(9, Ordering::Relaxed);
        let page = render(&stats, &[]);
        // One labelled line per mechanism, zero-valued ones included.
        assert!(page.contains("filterscope_mechanism_records_total{mechanism=\"dns-poison\"} 9"));
        assert!(page.contains("filterscope_mechanism_records_total{mechanism=\"blue-coat\"} 0"));
        assert!(page.contains("filterscope_mechanism_records_total{mechanism=\"tcp-rst\"} 0"));
        assert!(page.contains("filterscope_mechanism_records_total{mechanism=\"blockpage\"} 0"));
        assert!(!page.contains("filterscope_expected_mechanism"));

        // An expectation alone also surfaces the gauge block.
        let stats = ServerStats::new();
        stats.expect_mechanism(ProfileKind::TcpRst);
        let page = render(&stats, &[]);
        assert!(page.contains("filterscope_expected_mechanism{mechanism=\"tcp-rst\"} 1"));
        assert!(page.contains("filterscope_mechanism_records_total{mechanism=\"tcp-rst\"} 0"));
    }

    #[test]
    fn render_covers_policy_gauges_when_active() {
        let stats = ServerStats::new();
        stats.policy_version.store(2, Ordering::Relaxed);
        stats.policy_reloads.store(1, Ordering::Relaxed);
        stats.policy_reload_failures.store(3, Ordering::Relaxed);
        stats.policy_denied.store(7, Ordering::Relaxed);
        let page = render(&stats, &[]);
        assert!(page.contains("filterscope_policy_version 2"));
        assert!(page.contains("filterscope_policy_reloads_total 1"));
        assert!(page.contains("filterscope_policy_reload_failures_total 3"));
        assert!(page.contains("filterscope_policy_decisions_total{decision=\"deny\"} 7"));
        assert!(page.contains("filterscope_policy_decisions_total{decision=\"allow\"} 0"));
    }

    #[test]
    fn http_responder_answers_and_honors_shutdown_path() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = IAtomicBool::new(false);
        let hit = IAtomicU64::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                serve_http(
                    &listener,
                    &shutdown,
                    || "page\n".to_string(),
                    || {
                        hit.fetch_add(1, Ordering::SeqCst);
                        shutdown.store(true, Ordering::SeqCst);
                    },
                );
            });
            let get = |path: &str| {
                let mut sock = std::net::TcpStream::connect(addr).unwrap();
                write!(sock, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
                let mut body = String::new();
                use std::io::Read as _;
                sock.read_to_string(&mut body).unwrap();
                body
            };
            let resp = get("/metrics");
            assert!(resp.starts_with("HTTP/1.0 200 OK"), "{resp}");
            assert!(resp.ends_with("page\n"), "{resp}");
            let resp = get("/shutdown");
            assert!(resp.contains("shutting down"), "{resp}");
        });
        assert_eq!(hit.load(Ordering::SeqCst), 1);
    }
}
