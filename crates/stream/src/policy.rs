//! Hot-reloadable compiled policy for the serve loop.
//!
//! When `filterscope serve` is started with `--policy-artifact FILE`, the
//! daemon evaluates every ingested record against a [`PolicyEngine`]
//! loaded from a compiled artifact (`filterscope compile`), and the
//! snapshot thread re-reads the artifact once per cycle. The state
//! machine is deliberately small:
//!
//! ```text
//!            ┌───────────────┐   content unchanged    ┌──────────┐
//!  startup ─►│ serving  vN   │◄───────────────────────│ poll     │
//!            └──────┬────────┘                        └────┬─────┘
//!                   │ content changed                      │
//!                   ▼                                      │
//!            load + CRC checks ── fail ──► reject, keep vN,│count it
//!                   │ ok                                   ▲
//!                   ▼                                      │
//!            witness gate (policylint) ── counterexample ──┘
//!                   │ clean
//!                   ▼
//!            atomically swap the shared Arc ──► serving vN+1
//! ```
//!
//! A rejected artifact — torn write, bit rot, wrong version, or compiled
//! sections that disagree with their own embedded source CPL — never
//! touches the running engine: workers keep deciding under the last good
//! policy, and the failure is counted on `/metrics`. A successful swap
//! takes effect at each worker's next batch (workers pin the engine `Arc`
//! per batch, never per record), so decisions change between batches
//! without a restart and without a lock on the per-record path.

use filterscope_core::{crc32, Error, Result};
use filterscope_policylint::verify_artifact;
use filterscope_proxy::{artifact, PolicyEngine};
use interleave::{IAtomicU64, IMutex, Ordering};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The shared, swappable engine: workers clone the `Arc` once per batch,
/// the snapshot thread swaps it on a verified reload.
///
/// Generic over the engine so the interleaving model tests can check the
/// swap protocol with a deterministic stamp engine; production uses the
/// default [`PolicyEngine`]. Built on [`IMutex`]/[`IAtomicU64`] so every
/// swap and every per-batch pin is a schedule point under the explorer.
pub struct PolicyCell<E = PolicyEngine> {
    engine: IMutex<Arc<E>>,
    /// Generation counter: 1 for the startup artifact, +1 per swap.
    version: IAtomicU64,
}

impl<E> PolicyCell<E> {
    /// Wrap a startup engine as generation 1.
    pub fn new(engine: E) -> PolicyCell<E> {
        PolicyCell {
            engine: IMutex::new(Arc::new(engine)),
            version: IAtomicU64::new(1),
        }
    }

    /// The engine to decide under right now.
    pub fn current(&self) -> Arc<E> {
        Arc::clone(&self.engine.lock())
    }

    /// Current policy generation (1 = startup artifact).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    /// Install `engine` as the new generation and return its number.
    /// Production only calls this from [`PolicyWatcher::poll`] after the
    /// witness gate has passed; it is public for the model tests, which
    /// drive the swap directly.
    pub fn swap(&self, engine: E) -> u64 {
        *self.engine.lock() = Arc::new(engine);
        self.version.fetch_add(1, Ordering::SeqCst) + 1
    }
}

/// What one reload poll did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReloadOutcome {
    /// Artifact bytes unchanged since the last poll.
    Unchanged,
    /// Artifact verified and swapped in; the new generation number.
    Swapped(u64),
    /// Artifact changed but failed validation; the running policy is
    /// untouched. Carries the reason (including the witness URL when the
    /// equivalence gate vetoed the swap).
    Rejected(String),
}

/// Watches one artifact path and drives the swap state machine.
pub struct PolicyWatcher {
    path: PathBuf,
    cell: Arc<PolicyCell>,
    /// CRC of the artifact bytes last acted on (accepted *or* rejected) —
    /// content-based, so rewrites within one mtime granule are still seen,
    /// and a bad artifact is reported once, not once per cycle.
    last_crc: u32,
}

impl PolicyWatcher {
    /// Read, validate, and witness-check the artifact at `path`. Startup
    /// fails fast: a daemon must never begin serving under a policy it
    /// cannot prove faithful.
    pub fn open(path: &Path) -> Result<PolicyWatcher> {
        let bytes = std::fs::read(path)
            .map_err(|e| Error::Io(format!("cannot read {}: {e}", path.display())))?;
        let engine = load_verified(&bytes)?;
        Ok(PolicyWatcher {
            path: path.to_path_buf(),
            cell: Arc::new(PolicyCell::new(engine)),
            last_crc: crc32(&bytes),
        })
    }

    /// The shared cell, for ingest workers.
    pub fn cell(&self) -> Arc<PolicyCell> {
        Arc::clone(&self.cell)
    }

    /// Re-read the artifact; if its bytes changed, verify and swap (or
    /// reject). Called from the snapshot loop — artifacts are small and
    /// cycles are ≥ tens of milliseconds apart, so a full read per poll
    /// is cheaper than being wrong about mtime granularity.
    pub fn poll(&mut self) -> ReloadOutcome {
        let bytes = match std::fs::read(&self.path) {
            Ok(b) => b,
            Err(e) => {
                return ReloadOutcome::Rejected(format!("cannot read {}: {e}", self.path.display()))
            }
        };
        let crc = crc32(&bytes);
        if crc == self.last_crc {
            return ReloadOutcome::Unchanged;
        }
        self.last_crc = crc;
        match load_verified(&bytes) {
            Ok(engine) => ReloadOutcome::Swapped(self.cell.swap(engine)),
            Err(e) => ReloadOutcome::Rejected(e.to_string()),
        }
    }
}

/// Deserialize an artifact and run it through the policylint witness
/// gate; only an engine proven decision-identical to its embedded source
/// policy comes back.
fn load_verified(bytes: &[u8]) -> Result<PolicyEngine> {
    let compiled = artifact::load(bytes, None)?;
    let findings = verify_artifact(&compiled);
    if let Some(f) = findings.first() {
        let witness = f
            .witness
            .as_ref()
            .map(|w| format!(" (counterexample: {})", w.url_string()))
            .unwrap_or_default();
        return Err(Error::InvalidConfig(format!(
            "artifact fails the witness-equivalence gate on {}: {}{witness}",
            f.rule, f.message
        )));
    }
    Ok(compiled.engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use filterscope_logformat::RequestUrl;
    use filterscope_proxy::{Decision, PolicyData, RuleFamily, Trigger};

    fn temp_file(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("fs-policy-{tag}-{}.fscp", std::process::id()))
    }

    #[test]
    fn open_poll_swap_and_reject_cycle() {
        let path = temp_file("cycle");
        let full = PolicyData::standard();
        std::fs::write(&path, artifact::compile(&full, 1, None)).unwrap();
        let mut watcher = PolicyWatcher::open(&path).unwrap();
        let cell = watcher.cell();
        assert_eq!(cell.version(), 1);
        let url = RequestUrl::http("google.com", "/tbproxy/af/query");
        assert_eq!(
            cell.current().decide_url(&url),
            Decision::Deny(Trigger::Keyword)
        );

        // Same bytes → no swap.
        assert_eq!(watcher.poll(), ReloadOutcome::Unchanged);

        // New artifact without keywords → swap, decision changes.
        let ablated = full.clone().without(RuleFamily::Keywords);
        std::fs::write(&path, artifact::compile(&ablated, 1, None)).unwrap();
        assert_eq!(watcher.poll(), ReloadOutcome::Swapped(2));
        assert_eq!(cell.version(), 2);
        assert_eq!(cell.current().decide_url(&url), Decision::Allow);

        // Corrupt artifact → rejected, running policy untouched, and the
        // same bad bytes are not re-reported on the next poll.
        let mut bad = artifact::compile(&full, 1, None);
        let mid = bad.len() / 2;
        bad[mid] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(watcher.poll(), ReloadOutcome::Rejected(_)));
        assert_eq!(cell.version(), 2);
        assert_eq!(cell.current().decide_url(&url), Decision::Allow);
        assert_eq!(watcher.poll(), ReloadOutcome::Unchanged);

        // A good artifact recovers.
        std::fs::write(&path, artifact::compile(&full, 1, None)).unwrap();
        assert_eq!(watcher.poll(), ReloadOutcome::Swapped(3));
        assert_eq!(
            cell.current().decide_url(&url),
            Decision::Deny(Trigger::Keyword)
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn startup_fails_fast_on_garbage() {
        let path = temp_file("garbage");
        std::fs::write(&path, b"not an artifact").unwrap();
        assert!(PolicyWatcher::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
        assert!(PolicyWatcher::open(&path).is_err());
    }
}
