//! The model-checked concurrency core of the serve daemon.
//!
//! Everything in this module is the *production* code path — `server.rs`
//! calls these functions from real OS threads — but it is written against
//! the [`interleave`] primitives instead of `std::sync`, takes its
//! effects through traits ([`Decide`], [`SnapSink`]), and performs no IO
//! and no wall-clock reads. That combination is what lets
//! `tests/model_proto.rs` run the same functions under the interleaving
//! explorer: every lock, atomic, and channel operation becomes a schedule
//! point, and the explorer enumerates all interleavings up to a
//! preemption bound.
//!
//! The four protocols checked there, and where they live here:
//!
//! 1. **Shard delta take/fold** — [`ingest_batch`] (worker side) and
//!    [`fold_shards`] (snapshot side) keep a shard's suite content and
//!    its record/parse-error counts under one lock, so a fold can never
//!    observe content without its counts.
//! 2. **Policy hot swap at batch boundaries** — [`run_worker`] pins the
//!    engine `Arc` once per batch ([`crate::policy::PolicyCell`]); the
//!    per-record path never takes the policy lock.
//! 3. **Append-before-merge snapshot ordering** — [`snapshot_cycle`]
//!    frames a cycle's delta into the [`SnapSink`] *before* merging it
//!    into the global suite (skipping genuinely empty cycles), so the
//!    log's fold and the published report never disagree.
//! 4. **Drain-then-final-snapshot shutdown** — [`await_drain`] returns
//!    only once every worker has drained its queue (or the caller's
//!    deadline expires), after which one more [`snapshot_cycle`]
//!    publishes the complete final state.
//!
//! This file is covered by `srclint`'s guarded-module rules: bare
//! `std::sync` primitives and `Instant::now`/`SystemTime::now` are
//! build-failing lint violations here.

use std::sync::Arc;

use filterscope_analysis::{classify_mechanism_view, AnalysisContext, AnalysisSuite};
use filterscope_logformat::frame::batch_lines;
use filterscope_logformat::{LineSplitter, RequestUrl, Schema};
use filterscope_proxy::{Decision, PolicyEngine};
use interleave::{IMutex, IReceiver, Ordering};

use crate::metrics::{ConnStats, ServerStats};
use crate::policy::PolicyCell;

/// One connection's un-folded analysis shard: the delta suite plus the
/// exact record/parse-error counts ingested into it, kept under one lock
/// so a fold can never observe content without its counts. The snap
/// log's zero-delta skip depends on this being exact — deriving the
/// per-cycle delta from the global counters instead races the workers
/// and can silently drop a folded shard from the log (the historical
/// race pinned in `tests/model_proto.rs`).
pub struct Shard {
    pub suite: AnalysisSuite,
    pub records: u64,
    pub parse_errors: u64,
}

impl Shard {
    /// Fresh shard around an empty delta suite.
    pub fn new(suite: AnalysisSuite) -> Shard {
        Shard {
            suite,
            records: 0,
            parse_errors: 0,
        }
    }
}

/// One live connection as the snapshot/metrics threads see it.
pub struct ConnHandle {
    pub stats: Arc<ConnStats>,
    pub delta: Arc<IMutex<Shard>>,
}

/// The decision surface [`ingest_batch`] evaluates records against.
/// Production uses the compiled [`PolicyEngine`]; model tests substitute
/// a deterministic stamp engine to observe which generation decided.
pub trait Decide {
    fn decide_url(&self, url: &RequestUrl) -> Decision;
}

impl Decide for PolicyEngine {
    fn decide_url(&self, url: &RequestUrl) -> Decision {
        PolicyEngine::decide_url(self, url)
    }
}

/// The per-worker line parsing state: schema, splitter scratch, and the
/// running line number (for parse-error positions), bundled so the batch
/// ingest signature stays small.
pub struct LineParser {
    schema: Schema,
    splitter: LineSplitter,
    line_no: u64,
}

impl LineParser {
    pub fn new() -> LineParser {
        LineParser {
            schema: Schema::canonical(),
            splitter: LineSplitter::new(),
            line_no: 0,
        }
    }
}

impl Default for LineParser {
    fn default() -> LineParser {
        LineParser::new()
    }
}

/// What one [`ingest_batch`] call did (counts already applied to the
/// shard and the stats; returned for tests and tracing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    pub records: u64,
    pub parse_errors: u64,
    pub allowed: u64,
    pub denied: u64,
    pub redirected: u64,
}

/// Parse one queued batch payload and ingest it into this connection's
/// delta shard. All counter updates — the shard's exact counts, the
/// connection and daemon totals, and the max record timestamp — happen
/// under the delta lock, so a fold that merged these records also
/// observes their counts and their timestamp.
///
/// The `engine` is whatever the caller pinned for this batch (see
/// [`run_worker`]); passing it per batch rather than reading it per
/// record is what makes a policy hot swap land exactly on a batch
/// boundary.
pub fn ingest_batch<E: Decide>(
    parser: &mut LineParser,
    payload: &[u8],
    ctx: &AnalysisContext,
    delta: &IMutex<Shard>,
    engine: Option<&E>,
    conn: &ConnStats,
    stats: &ServerStats,
) -> BatchOutcome {
    let mut out = BatchOutcome::default();
    let mut mechanism = [0u64; 4];
    let mut max_ts = 0u64;
    let mut shard = delta.lock();
    for line in batch_lines(payload) {
        parser.line_no += 1;
        // Same order as the file ingest path: UTF-8 validity is checked
        // before the comment prefix, so a corrupt comment line counts as
        // a parse error.
        let Ok(text) = std::str::from_utf8(line) else {
            out.parse_errors += 1;
            continue;
        };
        if text.starts_with('#') {
            continue;
        }
        match parser
            .schema
            .parse_view(&mut parser.splitter, text, parser.line_no)
        {
            Ok(view) => {
                if let Some(engine) = engine {
                    match engine.decide_url(&view.url.to_url()) {
                        Decision::Allow => out.allowed += 1,
                        Decision::Deny(_) => out.denied += 1,
                        Decision::Redirect(_) => out.redirected += 1,
                    }
                }
                if let Some(kind) = classify_mechanism_view(&view) {
                    mechanism[kind.index()] += 1;
                }
                max_ts = max_ts.max(view.timestamp.epoch_seconds() as u64);
                shard.suite.ingest(ctx, &view);
                out.records += 1;
            }
            Err(_) => out.parse_errors += 1,
        }
    }
    shard.records += out.records;
    shard.parse_errors += out.parse_errors;
    conn.records.fetch_add(out.records, Ordering::SeqCst);
    conn.parse_errors
        .fetch_add(out.parse_errors, Ordering::SeqCst);
    stats.records.fetch_add(out.records, Ordering::SeqCst);
    stats
        .parse_errors
        .fetch_add(out.parse_errors, Ordering::SeqCst);
    if engine.is_some() {
        stats
            .policy_allowed
            .fetch_add(out.allowed, Ordering::SeqCst);
        stats.policy_denied.fetch_add(out.denied, Ordering::SeqCst);
        stats
            .policy_redirected
            .fetch_add(out.redirected, Ordering::SeqCst);
    }
    for (slot, votes) in stats.mechanism.iter().zip(mechanism) {
        if votes > 0 {
            slot.fetch_add(votes, Ordering::SeqCst);
        }
    }
    // Still under the delta lock: a fold that merged these records must
    // also observe their timestamp for the log frame it writes.
    if max_ts > 0 {
        stats.max_record_ts.fetch_max(max_ts, Ordering::SeqCst);
    }
    drop(shard);
    out
}

/// Worker half of one connection: drain queued batches into the delta
/// shard until the queue closes, then mark the connection done. The
/// policy engine `Arc` is pinned once per batch — the per-record path
/// never takes the policy lock, and a hot swap lands exactly on a batch
/// boundary.
pub fn run_worker<E: Decide>(
    rx: IReceiver<Vec<u8>>,
    conn: &ConnStats,
    stats: &ServerStats,
    delta: &IMutex<Shard>,
    ctx: &AnalysisContext,
    policy: Option<&PolicyCell<E>>,
) {
    let mut parser = LineParser::new();
    while let Some(payload) = rx.recv() {
        conn.queue_depth.fetch_sub(1, Ordering::SeqCst);
        let engine = policy.map(|cell| cell.current());
        ingest_batch(
            &mut parser,
            &payload,
            ctx,
            delta,
            engine.as_deref(),
            conn,
            stats,
        );
    }
    conn.done.store(true, Ordering::SeqCst);
}

/// Swap every connection's delta for a fresh twin and merge the deltas
/// into `global` (the global suite, or one snapshot cycle's collector
/// when a snap log needs the delta framed first), in accept order.
/// Holding each delta lock only for the swap keeps the ingest workers
/// off the fold's critical path. Returns the exact `(records,
/// parse_errors)` counts behind the merged content — taken under the
/// same locks as the suites, so they can never disagree with it.
pub fn fold_shards(conns: &IMutex<Vec<ConnHandle>>, global: &mut AnalysisSuite) -> (u64, u64) {
    let handles: Vec<Arc<IMutex<Shard>>> =
        conns.lock().iter().map(|c| Arc::clone(&c.delta)).collect();
    let (mut records, mut parse_errors) = (0u64, 0u64);
    for shard in handles {
        let taken = {
            let mut shard = shard.lock();
            records += std::mem::take(&mut shard.records);
            parse_errors += std::mem::take(&mut shard.parse_errors);
            shard.suite.take_delta()
        };
        global.merge(taken);
    }
    (records, parse_errors)
}

/// Cumulative `(records, parse_errors)` actually folded into the global
/// suite — the recovered baseline plus every cycle's exact fold count.
/// This, not the live ingest counters, is what a compaction checkpoint's
/// counters must say: it describes exactly what the checkpointed suite
/// contains, nothing a worker ingested since.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FoldTotals {
    pub records: u64,
    pub parse_errors: u64,
}

/// The counters handed to [`SnapSink::publish`] alongside the global
/// suite: the live ingest totals (what the snapshot's status metadata
/// reports) and the exact folded totals (what the published suite
/// actually contains — the two differ by whatever workers ingested
/// after the fold).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PublishCounters {
    pub records: u64,
    pub parse_errors: u64,
    pub folded: FoldTotals,
}

/// Where one snapshot cycle's effects land. Production wires this to the
/// append-only snap log plus the atomic report writer (`server.rs`);
/// model tests use an in-memory sink that asserts the log/report
/// equivalence invariant at every publish.
pub trait SnapSink {
    /// Frame one cycle's delta — called *before* the delta is merged
    /// into the global suite, and only for cycles that folded something.
    fn append_delta(
        &mut self,
        ts: u64,
        records: u64,
        parse_errors: u64,
        delta: &AnalysisSuite,
    ) -> Result<(), String>;

    /// Whether the sink wants a compaction checkpoint after this merge.
    fn should_checkpoint(&self) -> bool;

    /// Rewrite the log as one checkpoint carrying the cumulative fold.
    fn checkpoint(
        &mut self,
        ts: u64,
        records: u64,
        parse_errors: u64,
        global: &AnalysisSuite,
    ) -> Result<(), String>;

    /// Publish the merged global state (report/summary/status files in
    /// production). Runs once per cycle, after the merge.
    fn publish(&mut self, counters: PublishCounters, global: &AnalysisSuite) -> Result<(), String>;
}

/// One snapshot cycle, in the order the log/report equivalence depends
/// on: fold every shard's delta into a fresh collector, frame the delta
/// into the sink (skipping genuinely empty cycles — the exact fold
/// counts make that skip safe), merge into the global suite, compact if
/// the sink asks, publish. Sink failures are counted in
/// `stats.snapshot_errors` and returned for the caller to log; the delta
/// still reaches the global suite, and the next checkpoint heals the
/// log.
pub fn snapshot_cycle<S: SnapSink>(
    conns: &IMutex<Vec<ConnHandle>>,
    cycle: AnalysisSuite,
    global: &mut AnalysisSuite,
    folded: &mut FoldTotals,
    stats: &ServerStats,
    sink: &mut S,
) -> Vec<String> {
    let mut cycle = cycle;
    let (rec_d, err_d) = fold_shards(conns, &mut cycle);
    folded.records += rec_d;
    folded.parse_errors += err_d;
    let records = stats.records.load(Ordering::SeqCst);
    let parse_errors = stats.parse_errors.load(Ordering::SeqCst);
    let mut errors = Vec::new();
    let fail = |stats: &ServerStats, errors: &mut Vec<String>, e: String| {
        stats.snapshot_errors.fetch_add(1, Ordering::SeqCst);
        errors.push(e);
    };
    if rec_d > 0 || err_d > 0 {
        let ts = stats.max_record_ts.load(Ordering::SeqCst);
        if let Err(e) = sink.append_delta(ts, rec_d, err_d, &cycle) {
            fail(stats, &mut errors, e);
        }
    }
    global.merge(cycle);
    if sink.should_checkpoint() {
        let ts = stats.max_record_ts.load(Ordering::SeqCst);
        if let Err(e) = sink.checkpoint(ts, folded.records, folded.parse_errors, global) {
            fail(stats, &mut errors, e);
        }
    }
    let counters = PublishCounters {
        records,
        parse_errors,
        folded: *folded,
    };
    if let Err(e) = sink.publish(counters, global) {
        fail(stats, &mut errors, e);
    }
    errors
}

/// Shutdown drain: spin until every connection's worker has drained its
/// queue and exited, or `expired` says to stop waiting. The caller owns
/// the pacing — production sleeps a poll interval and checks a deadline
/// inside `expired`; model tests count polls. Returns `true` when every
/// worker was observed done (the final [`snapshot_cycle`] is then
/// complete by construction).
pub fn await_drain(conns: &IMutex<Vec<ConnHandle>>, mut expired: impl FnMut() -> bool) -> bool {
    loop {
        let all_done = conns
            .lock()
            .iter()
            .all(|c| c.stats.done.load(Ordering::SeqCst));
        if all_done {
            return true;
        }
        if expired() {
            return false;
        }
    }
}
