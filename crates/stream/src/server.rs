//! The `filterscope serve` daemon: N concurrent framed TCP connections,
//! per-connection analysis shards, periodic snapshot folds.
//!
//! # Thread model
//!
//! ```text
//! accept thread ──spawns──► reader ──bounded queue──► worker (one pair
//!                           per connection; the worker ingests into that
//!                           connection's private delta suite)
//! snapshot thread: every interval, swaps every delta for a fresh twin
//!                  (`AnalysisSuite::take_delta`) and folds the deltas
//!                  into the global suite in connection order, then
//!                  writes an atomic snapshot
//! metrics thread:  plaintext HTTP endpoint (optional)
//! ```
//!
//! # Why the result is byte-identical to batch `analyze`
//!
//! Every delta and the global suite share one `Selection`, and every
//! registered analysis satisfies the merge contract (`ingest` is
//! associative under `merge` — property-tested in `prop_registry.rs`),
//! so `fold(deltas)` equals a single sequential pass over the same
//! records regardless of how they interleaved across connections or
//! snapshot cycles.
//!
//! # Failure containment
//!
//! * A corrupt frame drops **that connection** (counted, surfaced on
//!   `/metrics`); every other connection and the daemon keep running.
//! * A full queue blocks that connection's reader, which stops draining
//!   the socket — backpressure reaches the client through TCP.
//! * Shutdown (SIGINT or `GET /shutdown`) stops the accept loop, lets
//!   every worker drain its queue, folds the final deltas, and writes a
//!   complete last snapshot before `run` returns.

use std::io::{BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use filterscope_analysis::{
    classify_mechanism_view, AnalysisContext, AnalysisSuite, Selection, SuiteParams,
};
use filterscope_core::{Error, Result};
use filterscope_logformat::frame::{batch_lines, Frame, FrameKind};
use filterscope_logformat::{LineSplitter, Schema};

use crate::metrics::{self, ConnStats, ServerStats};
use crate::policy::{PolicyCell, PolicyWatcher, ReloadOutcome};
use crate::snapshot::{SnapLogStatus, SnapshotWriter};
use filterscope_proxy::{Decision, ProfileKind};
use filterscope_snapstore::{
    encode_value, read_frames, suite_at, FrameKind as SnapFrameKind, SnapLog, SUITE_KEY,
};

/// How long `run` waits for workers to drain after shutdown before
/// folding the final snapshot anyway.
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

/// Poll granularity of the accept / snapshot loops.
const POLL: Duration = Duration::from_millis(10);

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Ingest listen address (`127.0.0.1:0` for an ephemeral port).
    pub listen: String,
    /// Metrics listen address; `None` disables the endpoint.
    pub metrics: Option<String>,
    /// Snapshot directory (created if missing).
    pub snapshot_dir: PathBuf,
    /// Interval between snapshot folds.
    pub snapshot_every: Duration,
    /// Analysis parameters shared by every shard and the global suite.
    pub params: SuiteParams,
    /// Which analyses to run.
    pub selection: Selection,
    /// Bound of each connection's batch queue (backpressure threshold).
    pub queue_batches: usize,
    /// Compiled policy artifact to evaluate every record against, with
    /// witness-gated hot reload each snapshot cycle; `None` disables
    /// policy evaluation.
    pub policy_artifact: Option<PathBuf>,
    /// The censorship mechanism the operator expects ingested traffic
    /// to show (`serve --censor`); reported on `/metrics` next to the
    /// per-mechanism vote counters so drift is visible at a glance.
    pub expected_censor: Option<ProfileKind>,
    /// Append-only snapshot log (`serve --snap-log`): every snapshot
    /// cycle's suite delta is framed into it before being folded into the
    /// global suite, so `filterscope history` can reconstruct the state
    /// as of any past instant. `None` disables the log.
    pub snap_log: Option<PathBuf>,
    /// Compaction threshold for the snapshot log in bytes: when the log
    /// grows past this, it is rewritten as one checkpoint frame carrying
    /// the cumulative fold. `0` disables compaction.
    pub snap_log_max_bytes: u64,
}

/// Counters reported by [`Server::run`] after shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Records parsed and ingested.
    pub records: u64,
    /// Lines that failed to parse.
    pub parse_errors: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Connections dropped for framing errors.
    pub dropped_connections: u64,
    /// Snapshots written (the last one is the final state).
    pub snapshots: u64,
    /// Policy generation at shutdown (0 = no policy configured).
    pub policy_version: u64,
    /// Accepted policy hot-swaps.
    pub policy_reloads: u64,
    /// Rejected policy reload attempts (running policy kept).
    pub policy_reload_failures: u64,
}

/// One live connection as the snapshot/metrics threads see it.
struct ConnHandle {
    stats: Arc<ConnStats>,
    delta: Arc<Mutex<Shard>>,
}

/// One connection's un-folded analysis shard: the delta suite plus the
/// exact record/parse-error counts ingested into it, kept under one lock
/// so a fold can never observe content without its counts. The snap
/// log's zero-delta skip depends on this being exact — deriving the
/// per-cycle delta from the global counters instead races the workers
/// and can silently drop a folded shard from the log.
struct Shard {
    suite: AnalysisSuite,
    records: u64,
    parse_errors: u64,
}

impl Shard {
    fn new(suite: AnalysisSuite) -> Shard {
        Shard {
            suite,
            records: 0,
            parse_errors: 0,
        }
    }
}

/// A bound serve daemon; [`Server::run`] blocks until shutdown.
pub struct Server {
    config: ServeConfig,
    listener: TcpListener,
    metrics_listener: Option<TcpListener>,
    /// Artifact watcher when `policy_artifact` is configured; the mutex
    /// is only ever contended by the snapshot loop's once-per-cycle poll.
    policy: Option<Mutex<PolicyWatcher>>,
}

impl Server {
    /// Bind the ingest (and optional metrics) listeners, create the
    /// snapshot directory, and — when configured — load and witness-check
    /// the policy artifact. Fails fast on unusable addresses and on an
    /// artifact that cannot be proven faithful.
    pub fn bind(config: ServeConfig) -> Result<Server> {
        let listener = TcpListener::bind(&config.listen)
            .map_err(|e| Error::Io(format!("cannot listen on {}: {e}", config.listen)))?;
        listener.set_nonblocking(true)?;
        let metrics_listener = match &config.metrics {
            Some(addr) => {
                let l = TcpListener::bind(addr)
                    .map_err(|e| Error::Io(format!("cannot listen on {addr}: {e}")))?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        std::fs::create_dir_all(&config.snapshot_dir)?;
        let policy = match &config.policy_artifact {
            Some(path) => Some(Mutex::new(PolicyWatcher::open(path)?)),
            None => None,
        };
        Ok(Server {
            config,
            listener,
            metrics_listener,
            policy,
        })
    }

    /// The bound ingest address (resolves ephemeral ports).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        self.listener.local_addr().map_err(Error::from)
    }

    /// The bound metrics address, when the endpoint is enabled.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// Run until `shutdown` is set (SIGINT handler, `/shutdown`, or a
    /// test flipping the flag), then drain, write the final snapshot,
    /// and return the lifetime counters.
    pub fn run(&self, ctx: &AnalysisContext, shutdown: Arc<AtomicBool>) -> Result<ServeSummary> {
        let stats = ServerStats::new();
        let conns: Mutex<Vec<ConnHandle>> = Mutex::new(Vec::new());
        let mut writer = SnapshotWriter::new(&self.config.snapshot_dir)?;
        let mut global = AnalysisSuite::with_selection(&self.config.params, &self.config.selection);
        // Open the snapshot log (if configured) and rehydrate the global
        // suite from it: a restarted daemon resumes exactly where the log
        // left off, and its first snapshot already covers the recovered
        // records. A log written under a different selection cannot be
        // folded into this run's suites, so that fails closed.
        let mut snaplog: Option<SnapLog> = None;
        let mut recovered_frames = 0u64;
        // Cumulative `(records, parse_errors)` actually folded into
        // `global` (recovered baseline + every cycle's exact fold count)
        // — what a compaction checkpoint's counters must say.
        let mut folded = (0u64, 0u64);
        if let Some(path) = &self.config.snap_log {
            let log = SnapLog::open(path, self.config.snap_log_max_bytes)?;
            let (frames, _) = read_frames(path)?;
            if let Some(view) = suite_at(&frames, u64::MAX)? {
                if view.suite.keys() != global.keys() {
                    return Err(Error::InvalidConfig(format!(
                        "snap log {} was written under a different analysis \
                         selection; refusing to resume from it",
                        path.display()
                    )));
                }
                stats.records.store(view.records, Ordering::SeqCst);
                stats
                    .parse_errors
                    .store(view.parse_errors, Ordering::SeqCst);
                stats
                    .max_record_ts
                    .store(frames.last().map_or(0, |f| f.ts), Ordering::SeqCst);
                folded = (view.records, view.parse_errors);
                global = view.suite;
            }
            recovered_frames = log.frames();
            stats.snaplog_active.store(true, Ordering::SeqCst);
            stats.snaplog_bytes.store(log.bytes(), Ordering::SeqCst);
            stats.snaplog_frames.store(log.frames(), Ordering::SeqCst);
            stats
                .snaplog_last_compaction_seq
                .store(log.last_compaction_seq(), Ordering::SeqCst);
            snaplog = Some(log);
        }
        let policy_cell: Option<Arc<PolicyCell>> = self
            .policy
            .as_ref()
            .map(|w| w.lock().expect("policy lock").cell());
        if let Some(cell) = &policy_cell {
            stats.policy_version.store(cell.version(), Ordering::SeqCst);
        }
        if let Some(kind) = self.config.expected_censor {
            stats.expect_mechanism(kind);
        }

        std::thread::scope(|scope| -> Result<()> {
            // Accept loop: one reader + one worker thread per connection.
            scope.spawn(|| {
                while !shutdown.load(Ordering::SeqCst) {
                    let (stream, peer) = match self.listener.accept() {
                        Ok(pair) => pair,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL);
                            continue;
                        }
                        Err(_) => {
                            std::thread::sleep(POLL);
                            continue;
                        }
                    };
                    let id = stats.connections_total.fetch_add(1, Ordering::SeqCst);
                    stats.connections_live.fetch_add(1, Ordering::SeqCst);
                    let conn = Arc::new(ConnStats::new(id, peer.to_string()));
                    let delta = Arc::new(Mutex::new(Shard::new(AnalysisSuite::with_selection(
                        &self.config.params,
                        &self.config.selection,
                    ))));
                    conns.lock().expect("conns lock").push(ConnHandle {
                        stats: Arc::clone(&conn),
                        delta: Arc::clone(&delta),
                    });
                    let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(self.config.queue_batches);
                    {
                        let conn = Arc::clone(&conn);
                        let shutdown = &shutdown;
                        let stats = &stats;
                        scope.spawn(move || {
                            read_connection(stream, &conn, stats, shutdown, tx);
                            stats.connections_live.fetch_sub(1, Ordering::SeqCst);
                        });
                    }
                    {
                        let stats = &stats;
                        let policy = policy_cell.clone();
                        scope.spawn(move || {
                            ingest_connection(rx, &conn, stats, &delta, ctx, policy.as_deref());
                        });
                    }
                }
            });

            // Metrics endpoint (optional).
            if let Some(listener) = &self.metrics_listener {
                let shutdown = &shutdown;
                let stats = &stats;
                let conns = &conns;
                scope.spawn(move || {
                    metrics::serve_http(
                        listener,
                        shutdown,
                        || {
                            let snapshot: Vec<Arc<ConnStats>> = conns
                                .lock()
                                .expect("conns lock")
                                .iter()
                                .map(|c| Arc::clone(&c.stats))
                                .collect();
                            metrics::render(stats, &snapshot)
                        },
                        || crate::shutdown::request(shutdown),
                    );
                });
            }

            // Snapshot loop runs on this thread; its exit (after the
            // final fold) is what lets the scope join once the accept,
            // reader, worker, and metrics threads have all returned.
            let mut last_fold = Instant::now();
            loop {
                let stop = shutdown.load(Ordering::SeqCst);
                if !stop && last_fold.elapsed() < self.config.snapshot_every {
                    std::thread::sleep(POLL);
                    continue;
                }
                if stop {
                    // Readers exit on the flag; wait (bounded) for the
                    // workers to drain what was already queued.
                    let deadline = Instant::now() + DRAIN_DEADLINE;
                    loop {
                        let all_done = conns
                            .lock()
                            .expect("conns lock")
                            .iter()
                            .all(|c| c.stats.done.load(Ordering::SeqCst));
                        if all_done || Instant::now() >= deadline {
                            break;
                        }
                        std::thread::sleep(POLL);
                    }
                }
                // Reload the policy artifact between batches of work: a
                // swap accepted here is observed by every worker at its
                // next batch, without a restart.
                if let Some(watcher) = &self.policy {
                    match watcher.lock().expect("policy lock").poll() {
                        ReloadOutcome::Unchanged => {}
                        ReloadOutcome::Swapped(version) => {
                            stats.policy_version.store(version, Ordering::SeqCst);
                            stats.policy_reloads.fetch_add(1, Ordering::SeqCst);
                        }
                        ReloadOutcome::Rejected(reason) => {
                            stats.policy_reload_failures.fetch_add(1, Ordering::SeqCst);
                            eprintln!("policy reload rejected: {reason}");
                        }
                    }
                }
                // Collect this cycle's delta into a fresh suite instead of
                // folding straight into the global: the delta must be
                // framed into the snapshot log *before* it reaches the
                // global suite or the published snapshot. The shutdown
                // path runs this same cycle once more after the drain, so
                // the log and the final on-disk report never disagree.
                let mut cycle =
                    AnalysisSuite::with_selection(&self.config.params, &self.config.selection);
                let (rec_d, err_d) = fold_deltas(&conns, &mut cycle);
                last_fold = Instant::now();
                folded = (folded.0 + rec_d, folded.1 + err_d);
                let records = stats.records.load(Ordering::SeqCst);
                let parse_errors = stats.parse_errors.load(Ordering::SeqCst);
                if let Some(log) = snaplog.as_mut() {
                    if rec_d > 0 || err_d > 0 {
                        let ts = stats.max_record_ts.load(Ordering::SeqCst);
                        let value = encode_value(rec_d, err_d, &cycle);
                        if let Err(e) = log.append(SnapFrameKind::Delta, ts, SUITE_KEY, value) {
                            // The delta still reaches the global suite; the
                            // next compaction checkpoint heals the log.
                            stats.snapshot_errors.fetch_add(1, Ordering::SeqCst);
                            eprintln!("snap log append failed: {e}");
                        }
                    }
                }
                global.merge(cycle);
                if let Some(log) = snaplog.as_mut() {
                    if log.should_compact() {
                        let ts = stats.max_record_ts.load(Ordering::SeqCst);
                        // The checkpoint's counters come from the fold
                        // bookkeeping, not the live counters: they must
                        // describe exactly what the checkpointed suite
                        // contains, nothing a worker ingested since.
                        let value = encode_value(folded.0, folded.1, &global);
                        if let Err(e) = log.compact(ts, SUITE_KEY, value) {
                            stats.snapshot_errors.fetch_add(1, Ordering::SeqCst);
                            eprintln!("snap log compaction failed: {e}");
                        }
                    }
                    stats.snaplog_bytes.store(log.bytes(), Ordering::SeqCst);
                    stats.snaplog_frames.store(log.frames(), Ordering::SeqCst);
                    stats
                        .snaplog_last_compaction_seq
                        .store(log.last_compaction_seq(), Ordering::SeqCst);
                }
                let report = format!("{}\n", global.render_all(ctx));
                let summary = global.summary_json(ctx);
                let log_status = snaplog.as_ref().map(|log| SnapLogStatus {
                    log_seq: log.last_seq(),
                    recovered_frames,
                });
                match writer.write(&report, &summary, records, parse_errors, log_status) {
                    Ok(seq) => stats.snapshot_written(seq),
                    Err(e) => {
                        stats.snapshot_errors.fetch_add(1, Ordering::SeqCst);
                        eprintln!("snapshot {} failed: {e}", writer.seq() + 1);
                    }
                }
                if stop {
                    return Ok(());
                }
            }
        })?;

        Ok(ServeSummary {
            records: stats.records.load(Ordering::SeqCst),
            parse_errors: stats.parse_errors.load(Ordering::SeqCst),
            connections: stats.connections_total.load(Ordering::SeqCst),
            dropped_connections: stats.connections_dropped.load(Ordering::SeqCst),
            snapshots: writer.seq(),
            policy_version: stats.policy_version.load(Ordering::SeqCst),
            policy_reloads: stats.policy_reloads.load(Ordering::SeqCst),
            policy_reload_failures: stats.policy_reload_failures.load(Ordering::SeqCst),
        })
    }
}

/// Swap every connection's delta for a fresh twin and merge the deltas
/// into `global` (the global suite, or one snapshot cycle's collector
/// when a snap log needs the delta framed first), in accept order.
/// Holding each delta lock only for the swap keeps the ingest workers
/// off the fold's critical path. Returns the exact `(records,
/// parse_errors)` counts behind the merged content — taken under the
/// same locks as the suites, so they can never disagree with it.
fn fold_deltas(conns: &Mutex<Vec<ConnHandle>>, global: &mut AnalysisSuite) -> (u64, u64) {
    let handles: Vec<Arc<Mutex<Shard>>> = conns
        .lock()
        .expect("conns lock")
        .iter()
        .map(|c| Arc::clone(&c.delta))
        .collect();
    let (mut records, mut parse_errors) = (0u64, 0u64);
    for shard in handles {
        let taken = {
            let mut shard = shard.lock().expect("delta lock");
            records += std::mem::take(&mut shard.records);
            parse_errors += std::mem::take(&mut shard.parse_errors);
            shard.suite.take_delta()
        };
        global.merge(taken);
    }
    (records, parse_errors)
}

/// Reader half of one connection: decode frames, queue batch payloads.
/// Framing errors drop this connection only; the bounded queue's `send`
/// blocking is what turns a slow worker into TCP backpressure.
fn read_connection(
    stream: TcpStream,
    conn: &ConnStats,
    stats: &ServerStats,
    shutdown: &AtomicBool,
    tx: SyncSender<Vec<u8>>,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(PatientReader { stream, shutdown });
    loop {
        match Frame::read_from(&mut reader) {
            Ok(None) => break, // mid-stream disconnect; keep what arrived
            Ok(Some(frame)) => {
                conn.frames.fetch_add(1, Ordering::Relaxed);
                stats.frames.fetch_add(1, Ordering::Relaxed);
                conn.bytes
                    .fetch_add(frame.payload.len() as u64, Ordering::Relaxed);
                stats
                    .bytes
                    .fetch_add(frame.payload.len() as u64, Ordering::Relaxed);
                match frame.kind {
                    FrameKind::Hello => {
                        if let Ok(label) = frame.payload_str() {
                            *conn.label.lock().expect("label lock") = label.to_string();
                        }
                    }
                    FrameKind::Batch => {
                        conn.queue_depth.fetch_add(1, Ordering::SeqCst);
                        if tx.send(frame.payload).is_err() {
                            conn.queue_depth.fetch_sub(1, Ordering::SeqCst);
                            break; // worker gone; nothing left to feed
                        }
                    }
                    FrameKind::Bye => break,
                }
            }
            Err(e) => {
                if shutdown.load(Ordering::SeqCst) {
                    break; // shutdown interrupt, not a peer fault
                }
                *conn.error.lock().expect("error lock") = Some(e.to_string());
                stats.connections_dropped.fetch_add(1, Ordering::SeqCst);
                break;
            }
        }
    }
    // Dropping `tx` closes the queue; the worker drains and exits.
}

/// Worker half of one connection: parse queued batches with the
/// zero-copy view parser and ingest into this connection's delta.
/// Counter updates happen under the delta lock so a fold never observes
/// records it did not merge.
///
/// With a policy configured, every parsed record is also evaluated
/// against the compiled engine. The engine `Arc` is pinned once per
/// batch — the per-record path never takes the policy lock, and a hot
/// swap lands exactly on a batch boundary.
fn ingest_connection(
    rx: Receiver<Vec<u8>>,
    conn: &ConnStats,
    stats: &ServerStats,
    delta: &Mutex<Shard>,
    ctx: &AnalysisContext,
    policy: Option<&PolicyCell>,
) {
    let schema = Schema::canonical();
    let mut splitter = LineSplitter::new();
    let mut line_no = 0u64;
    while let Ok(payload) = rx.recv() {
        conn.queue_depth.fetch_sub(1, Ordering::SeqCst);
        let engine = policy.map(|cell| cell.current());
        let mut records = 0u64;
        let mut parse_errors = 0u64;
        let (mut allowed, mut denied, mut redirected) = (0u64, 0u64, 0u64);
        let mut mechanism = [0u64; 4];
        let mut max_ts = 0u64;
        let mut shard = delta.lock().expect("delta lock");
        for line in batch_lines(&payload) {
            line_no += 1;
            // Same order as the file ingest path: UTF-8 validity is
            // checked before the comment prefix, so a corrupt comment
            // line counts as a parse error.
            let Ok(text) = std::str::from_utf8(line) else {
                parse_errors += 1;
                continue;
            };
            if text.starts_with('#') {
                continue;
            }
            match schema.parse_view(&mut splitter, text, line_no) {
                Ok(view) => {
                    if let Some(engine) = &engine {
                        match engine.decide_url(&view.url.to_url()) {
                            Decision::Allow => allowed += 1,
                            Decision::Deny(_) => denied += 1,
                            Decision::Redirect(_) => redirected += 1,
                        }
                    }
                    if let Some(kind) = classify_mechanism_view(&view) {
                        mechanism[kind.index()] += 1;
                    }
                    max_ts = max_ts.max(view.timestamp.epoch_seconds() as u64);
                    shard.suite.ingest(ctx, &view);
                    records += 1;
                }
                Err(_) => parse_errors += 1,
            }
        }
        shard.records += records;
        shard.parse_errors += parse_errors;
        conn.records.fetch_add(records, Ordering::SeqCst);
        conn.parse_errors.fetch_add(parse_errors, Ordering::SeqCst);
        stats.records.fetch_add(records, Ordering::SeqCst);
        stats.parse_errors.fetch_add(parse_errors, Ordering::SeqCst);
        if engine.is_some() {
            stats.policy_allowed.fetch_add(allowed, Ordering::SeqCst);
            stats.policy_denied.fetch_add(denied, Ordering::SeqCst);
            stats
                .policy_redirected
                .fetch_add(redirected, Ordering::SeqCst);
        }
        for (slot, votes) in stats.mechanism.iter().zip(mechanism) {
            if votes > 0 {
                slot.fetch_add(votes, Ordering::SeqCst);
            }
        }
        // Still under the delta lock: a fold that merged these records
        // must also observe their timestamp for the log frame it writes.
        if max_ts > 0 {
            stats.max_record_ts.fetch_max(max_ts, Ordering::SeqCst);
        }
        drop(shard);
    }
    conn.done.store(true, Ordering::SeqCst);
}

/// A `TcpStream` wrapper that retries read timeouts until shutdown is
/// requested, so `Frame::read_from` sees frames as atomic reads: a slow
/// sender never produces a spurious truncation error.
struct PatientReader<'a> {
    stream: TcpStream,
    shutdown: &'a AtomicBool,
}

impl Read for PatientReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            match self.stream.read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "shutdown requested",
                        ));
                    }
                }
                other => return other,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn config(dir: &std::path::Path) -> ServeConfig {
        ServeConfig {
            listen: "127.0.0.1:0".to_string(),
            metrics: None,
            snapshot_dir: dir.to_path_buf(),
            snapshot_every: Duration::from_millis(50),
            params: SuiteParams::new(3),
            selection: Selection::default_suite(),
            queue_batches: 4,
            policy_artifact: None,
            expected_censor: None,
            snap_log: None,
            snap_log_max_bytes: 0,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fs-server-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn corrupt_frame_drops_connection_but_not_server() {
        let dir = temp_dir("corrupt");
        let server = Server::bind(config(&dir)).unwrap();
        let addr = server.local_addr().unwrap();
        let ctx = AnalysisContext::standard(None);
        let shutdown = Arc::new(AtomicBool::new(false));
        let summary = std::thread::scope(|s| {
            let handle = s.spawn(|| server.run(&ctx, Arc::clone(&shutdown)));
            // A connection that speaks garbage.
            let mut bad = TcpStream::connect(addr).unwrap();
            bad.write_all(b"this is not a frame").unwrap();
            drop(bad);
            // A well-behaved connection right after.
            let mut good = TcpStream::connect(addr).unwrap();
            Frame::hello("good").write_to(&mut good).unwrap();
            Frame::bye().write_to(&mut good).unwrap();
            drop(good);
            // Let the server observe both, then stop.
            std::thread::sleep(Duration::from_millis(300));
            shutdown.store(true, Ordering::SeqCst);
            handle.join().unwrap().unwrap()
        });
        assert_eq!(summary.connections, 2);
        assert_eq!(summary.dropped_connections, 1);
        assert!(summary.snapshots >= 1);
        assert!(dir.join("report.txt").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn policy_hot_swap_changes_decisions_between_batches() {
        use filterscope_logformat::record::RecordBuilder;
        use filterscope_logformat::RequestUrl;
        use filterscope_proxy::{artifact, PolicyData, RuleFamily};

        let dir = temp_dir("hotswap");
        std::fs::create_dir_all(&dir).unwrap();
        let artifact_path = dir.join("policy.fscp");
        let full = PolicyData::standard();
        std::fs::write(&artifact_path, artifact::compile(&full, 1, None)).unwrap();

        let mut cfg = config(&dir.join("snaps"));
        cfg.metrics = Some("127.0.0.1:0".to_string());
        cfg.policy_artifact = Some(artifact_path.clone());
        cfg.expected_censor = Some(ProfileKind::BlueCoat);
        let server = Server::bind(cfg).unwrap();
        let addr = server.local_addr().unwrap();
        let metrics_addr = server.metrics_addr().unwrap();
        let ctx = AnalysisContext::standard(None);
        let shutdown = Arc::new(AtomicBool::new(false));

        // One canonical line whose URL the standard policy keyword-denies.
        let line = RecordBuilder::new(
            filterscope_core::Timestamp::parse_fields("2011-08-03", "10:30:00").unwrap(),
            filterscope_core::ProxyId::Sg42,
            RequestUrl::http("google.com", "/tbproxy/af/query"),
        )
        .policy_denied()
        .build()
        .write_csv();

        let scrape = || {
            let mut sock = TcpStream::connect(metrics_addr).unwrap();
            write!(sock, "GET /metrics HTTP/1.0\r\n\r\n").unwrap();
            let mut body = String::new();
            sock.read_to_string(&mut body).unwrap();
            body
        };
        let gauge = |page: &str, name: &str| -> u64 {
            page.lines()
                .find_map(|l| l.strip_prefix(name))
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(0)
        };
        let await_gauge = |name: &str, want: u64| {
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                let page = scrape();
                if gauge(&page, name) >= want {
                    return page;
                }
                assert!(Instant::now() < deadline, "timed out on {name} >= {want}");
                std::thread::sleep(Duration::from_millis(20));
            }
        };

        let summary = std::thread::scope(|s| {
            let handle = s.spawn(|| server.run(&ctx, Arc::clone(&shutdown)));
            let mut sock = TcpStream::connect(addr).unwrap();
            Frame::hello("swap-test").write_to(&mut sock).unwrap();

            // Batch 1 under the standard policy: denied.
            Frame::batch(format!("{line}\n").into_bytes())
                .write_to(&mut sock)
                .unwrap();
            let page = await_gauge("filterscope_policy_decisions_total{decision=\"deny\"} ", 1);
            assert_eq!(gauge(&page, "filterscope_policy_version "), 1);
            // The policy-denied line carries the Blue Coat fingerprint
            // (DENIED + HTTP 403), matching the declared expectation.
            assert_eq!(
                gauge(
                    &page,
                    "filterscope_mechanism_records_total{mechanism=\"blue-coat\"} "
                ),
                1
            );
            assert!(page.contains("filterscope_expected_mechanism{mechanism=\"blue-coat\"} 1"));

            // Swap in an artifact without keyword rules; no restart.
            let ablated = full.clone().without(RuleFamily::Keywords);
            std::fs::write(&artifact_path, artifact::compile(&ablated, 1, None)).unwrap();
            await_gauge("filterscope_policy_version ", 2);

            // Batch 2, same line, same connection: now allowed.
            Frame::batch(format!("{line}\n").into_bytes())
                .write_to(&mut sock)
                .unwrap();
            await_gauge("filterscope_policy_decisions_total{decision=\"allow\"} ", 1);

            // A corrupt artifact is rejected; the running policy stays.
            let mut bad = artifact::compile(&full, 1, None);
            let mid = bad.len() / 2;
            bad[mid] ^= 0x01;
            std::fs::write(&artifact_path, &bad).unwrap();
            let page = await_gauge("filterscope_policy_reload_failures_total ", 1);
            assert_eq!(gauge(&page, "filterscope_policy_version "), 2);

            // Batch 3 still decides under the last good (ablated) policy.
            Frame::batch(format!("{line}\n").into_bytes())
                .write_to(&mut sock)
                .unwrap();
            let page = await_gauge("filterscope_policy_decisions_total{decision=\"allow\"} ", 2);
            assert_eq!(
                gauge(
                    &page,
                    "filterscope_policy_decisions_total{decision=\"deny\"} "
                ),
                1
            );

            Frame::bye().write_to(&mut sock).unwrap();
            drop(sock);
            shutdown.store(true, Ordering::SeqCst);
            handle.join().unwrap().unwrap()
        });
        assert_eq!(summary.records, 3);
        assert_eq!(summary.policy_version, 2);
        assert_eq!(summary.policy_reloads, 1);
        assert!(summary.policy_reload_failures >= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// `n` canonical log lines over varied hosts/paths/times; every third
    /// one censored.
    fn canonical_lines(n: usize) -> String {
        use filterscope_logformat::record::RecordBuilder;
        use filterscope_logformat::RequestUrl;
        let mut out = String::new();
        for i in 0..n {
            let time = format!("10:{:02}:{:02}", i / 60, i % 60);
            let b = RecordBuilder::new(
                filterscope_core::Timestamp::parse_fields("2011-08-03", &time).unwrap(),
                filterscope_core::ProxyId::Sg42,
                RequestUrl::http(&format!("host{}.example.com", i % 7), &format!("/p{i}")),
            );
            let b = if i % 3 == 0 { b.policy_denied() } else { b };
            out.push_str(&b.build().write_csv());
            out.push('\n');
        }
        out
    }

    #[test]
    fn shutdown_flushes_final_delta_frame_before_final_snapshot() {
        let dir = temp_dir("snaplog-drain");
        std::fs::create_dir_all(&dir).unwrap();
        let log_path = dir.join("snap.log");
        let mut cfg = config(&dir.join("snaps"));
        // Only the shutdown cycle runs, so the log's single frame must
        // come from the drain path.
        cfg.snapshot_every = Duration::from_secs(3600);
        cfg.snap_log = Some(log_path.clone());
        let server = Server::bind(cfg).unwrap();
        let addr = server.local_addr().unwrap();
        let ctx = AnalysisContext::standard(None);
        let shutdown = Arc::new(AtomicBool::new(false));
        let summary = std::thread::scope(|s| {
            let handle = s.spawn(|| server.run(&ctx, Arc::clone(&shutdown)));
            let mut sock = TcpStream::connect(addr).unwrap();
            Frame::hello("drain-test").write_to(&mut sock).unwrap();
            Frame::batch(canonical_lines(20).into_bytes())
                .write_to(&mut sock)
                .unwrap();
            Frame::bye().write_to(&mut sock).unwrap();
            drop(sock);
            std::thread::sleep(Duration::from_millis(300));
            shutdown.store(true, Ordering::SeqCst);
            handle.join().unwrap().unwrap()
        });
        assert_eq!(summary.records, 20);
        assert_eq!(summary.snapshots, 1, "only the shutdown cycle ran");
        // The final frame reached the log before the final snapshot:
        // replaying the log reproduces the on-disk report byte for byte.
        let (frames, _) = read_frames(&log_path).unwrap();
        assert_eq!(frames.len(), 1);
        let view = suite_at(&frames, u64::MAX).unwrap().unwrap();
        assert_eq!(view.records, 20);
        let report = std::fs::read_to_string(dir.join("snaps/report.txt")).unwrap();
        assert_eq!(format!("{}\n", view.suite.render_all(&ctx)), report);
        let status = std::fs::read_to_string(dir.join("snaps/status.json")).unwrap();
        assert!(status.contains("\"log_seq\": 1"), "{status}");
        assert!(status.contains("\"recovered_frames\": 0"), "{status}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restart_recovers_state_from_snap_log() {
        let dir = temp_dir("snaplog-restart");
        std::fs::create_dir_all(&dir).unwrap();
        let log_path = dir.join("snap.log");
        let ctx = AnalysisContext::standard(None);

        // First run ingests records, frames them, shuts down.
        let mut cfg = config(&dir.join("run1"));
        cfg.snapshot_every = Duration::from_secs(3600);
        cfg.snap_log = Some(log_path.clone());
        let server = Server::bind(cfg).unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            let handle = s.spawn(|| server.run(&ctx, Arc::clone(&shutdown)));
            let mut sock = TcpStream::connect(addr).unwrap();
            Frame::hello("run1").write_to(&mut sock).unwrap();
            Frame::batch(canonical_lines(15).into_bytes())
                .write_to(&mut sock)
                .unwrap();
            Frame::bye().write_to(&mut sock).unwrap();
            drop(sock);
            std::thread::sleep(Duration::from_millis(300));
            shutdown.store(true, Ordering::SeqCst);
            handle.join().unwrap().unwrap()
        });
        let first_report = std::fs::read_to_string(dir.join("run1/report.txt")).unwrap();

        // Second run resumes from the log with no new traffic: its final
        // snapshot reproduces the first run's report, counters included,
        // and appends no new frame for the empty cycle.
        let mut cfg = config(&dir.join("run2"));
        cfg.snap_log = Some(log_path.clone());
        let server = Server::bind(cfg).unwrap();
        let summary = server.run(&ctx, Arc::new(AtomicBool::new(true))).unwrap();
        assert_eq!(summary.records, 15, "recovered records are preloaded");
        let second_report = std::fs::read_to_string(dir.join("run2/report.txt")).unwrap();
        assert_eq!(second_report, first_report);
        let status = std::fs::read_to_string(dir.join("run2/status.json")).unwrap();
        assert!(status.contains("\"records\": 15"), "{status}");
        assert!(status.contains("\"recovered_frames\": 1"), "{status}");
        assert!(status.contains("\"log_seq\": 1"), "{status}");

        // A log written under a different selection fails closed.
        let mut cfg = config(&dir.join("run3"));
        cfg.snap_log = Some(log_path.clone());
        cfg.selection = Selection::only(&["datasets", "https"]).unwrap();
        let server = Server::bind(cfg).unwrap();
        assert!(server.run(&ctx, Arc::new(AtomicBool::new(true))).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shutdown_with_no_connections_still_writes_final_snapshot() {
        let dir = temp_dir("empty");
        let server = Server::bind(config(&dir)).unwrap();
        let ctx = AnalysisContext::standard(None);
        let shutdown = Arc::new(AtomicBool::new(true));
        let summary = server.run(&ctx, shutdown).unwrap();
        assert_eq!(summary.records, 0);
        assert_eq!(summary.snapshots, 1);
        assert!(dir.join("summary.json").exists());
        assert!(dir.join("status.json").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
