//! The `filterscope serve` daemon: N concurrent framed TCP connections,
//! per-connection analysis shards, periodic snapshot folds.
//!
//! # Thread model
//!
//! ```text
//! accept thread ──spawns──► reader ──bounded queue──► worker (one pair
//!                           per connection; the worker ingests into that
//!                           connection's private delta suite)
//! snapshot thread: every interval, swaps every delta for a fresh twin
//!                  (`AnalysisSuite::take_delta`) and folds the deltas
//!                  into the global suite in connection order, then
//!                  writes an atomic snapshot
//! metrics thread:  plaintext HTTP endpoint (optional)
//! ```
//!
//! The concurrency-critical core — shard ingest/fold, per-batch policy
//! pinning, the append-before-merge snapshot cycle, and the shutdown
//! drain — lives in [`crate::proto`], written against the [`interleave`]
//! primitives so the interleaving explorer checks the same functions this
//! daemon runs (`tests/model_proto.rs`). This module owns everything the
//! model does not: sockets, files, wall-clock pacing, and the signal
//! plumbing.
//!
//! # Why the result is byte-identical to batch `analyze`
//!
//! Every delta and the global suite share one `Selection`, and every
//! registered analysis satisfies the merge contract (`ingest` is
//! associative under `merge` — property-tested in `prop_registry.rs`),
//! so `fold(deltas)` equals a single sequential pass over the same
//! records regardless of how they interleaved across connections or
//! snapshot cycles.
//!
//! # Failure containment
//!
//! * A corrupt frame drops **that connection** (counted, surfaced on
//!   `/metrics`); every other connection and the daemon keep running.
//! * A full queue blocks that connection's reader, which stops draining
//!   the socket — backpressure reaches the client through TCP.
//! * Shutdown (SIGINT or `GET /shutdown`) stops the accept loop, lets
//!   every worker drain its queue, folds the final deltas, and writes a
//!   complete last snapshot before `run` returns.

use std::io::{BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use filterscope_analysis::{AnalysisContext, AnalysisSuite, Selection, SuiteParams};
use filterscope_core::{Error, Result};
use filterscope_logformat::frame::{Frame, FrameKind};
use interleave::{sync_channel, IAtomicBool, IMutex, ISender, Ordering};

use crate::metrics::{self, ConnStats, ServerStats};
use crate::policy::{PolicyCell, PolicyWatcher, ReloadOutcome};
use crate::proto::{self, ConnHandle, FoldTotals, PublishCounters, Shard, SnapSink};
use crate::snapshot::{SnapLogStatus, SnapshotWriter};
use filterscope_proxy::ProfileKind;
use filterscope_snapstore::{
    encode_value, read_frames, suite_at, FrameKind as SnapFrameKind, SnapLog, SUITE_KEY,
};

/// How long `run` waits for workers to drain after shutdown before
/// folding the final snapshot anyway.
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

/// Poll granularity of the accept / snapshot loops.
const POLL: Duration = Duration::from_millis(10);

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Ingest listen address (`127.0.0.1:0` for an ephemeral port).
    pub listen: String,
    /// Metrics listen address; `None` disables the endpoint.
    pub metrics: Option<String>,
    /// Snapshot directory (created if missing).
    pub snapshot_dir: PathBuf,
    /// Interval between snapshot folds.
    pub snapshot_every: Duration,
    /// Analysis parameters shared by every shard and the global suite.
    pub params: SuiteParams,
    /// Which analyses to run.
    pub selection: Selection,
    /// Bound of each connection's batch queue (backpressure threshold).
    pub queue_batches: usize,
    /// Compiled policy artifact to evaluate every record against, with
    /// witness-gated hot reload each snapshot cycle; `None` disables
    /// policy evaluation.
    pub policy_artifact: Option<PathBuf>,
    /// The censorship mechanism the operator expects ingested traffic
    /// to show (`serve --censor`); reported on `/metrics` next to the
    /// per-mechanism vote counters so drift is visible at a glance.
    pub expected_censor: Option<ProfileKind>,
    /// Append-only snapshot log (`serve --snap-log`): every snapshot
    /// cycle's suite delta is framed into it before being folded into the
    /// global suite, so `filterscope history` can reconstruct the state
    /// as of any past instant. `None` disables the log.
    pub snap_log: Option<PathBuf>,
    /// Compaction threshold for the snapshot log in bytes: when the log
    /// grows past this, it is rewritten as one checkpoint frame carrying
    /// the cumulative fold. `0` disables compaction.
    pub snap_log_max_bytes: u64,
}

/// Counters reported by [`Server::run`] after shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Records parsed and ingested.
    pub records: u64,
    /// Lines that failed to parse.
    pub parse_errors: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Connections dropped for framing errors.
    pub dropped_connections: u64,
    /// Snapshots written (the last one is the final state).
    pub snapshots: u64,
    /// Policy generation at shutdown (0 = no policy configured).
    pub policy_version: u64,
    /// Accepted policy hot-swaps.
    pub policy_reloads: u64,
    /// Rejected policy reload attempts (running policy kept).
    pub policy_reload_failures: u64,
}

/// A bound serve daemon; [`Server::run`] blocks until shutdown.
pub struct Server {
    config: ServeConfig,
    listener: TcpListener,
    metrics_listener: Option<TcpListener>,
    /// Artifact watcher when `policy_artifact` is configured; the mutex
    /// is only ever contended by the snapshot loop's once-per-cycle poll.
    policy: Option<IMutex<PolicyWatcher>>,
}

/// The production [`SnapSink`]: the optional append-only snap log plus
/// the atomic report/summary/status writer, with the snaplog gauges
/// refreshed once per publish.
struct LogSink<'a> {
    log: Option<SnapLog>,
    writer: SnapshotWriter,
    ctx: &'a AnalysisContext,
    stats: &'a ServerStats,
    recovered_frames: u64,
}

impl SnapSink for LogSink<'_> {
    fn append_delta(
        &mut self,
        ts: u64,
        records: u64,
        parse_errors: u64,
        delta: &AnalysisSuite,
    ) -> std::result::Result<(), String> {
        let Some(log) = self.log.as_mut() else {
            return Ok(());
        };
        let value = encode_value(records, parse_errors, delta);
        log.append(SnapFrameKind::Delta, ts, SUITE_KEY, value)
            .map(|_| ())
            .map_err(|e| format!("snap log append failed: {e}"))
    }

    fn should_checkpoint(&self) -> bool {
        self.log.as_ref().is_some_and(SnapLog::should_compact)
    }

    fn checkpoint(
        &mut self,
        ts: u64,
        records: u64,
        parse_errors: u64,
        global: &AnalysisSuite,
    ) -> std::result::Result<(), String> {
        let Some(log) = self.log.as_mut() else {
            return Ok(());
        };
        // The checkpoint's counters come from the fold bookkeeping, not
        // the live counters: they must describe exactly what the
        // checkpointed suite contains, nothing a worker ingested since.
        let value = encode_value(records, parse_errors, global);
        log.compact(ts, SUITE_KEY, value)
            .map(|_| ())
            .map_err(|e| format!("snap log compaction failed: {e}"))
    }

    fn publish(
        &mut self,
        counters: PublishCounters,
        global: &AnalysisSuite,
    ) -> std::result::Result<(), String> {
        if let Some(log) = self.log.as_ref() {
            let stats = self.stats;
            stats.snaplog_bytes.store(log.bytes(), Ordering::SeqCst);
            stats.snaplog_frames.store(log.frames(), Ordering::SeqCst);
            stats
                .snaplog_last_compaction_seq
                .store(log.last_compaction_seq(), Ordering::SeqCst);
        }
        let report = format!("{}\n", global.render_all(self.ctx));
        let summary = global.summary_json(self.ctx);
        let log_status = self.log.as_ref().map(|log| SnapLogStatus {
            log_seq: log.last_seq(),
            recovered_frames: self.recovered_frames,
        });
        match self.writer.write(
            &report,
            &summary,
            counters.records,
            counters.parse_errors,
            log_status,
        ) {
            Ok(seq) => {
                self.stats.snapshot_written(seq);
                Ok(())
            }
            Err(e) => Err(format!("snapshot {} failed: {e}", self.writer.seq() + 1)),
        }
    }
}

impl Server {
    /// Bind the ingest (and optional metrics) listeners, create the
    /// snapshot directory, and — when configured — load and witness-check
    /// the policy artifact. Fails fast on unusable addresses and on an
    /// artifact that cannot be proven faithful.
    pub fn bind(config: ServeConfig) -> Result<Server> {
        let listener = TcpListener::bind(&config.listen)
            .map_err(|e| Error::Io(format!("cannot listen on {}: {e}", config.listen)))?;
        listener.set_nonblocking(true)?;
        let metrics_listener = match &config.metrics {
            Some(addr) => {
                let l = TcpListener::bind(addr)
                    .map_err(|e| Error::Io(format!("cannot listen on {addr}: {e}")))?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        std::fs::create_dir_all(&config.snapshot_dir)?;
        let policy = match &config.policy_artifact {
            Some(path) => Some(IMutex::new(PolicyWatcher::open(path)?)),
            None => None,
        };
        Ok(Server {
            config,
            listener,
            metrics_listener,
            policy,
        })
    }

    /// The bound ingest address (resolves ephemeral ports).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        self.listener.local_addr().map_err(Error::from)
    }

    /// The bound metrics address, when the endpoint is enabled.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// Run until `shutdown` is set (SIGINT handler, `/shutdown`, or a
    /// test flipping the flag), then drain, write the final snapshot,
    /// and return the lifetime counters.
    pub fn run(&self, ctx: &AnalysisContext, shutdown: Arc<IAtomicBool>) -> Result<ServeSummary> {
        let stats = ServerStats::new();
        let conns: IMutex<Vec<ConnHandle>> = IMutex::new(Vec::new());
        let writer = SnapshotWriter::new(&self.config.snapshot_dir)?;
        let mut global = AnalysisSuite::with_selection(&self.config.params, &self.config.selection);
        // Open the snapshot log (if configured) and rehydrate the global
        // suite from it: a restarted daemon resumes exactly where the log
        // left off, and its first snapshot already covers the recovered
        // records. A log written under a different selection cannot be
        // folded into this run's suites, so that fails closed.
        let mut snaplog: Option<SnapLog> = None;
        let mut recovered_frames = 0u64;
        // Cumulative counts actually folded into `global` (recovered
        // baseline + every cycle's exact fold count) — what a compaction
        // checkpoint's counters must say.
        let mut folded = FoldTotals::default();
        if let Some(path) = &self.config.snap_log {
            let log = SnapLog::open(path, self.config.snap_log_max_bytes)?;
            let (frames, _) = read_frames(path)?;
            if let Some(view) = suite_at(&frames, u64::MAX)? {
                if view.suite.keys() != global.keys() {
                    return Err(Error::InvalidConfig(format!(
                        "snap log {} was written under a different analysis \
                         selection; refusing to resume from it",
                        path.display()
                    )));
                }
                stats.records.store(view.records, Ordering::SeqCst);
                stats
                    .parse_errors
                    .store(view.parse_errors, Ordering::SeqCst);
                stats
                    .max_record_ts
                    .store(frames.last().map_or(0, |f| f.ts), Ordering::SeqCst);
                folded = FoldTotals {
                    records: view.records,
                    parse_errors: view.parse_errors,
                };
                global = view.suite;
            }
            recovered_frames = log.frames();
            stats.snaplog_active.store(true, Ordering::SeqCst);
            stats.snaplog_bytes.store(log.bytes(), Ordering::SeqCst);
            stats.snaplog_frames.store(log.frames(), Ordering::SeqCst);
            stats
                .snaplog_last_compaction_seq
                .store(log.last_compaction_seq(), Ordering::SeqCst);
            snaplog = Some(log);
        }
        let policy_cell: Option<Arc<PolicyCell>> = self.policy.as_ref().map(|w| w.lock().cell());
        if let Some(cell) = &policy_cell {
            stats.policy_version.store(cell.version(), Ordering::SeqCst);
        }
        if let Some(kind) = self.config.expected_censor {
            stats.expect_mechanism(kind);
        }
        let mut sink = LogSink {
            log: snaplog,
            writer,
            ctx,
            stats: &stats,
            recovered_frames,
        };

        std::thread::scope(|scope| -> Result<()> {
            // Accept loop: one reader + one worker thread per connection.
            scope.spawn(|| {
                while !shutdown.load(Ordering::SeqCst) {
                    let (stream, peer) = match self.listener.accept() {
                        Ok(pair) => pair,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL);
                            continue;
                        }
                        Err(_) => {
                            std::thread::sleep(POLL);
                            continue;
                        }
                    };
                    let id = stats.connections_total.fetch_add(1, Ordering::SeqCst);
                    stats.connections_live.fetch_add(1, Ordering::SeqCst);
                    let conn = Arc::new(ConnStats::new(id, peer.to_string()));
                    let delta = Arc::new(IMutex::new(Shard::new(AnalysisSuite::with_selection(
                        &self.config.params,
                        &self.config.selection,
                    ))));
                    conns.lock().push(ConnHandle {
                        stats: Arc::clone(&conn),
                        delta: Arc::clone(&delta),
                    });
                    let (tx, rx) = sync_channel::<Vec<u8>>(self.config.queue_batches);
                    {
                        let conn = Arc::clone(&conn);
                        let shutdown = &shutdown;
                        let stats = &stats;
                        scope.spawn(move || {
                            read_connection(stream, &conn, stats, shutdown, tx);
                            stats.connections_live.fetch_sub(1, Ordering::SeqCst);
                        });
                    }
                    {
                        let stats = &stats;
                        let policy = policy_cell.clone();
                        scope.spawn(move || {
                            proto::run_worker(rx, &conn, stats, &delta, ctx, policy.as_deref());
                        });
                    }
                }
            });

            // Metrics endpoint (optional).
            if let Some(listener) = &self.metrics_listener {
                let shutdown = &shutdown;
                let stats = &stats;
                let conns = &conns;
                scope.spawn(move || {
                    metrics::serve_http(
                        listener,
                        shutdown,
                        || {
                            let snapshot: Vec<Arc<ConnStats>> =
                                conns.lock().iter().map(|c| Arc::clone(&c.stats)).collect();
                            metrics::render(stats, &snapshot)
                        },
                        || crate::shutdown::request(shutdown),
                    );
                });
            }

            // Snapshot loop runs on this thread; its exit (after the
            // final fold) is what lets the scope join once the accept,
            // reader, worker, and metrics threads have all returned.
            let mut last_fold = Instant::now();
            loop {
                let stop = shutdown.load(Ordering::SeqCst);
                if !stop && last_fold.elapsed() < self.config.snapshot_every {
                    std::thread::sleep(POLL);
                    continue;
                }
                if stop {
                    // Readers exit on the flag; wait (bounded) for the
                    // workers to drain what was already queued.
                    let deadline = Instant::now() + DRAIN_DEADLINE;
                    proto::await_drain(&conns, || {
                        if Instant::now() >= deadline {
                            return true;
                        }
                        std::thread::sleep(POLL);
                        false
                    });
                }
                // Reload the policy artifact between batches of work: a
                // swap accepted here is observed by every worker at its
                // next batch, without a restart.
                if let Some(watcher) = &self.policy {
                    match watcher.lock().poll() {
                        ReloadOutcome::Unchanged => {}
                        ReloadOutcome::Swapped(version) => {
                            stats.policy_version.store(version, Ordering::SeqCst);
                            stats.policy_reloads.fetch_add(1, Ordering::SeqCst);
                        }
                        ReloadOutcome::Rejected(reason) => {
                            stats.policy_reload_failures.fetch_add(1, Ordering::SeqCst);
                            eprintln!("policy reload rejected: {reason}");
                        }
                    }
                }
                // One snapshot cycle: fold into a fresh collector, frame
                // the delta before the merge, compact if due, publish.
                // The shutdown path runs this same cycle once more after
                // the drain, so the log and the final on-disk report
                // never disagree.
                let cycle =
                    AnalysisSuite::with_selection(&self.config.params, &self.config.selection);
                last_fold = Instant::now();
                for e in proto::snapshot_cycle(
                    &conns,
                    cycle,
                    &mut global,
                    &mut folded,
                    &stats,
                    &mut sink,
                ) {
                    eprintln!("{e}");
                }
                if stop {
                    return Ok(());
                }
            }
        })?;

        Ok(ServeSummary {
            records: stats.records.load(Ordering::SeqCst),
            parse_errors: stats.parse_errors.load(Ordering::SeqCst),
            connections: stats.connections_total.load(Ordering::SeqCst),
            dropped_connections: stats.connections_dropped.load(Ordering::SeqCst),
            snapshots: sink.writer.seq(),
            policy_version: stats.policy_version.load(Ordering::SeqCst),
            policy_reloads: stats.policy_reloads.load(Ordering::SeqCst),
            policy_reload_failures: stats.policy_reload_failures.load(Ordering::SeqCst),
        })
    }
}

/// Reader half of one connection: decode frames, queue batch payloads.
/// Framing errors drop this connection only; the bounded queue's `send`
/// blocking is what turns a slow worker into TCP backpressure.
fn read_connection(
    stream: TcpStream,
    conn: &ConnStats,
    stats: &ServerStats,
    shutdown: &IAtomicBool,
    tx: ISender<Vec<u8>>,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(PatientReader { stream, shutdown });
    loop {
        match Frame::read_from(&mut reader) {
            Ok(None) => break, // mid-stream disconnect; keep what arrived
            Ok(Some(frame)) => {
                conn.frames.fetch_add(1, Ordering::Relaxed);
                stats.frames.fetch_add(1, Ordering::Relaxed);
                conn.bytes
                    .fetch_add(frame.payload.len() as u64, Ordering::Relaxed);
                stats
                    .bytes
                    .fetch_add(frame.payload.len() as u64, Ordering::Relaxed);
                match frame.kind {
                    FrameKind::Hello => {
                        if let Ok(label) = frame.payload_str() {
                            *conn.label.lock() = label.to_string();
                        }
                    }
                    FrameKind::Batch => {
                        conn.queue_depth.fetch_add(1, Ordering::SeqCst);
                        if tx.send(frame.payload).is_err() {
                            conn.queue_depth.fetch_sub(1, Ordering::SeqCst);
                            break; // worker gone; nothing left to feed
                        }
                    }
                    FrameKind::Bye => break,
                }
            }
            Err(e) => {
                if shutdown.load(Ordering::SeqCst) {
                    break; // shutdown interrupt, not a peer fault
                }
                *conn.error.lock() = Some(e.to_string());
                stats.connections_dropped.fetch_add(1, Ordering::SeqCst);
                break;
            }
        }
    }
    // Dropping `tx` closes the queue; the worker drains and exits.
}

/// A `TcpStream` wrapper that retries read timeouts until shutdown is
/// requested, so `Frame::read_from` sees frames as atomic reads: a slow
/// sender never produces a spurious truncation error.
struct PatientReader<'a> {
    stream: TcpStream,
    shutdown: &'a IAtomicBool,
}

impl Read for PatientReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            match self.stream.read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "shutdown requested",
                        ));
                    }
                }
                other => return other,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn config(dir: &std::path::Path) -> ServeConfig {
        ServeConfig {
            listen: "127.0.0.1:0".to_string(),
            metrics: None,
            snapshot_dir: dir.to_path_buf(),
            snapshot_every: Duration::from_millis(50),
            params: SuiteParams::new(3),
            selection: Selection::default_suite(),
            queue_batches: 4,
            policy_artifact: None,
            expected_censor: None,
            snap_log: None,
            snap_log_max_bytes: 0,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fs-server-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn corrupt_frame_drops_connection_but_not_server() {
        let dir = temp_dir("corrupt");
        let server = Server::bind(config(&dir)).unwrap();
        let addr = server.local_addr().unwrap();
        let ctx = AnalysisContext::standard(None);
        let shutdown = Arc::new(IAtomicBool::new(false));
        let summary = std::thread::scope(|s| {
            let handle = s.spawn(|| server.run(&ctx, Arc::clone(&shutdown)));
            // A connection that speaks garbage.
            let mut bad = TcpStream::connect(addr).unwrap();
            bad.write_all(b"this is not a frame").unwrap();
            drop(bad);
            // A well-behaved connection right after.
            let mut good = TcpStream::connect(addr).unwrap();
            Frame::hello("good").write_to(&mut good).unwrap();
            Frame::bye().write_to(&mut good).unwrap();
            drop(good);
            // Let the server observe both, then stop.
            std::thread::sleep(Duration::from_millis(300));
            shutdown.store(true, Ordering::SeqCst);
            handle.join().unwrap().unwrap()
        });
        assert_eq!(summary.connections, 2);
        assert_eq!(summary.dropped_connections, 1);
        assert!(summary.snapshots >= 1);
        assert!(dir.join("report.txt").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn policy_hot_swap_changes_decisions_between_batches() {
        use filterscope_logformat::record::RecordBuilder;
        use filterscope_logformat::RequestUrl;
        use filterscope_proxy::{artifact, PolicyData, RuleFamily};

        let dir = temp_dir("hotswap");
        std::fs::create_dir_all(&dir).unwrap();
        let artifact_path = dir.join("policy.fscp");
        let full = PolicyData::standard();
        std::fs::write(&artifact_path, artifact::compile(&full, 1, None)).unwrap();

        let mut cfg = config(&dir.join("snaps"));
        cfg.metrics = Some("127.0.0.1:0".to_string());
        cfg.policy_artifact = Some(artifact_path.clone());
        cfg.expected_censor = Some(ProfileKind::BlueCoat);
        let server = Server::bind(cfg).unwrap();
        let addr = server.local_addr().unwrap();
        let metrics_addr = server.metrics_addr().unwrap();
        let ctx = AnalysisContext::standard(None);
        let shutdown = Arc::new(IAtomicBool::new(false));

        // One canonical line whose URL the standard policy keyword-denies.
        let line = RecordBuilder::new(
            filterscope_core::Timestamp::parse_fields("2011-08-03", "10:30:00").unwrap(),
            filterscope_core::ProxyId::Sg42,
            RequestUrl::http("google.com", "/tbproxy/af/query"),
        )
        .policy_denied()
        .build()
        .write_csv();

        let scrape = || {
            let mut sock = TcpStream::connect(metrics_addr).unwrap();
            write!(sock, "GET /metrics HTTP/1.0\r\n\r\n").unwrap();
            let mut body = String::new();
            sock.read_to_string(&mut body).unwrap();
            body
        };
        let gauge = |page: &str, name: &str| -> u64 {
            page.lines()
                .find_map(|l| l.strip_prefix(name))
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(0)
        };
        let await_gauge = |name: &str, want: u64| {
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                let page = scrape();
                if gauge(&page, name) >= want {
                    return page;
                }
                assert!(Instant::now() < deadline, "timed out on {name} >= {want}");
                std::thread::sleep(Duration::from_millis(20));
            }
        };

        let summary = std::thread::scope(|s| {
            let handle = s.spawn(|| server.run(&ctx, Arc::clone(&shutdown)));
            let mut sock = TcpStream::connect(addr).unwrap();
            Frame::hello("swap-test").write_to(&mut sock).unwrap();

            // Batch 1 under the standard policy: denied.
            Frame::batch(format!("{line}\n").into_bytes())
                .write_to(&mut sock)
                .unwrap();
            let page = await_gauge("filterscope_policy_decisions_total{decision=\"deny\"} ", 1);
            assert_eq!(gauge(&page, "filterscope_policy_version "), 1);
            // The policy-denied line carries the Blue Coat fingerprint
            // (DENIED + HTTP 403), matching the declared expectation.
            assert_eq!(
                gauge(
                    &page,
                    "filterscope_mechanism_records_total{mechanism=\"blue-coat\"} "
                ),
                1
            );
            assert!(page.contains("filterscope_expected_mechanism{mechanism=\"blue-coat\"} 1"));

            // Swap in an artifact without keyword rules; no restart.
            let ablated = full.clone().without(RuleFamily::Keywords);
            std::fs::write(&artifact_path, artifact::compile(&ablated, 1, None)).unwrap();
            await_gauge("filterscope_policy_version ", 2);

            // Batch 2, same line, same connection: now allowed.
            Frame::batch(format!("{line}\n").into_bytes())
                .write_to(&mut sock)
                .unwrap();
            await_gauge("filterscope_policy_decisions_total{decision=\"allow\"} ", 1);

            // A corrupt artifact is rejected; the running policy stays.
            let mut bad = artifact::compile(&full, 1, None);
            let mid = bad.len() / 2;
            bad[mid] ^= 0x01;
            std::fs::write(&artifact_path, &bad).unwrap();
            let page = await_gauge("filterscope_policy_reload_failures_total ", 1);
            assert_eq!(gauge(&page, "filterscope_policy_version "), 2);

            // Batch 3 still decides under the last good (ablated) policy.
            Frame::batch(format!("{line}\n").into_bytes())
                .write_to(&mut sock)
                .unwrap();
            let page = await_gauge("filterscope_policy_decisions_total{decision=\"allow\"} ", 2);
            assert_eq!(
                gauge(
                    &page,
                    "filterscope_policy_decisions_total{decision=\"deny\"} "
                ),
                1
            );

            Frame::bye().write_to(&mut sock).unwrap();
            drop(sock);
            shutdown.store(true, Ordering::SeqCst);
            handle.join().unwrap().unwrap()
        });
        assert_eq!(summary.records, 3);
        assert_eq!(summary.policy_version, 2);
        assert_eq!(summary.policy_reloads, 1);
        assert!(summary.policy_reload_failures >= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// `n` canonical log lines over varied hosts/paths/times; every third
    /// one censored.
    fn canonical_lines(n: usize) -> String {
        use filterscope_logformat::record::RecordBuilder;
        use filterscope_logformat::RequestUrl;
        let mut out = String::new();
        for i in 0..n {
            let time = format!("10:{:02}:{:02}", i / 60, i % 60);
            let b = RecordBuilder::new(
                filterscope_core::Timestamp::parse_fields("2011-08-03", &time).unwrap(),
                filterscope_core::ProxyId::Sg42,
                RequestUrl::http(&format!("host{}.example.com", i % 7), &format!("/p{i}")),
            );
            let b = if i % 3 == 0 { b.policy_denied() } else { b };
            out.push_str(&b.build().write_csv());
            out.push('\n');
        }
        out
    }

    #[test]
    fn shutdown_flushes_final_delta_frame_before_final_snapshot() {
        let dir = temp_dir("snaplog-drain");
        std::fs::create_dir_all(&dir).unwrap();
        let log_path = dir.join("snap.log");
        let mut cfg = config(&dir.join("snaps"));
        // Only the shutdown cycle runs, so the log's single frame must
        // come from the drain path.
        cfg.snapshot_every = Duration::from_secs(3600);
        cfg.snap_log = Some(log_path.clone());
        let server = Server::bind(cfg).unwrap();
        let addr = server.local_addr().unwrap();
        let ctx = AnalysisContext::standard(None);
        let shutdown = Arc::new(IAtomicBool::new(false));
        let summary = std::thread::scope(|s| {
            let handle = s.spawn(|| server.run(&ctx, Arc::clone(&shutdown)));
            let mut sock = TcpStream::connect(addr).unwrap();
            Frame::hello("drain-test").write_to(&mut sock).unwrap();
            Frame::batch(canonical_lines(20).into_bytes())
                .write_to(&mut sock)
                .unwrap();
            Frame::bye().write_to(&mut sock).unwrap();
            drop(sock);
            std::thread::sleep(Duration::from_millis(300));
            shutdown.store(true, Ordering::SeqCst);
            handle.join().unwrap().unwrap()
        });
        assert_eq!(summary.records, 20);
        assert_eq!(summary.snapshots, 1, "only the shutdown cycle ran");
        // The final frame reached the log before the final snapshot:
        // replaying the log reproduces the on-disk report byte for byte.
        let (frames, _) = read_frames(&log_path).unwrap();
        assert_eq!(frames.len(), 1);
        let view = suite_at(&frames, u64::MAX).unwrap().unwrap();
        assert_eq!(view.records, 20);
        let report = std::fs::read_to_string(dir.join("snaps/report.txt")).unwrap();
        assert_eq!(format!("{}\n", view.suite.render_all(&ctx)), report);
        let status = std::fs::read_to_string(dir.join("snaps/status.json")).unwrap();
        assert!(status.contains("\"log_seq\": 1"), "{status}");
        assert!(status.contains("\"recovered_frames\": 0"), "{status}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restart_recovers_state_from_snap_log() {
        let dir = temp_dir("snaplog-restart");
        std::fs::create_dir_all(&dir).unwrap();
        let log_path = dir.join("snap.log");
        let ctx = AnalysisContext::standard(None);

        // First run ingests records, frames them, shuts down.
        let mut cfg = config(&dir.join("run1"));
        cfg.snapshot_every = Duration::from_secs(3600);
        cfg.snap_log = Some(log_path.clone());
        let server = Server::bind(cfg).unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = Arc::new(IAtomicBool::new(false));
        std::thread::scope(|s| {
            let handle = s.spawn(|| server.run(&ctx, Arc::clone(&shutdown)));
            let mut sock = TcpStream::connect(addr).unwrap();
            Frame::hello("run1").write_to(&mut sock).unwrap();
            Frame::batch(canonical_lines(15).into_bytes())
                .write_to(&mut sock)
                .unwrap();
            Frame::bye().write_to(&mut sock).unwrap();
            drop(sock);
            std::thread::sleep(Duration::from_millis(300));
            shutdown.store(true, Ordering::SeqCst);
            handle.join().unwrap().unwrap()
        });
        let first_report = std::fs::read_to_string(dir.join("run1/report.txt")).unwrap();

        // Second run resumes from the log with no new traffic: its final
        // snapshot reproduces the first run's report, counters included,
        // and appends no new frame for the empty cycle.
        let mut cfg = config(&dir.join("run2"));
        cfg.snap_log = Some(log_path.clone());
        let server = Server::bind(cfg).unwrap();
        let summary = server.run(&ctx, Arc::new(IAtomicBool::new(true))).unwrap();
        assert_eq!(summary.records, 15, "recovered records are preloaded");
        let second_report = std::fs::read_to_string(dir.join("run2/report.txt")).unwrap();
        assert_eq!(second_report, first_report);
        let status = std::fs::read_to_string(dir.join("run2/status.json")).unwrap();
        assert!(status.contains("\"records\": 15"), "{status}");
        assert!(status.contains("\"recovered_frames\": 1"), "{status}");
        assert!(status.contains("\"log_seq\": 1"), "{status}");

        // A log written under a different selection fails closed.
        let mut cfg = config(&dir.join("run3"));
        cfg.snap_log = Some(log_path.clone());
        cfg.selection = Selection::only(&["datasets", "https"]).unwrap();
        let server = Server::bind(cfg).unwrap();
        assert!(server.run(&ctx, Arc::new(IAtomicBool::new(true))).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shutdown_with_no_connections_still_writes_final_snapshot() {
        let dir = temp_dir("empty");
        let server = Server::bind(config(&dir)).unwrap();
        let ctx = AnalysisContext::standard(None);
        let shutdown = Arc::new(IAtomicBool::new(true));
        let summary = server.run(&ctx, shutdown).unwrap();
        assert_eq!(summary.records, 0);
        assert_eq!(summary.snapshots, 1);
        assert!(dir.join("summary.json").exists());
        assert!(dir.join("status.json").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
