//! The `filterscope stream` client: replay a corpus or log files against
//! a running serve daemon over N framed connections.
//!
//! The dispatcher walks the records once, partitions each line onto a
//! connection (by proxy — at seven connections the replay is exactly the
//! paper's one-feed-per-proxy topology), batches lines into frames, and
//! hands full frames to per-connection sender threads over bounded
//! queues. A [`Pacer`] optionally compresses log time onto the wall
//! clock; the default replays as fast as the daemon accepts, which is
//! how the serve integration tests and the throughput bench run.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::mpsc::{self, Receiver, SyncSender};

use filterscope_core::{Error, ProxyId, Result};
use filterscope_logformat::frame::MAX_PAYLOAD;
use filterscope_logformat::{Frame, LineSplitter, Schema};
use filterscope_synth::{stream_csv_lines, Corpus, Pacer};

/// Frames in flight per connection before the dispatcher blocks.
const SENDER_QUEUE: usize = 8;

/// Configuration for one replay run.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Daemon address to connect to (`host:port`).
    pub connect: String,
    /// Number of concurrent connections (7 = one per proxy).
    pub connections: usize,
    /// Data lines per `Batch` frame.
    pub batch_lines: usize,
    /// Log-seconds replayed per wall-second (0 = as fast as possible).
    pub compress: f64,
}

/// Counters from one replay run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSummary {
    /// Data lines sent.
    pub lines: u64,
    /// `Batch` frames sent.
    pub batches: u64,
    /// Payload bytes sent (excluding frame headers).
    pub bytes: u64,
    /// Lines sent per connection, in connection order.
    pub per_connection: Vec<u64>,
}

/// Replay a synthetic corpus against the daemon, in generation order.
pub fn stream_corpus(corpus: &Corpus, cfg: &StreamConfig) -> Result<StreamSummary> {
    run(cfg, |emit| {
        let mut pacer = Pacer::new(cfg.compress);
        let fanout = cfg.connections;
        stream_csv_lines(corpus, |proxy, ts, line| {
            pacer.pace(ts);
            let conn = proxy.map(|p| p.index() % fanout).unwrap_or(0);
            emit(conn, line.as_bytes());
        });
        Ok(())
    })
}

/// Replay existing log files against the daemon. `#` comment lines are
/// dropped (the wire format carries canonical-schema data lines only);
/// lines that do not parse are forwarded anyway, so the daemon's
/// parse-error accounting matches a batch `analyze` over the same files.
pub fn stream_files(paths: &[PathBuf], cfg: &StreamConfig) -> Result<StreamSummary> {
    run(cfg, |emit| {
        let schema = Schema::canonical();
        let mut splitter = LineSplitter::new();
        let mut pacer = Pacer::new(cfg.compress);
        let fanout = cfg.connections;
        let mut buf = Vec::new();
        for path in paths {
            let file =
                File::open(path).map_err(|e| Error::Io(format!("{}: {e}", path.display())))?;
            let mut reader = BufReader::new(file);
            let mut line_no = 0u64;
            loop {
                buf.clear();
                let n = reader
                    .read_until(b'\n', &mut buf)
                    .map_err(|e| Error::Io(format!("{}: {e}", path.display())))?;
                if n == 0 {
                    break;
                }
                line_no += 1;
                let mut line = &buf[..];
                while let Some(b'\n' | b'\r') = line.last() {
                    line = &line[..line.len() - 1];
                }
                if line.is_empty() {
                    continue;
                }
                let conn = match std::str::from_utf8(line) {
                    Ok(text) if text.starts_with('#') => continue,
                    Ok(text) => match schema.parse_view(&mut splitter, text, line_no) {
                        Ok(view) => {
                            pacer.pace(view.timestamp);
                            view.proxy().map(|p| p.index() % fanout).unwrap_or(0)
                        }
                        Err(_) => 0,
                    },
                    Err(_) => 0,
                };
                emit(conn, line);
            }
        }
        Ok(())
    })
}

/// The connection label sent in the `Hello` frame: at seven connections
/// the proxy names themselves, otherwise a generic ordinal.
fn label_for(conn: usize, connections: usize) -> String {
    if connections == 7 {
        if let Some(proxy) = ProxyId::from_index(conn) {
            return proxy.label().to_string();
        }
    }
    format!("conn-{conn}")
}

/// Dispatcher + sender scaffold shared by both replay sources: `feed`
/// pushes `(connection, line)` pairs through `emit`; full batches flow
/// to the per-connection sender threads over bounded queues.
fn run(
    cfg: &StreamConfig,
    feed: impl FnOnce(&mut dyn FnMut(usize, &[u8])) -> Result<()>,
) -> Result<StreamSummary> {
    if cfg.connections == 0 {
        return Err(Error::Io(
            "stream needs at least one connection".to_string(),
        ));
    }
    let batch_lines = cfg.batch_lines.max(1);
    let mut txs: Vec<Option<SyncSender<Vec<u8>>>> = Vec::with_capacity(cfg.connections);
    let mut rxs: Vec<Receiver<Vec<u8>>> = Vec::with_capacity(cfg.connections);
    for _ in 0..cfg.connections {
        let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(SENDER_QUEUE);
        txs.push(Some(tx));
        rxs.push(rx);
    }

    std::thread::scope(|scope| -> Result<StreamSummary> {
        let handles: Vec<_> = rxs
            .into_iter()
            .enumerate()
            .map(|(i, rx)| {
                let addr = cfg.connect.clone();
                let label = label_for(i, cfg.connections);
                scope.spawn(move || send_connection(&addr, &label, rx))
            })
            .collect();

        let mut bufs: Vec<Vec<u8>> = vec![Vec::new(); cfg.connections];
        let mut buffered: Vec<usize> = vec![0; cfg.connections];
        let mut per_connection: Vec<u64> = vec![0; cfg.connections];
        let mut lines = 0u64;
        let mut batches = 0u64;
        let mut bytes = 0u64;
        {
            // A send error means the sender already failed; its
            // connect/write error surfaces at join below.
            let mut flush = |buf: &mut Vec<u8>, buffered: &mut usize, conn: usize| {
                if buf.is_empty() {
                    return;
                }
                let payload = std::mem::take(buf);
                bytes += payload.len() as u64;
                batches += 1;
                *buffered = 0;
                if let Some(tx) = &txs[conn] {
                    let _ = tx.send(payload);
                }
            };
            let mut emit = |conn: usize, line: &[u8]| {
                let conn = conn % cfg.connections;
                let buf = &mut bufs[conn];
                // A batch is bounded by line count *and* by the frame
                // payload ceiling — counting lines alone lets long lines
                // build a payload `Frame::batch` rejects, killing the
                // replay mid-stream.
                if buf.len() + line.len() + 1 > MAX_PAYLOAD {
                    flush(buf, &mut buffered[conn], conn);
                }
                buf.extend_from_slice(line);
                buf.push(b'\n');
                buffered[conn] += 1;
                lines += 1;
                per_connection[conn] += 1;
                if buffered[conn] >= batch_lines {
                    flush(buf, &mut buffered[conn], conn);
                }
            };
            feed(&mut emit)?;
        }
        for (conn, buf) in bufs.into_iter().enumerate() {
            if !buf.is_empty() {
                bytes += buf.len() as u64;
                batches += 1;
                if let Some(tx) = &txs[conn] {
                    let _ = tx.send(buf);
                }
            }
        }
        // Closing the queues lets every sender finish with `Bye`.
        for tx in &mut txs {
            tx.take();
        }
        for handle in handles {
            handle.join().expect("sender thread panicked")?;
        }
        Ok(StreamSummary {
            lines,
            batches,
            bytes,
            per_connection,
        })
    })
}

/// One sender: connect, `Hello`, stream queued batches, `Bye`, flush.
fn send_connection(addr: &str, label: &str, rx: Receiver<Vec<u8>>) -> Result<()> {
    let stream = TcpStream::connect(addr)
        .map_err(|e| Error::Io(format!("cannot connect to {addr}: {e}")))?;
    let _ = stream.set_nodelay(true);
    let mut w = BufWriter::new(stream);
    Frame::hello(label).write_to(&mut w)?;
    while let Ok(payload) = rx.recv() {
        Frame::batch(payload).write_to(&mut w)?;
    }
    Frame::bye().write_to(&mut w)?;
    use std::io::Write as _;
    w.flush().map_err(Error::from)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use filterscope_logformat::frame::batch_lines;
    use filterscope_logformat::FrameKind;
    use std::io::Read as _;
    use std::net::TcpListener;

    #[test]
    fn labels_are_proxy_names_at_seven_connections() {
        assert_eq!(label_for(0, 7), "SG-42");
        assert_eq!(label_for(6, 7), "SG-48");
        assert_eq!(label_for(2, 3), "conn-2");
    }

    #[test]
    fn long_lines_never_build_an_oversize_frame() {
        // 5 lines of ~3 MiB with a 100-line batch cap: counting lines
        // alone would build a ~15 MiB payload the frame encoder rejects.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let line = vec![b'x'; 3 * 1024 * 1024];
        let lines: Vec<Vec<u8>> = (0..5).map(|_| line.clone()).collect();
        let (summary, payload_sizes) = std::thread::scope(|s| {
            let accept = s.spawn(move || {
                let (mut sock, _) = listener.accept().unwrap();
                let mut wire = Vec::new();
                sock.read_to_end(&mut wire).unwrap();
                let mut cursor = std::io::Cursor::new(&wire);
                let mut sizes = Vec::new();
                let mut got_lines = 0usize;
                while let Some(frame) = Frame::read_from(&mut cursor).unwrap() {
                    if frame.kind == FrameKind::Batch {
                        sizes.push(frame.payload.len());
                        got_lines += batch_lines(&frame.payload).count();
                    }
                }
                assert_eq!(got_lines, 5);
                sizes
            });
            let cfg = StreamConfig {
                connect: addr.to_string(),
                connections: 1,
                batch_lines: 100,
                compress: 0.0,
            };
            let summary = run(&cfg, |emit| {
                for l in &lines {
                    emit(0, l);
                }
                Ok(())
            })
            .unwrap();
            (summary, accept.join().unwrap())
        });
        assert_eq!(summary.lines, 5);
        assert!(summary.batches >= 2, "must split: {}", summary.batches);
        for size in payload_sizes {
            assert!(size <= MAX_PAYLOAD, "oversize payload of {size} bytes");
        }
    }

    #[test]
    fn corpus_replay_frames_every_line_exactly_once() {
        use filterscope_synth::SynthConfig;
        let corpus = Corpus::new(SynthConfig::new(1 << 20).unwrap());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let connections = 3usize;
        let (summary, received) = std::thread::scope(|s| {
            let accept = s.spawn(move || {
                let mut got: Vec<String> = Vec::new();
                for _ in 0..connections {
                    let (mut sock, _) = listener.accept().unwrap();
                    let mut wire = Vec::new();
                    sock.read_to_end(&mut wire).unwrap();
                    let mut cursor = std::io::Cursor::new(&wire);
                    let mut saw_bye = false;
                    while let Some(frame) = Frame::read_from(&mut cursor).unwrap() {
                        match frame.kind {
                            FrameKind::Hello => {
                                assert!(frame.payload_str().unwrap().starts_with("conn-"));
                            }
                            FrameKind::Batch => {
                                for line in batch_lines(&frame.payload) {
                                    got.push(String::from_utf8(line.to_vec()).unwrap());
                                }
                            }
                            FrameKind::Bye => saw_bye = true,
                        }
                    }
                    assert!(saw_bye, "stream must end with Bye");
                }
                got
            });
            let cfg = StreamConfig {
                connect: addr.to_string(),
                connections,
                batch_lines: 50,
                compress: 0.0,
            };
            let summary = stream_corpus(&corpus, &cfg).unwrap();
            (summary, accept.join().unwrap())
        });
        let mut expected = Vec::new();
        filterscope_synth::stream_csv_lines(&corpus, |_, _, line| {
            expected.push(line.to_string());
        });
        assert_eq!(summary.lines as usize, expected.len());
        assert_eq!(
            summary.per_connection.iter().sum::<u64>(),
            summary.lines,
            "partition must cover every line"
        );
        // Same multiset of lines (ordering interleaves across connections).
        let mut received = received;
        let mut expected = expected;
        received.sort();
        expected.sort();
        assert_eq!(received, expected);
    }
}
