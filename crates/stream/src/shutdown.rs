//! Graceful-shutdown plumbing: a shared flag the serve loops poll, set by
//! SIGINT (via a minimal libc `signal(2)` binding — the build environment
//! has no crates.io, so no `signal-hook`/`ctrlc`) or by the metrics
//! endpoint's `/shutdown` control path on platforms without signals.
//!
//! The flag is an [`IAtomicBool`] so the drain-then-final-snapshot
//! protocol it gates can run under the interleaving explorer; the signal
//! handler reaches through [`IAtomicBool::as_std`] to the raw std atomic,
//! keeping the handler's single store async-signal-safe (the global flag
//! is always passthrough-backed — models never install signal handlers).

use interleave::{IAtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

static SIGINT_FLAG: OnceLock<Arc<IAtomicBool>> = OnceLock::new();

#[cfg(unix)]
mod sys {
    use std::os::raw::c_int;

    pub const SIGINT: c_int = 2;

    extern "C" {
        // `signal(2)` from libc, which std already links. The handler
        // only stores into an atomic — the one operation that is
        // async-signal-safe by construction.
        pub fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    }

    pub extern "C" fn on_sigint(_sig: c_int) {
        if let Some(flag) = super::SIGINT_FLAG.get() {
            flag.as_std().store(true, super::Ordering::SeqCst);
        }
    }
}

/// Install a SIGINT handler (idempotent) and return the flag it sets.
/// On non-unix targets the flag is returned un-wired; the `/shutdown`
/// control endpoint remains the way to stop the daemon there.
// The workspace is `unsafe`-free except for this one call: registering a
// signal handler has no safe std equivalent and the offline build bars
// `signal-hook`. Safety: `on_sigint` only stores into an atomic, the one
// operation that is async-signal-safe by construction, and `signal(2)` is
// called before any serve thread spawns.
#[allow(unsafe_code)]
pub fn install_sigint() -> Arc<IAtomicBool> {
    let flag = SIGINT_FLAG
        .get_or_init(|| Arc::new(IAtomicBool::new(false)))
        .clone();
    #[cfg(unix)]
    unsafe {
        sys::signal(sys::SIGINT, sys::on_sigint);
    }
    flag
}

/// `true` once shutdown has been requested on `flag`.
pub fn requested(flag: &IAtomicBool) -> bool {
    flag.load(Ordering::SeqCst)
}

/// Request shutdown on `flag` (the `/shutdown` endpoint's action).
pub fn request(flag: &IAtomicBool) {
    flag.store(true, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_idempotent_and_flag_is_shared() {
        let a = install_sigint();
        let b = install_sigint();
        assert!(!requested(&a));
        request(&b);
        assert!(requested(&a));
        // Reset for any other test using the shared flag.
        a.store(false, Ordering::SeqCst);
    }
}
