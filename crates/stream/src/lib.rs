//! # filterscope-stream
//!
//! The live ingest subsystem: a long-running `filterscope serve` daemon
//! that accepts length-framed ELFF record batches from N concurrent proxy
//! connections, and the `filterscope stream` client that replays log
//! files (or generates the synthetic 7-proxy workload) against it.
//!
//! The paper analyzed a static 600 GB dump offline; real filtering
//! telemetry arrives as a continuous stream from seven proxies. This
//! crate closes that gap without forking the analysis code:
//!
//! * every connection feeds the existing zero-copy
//!   [`filterscope_logformat::RecordView`] parse path into its own
//!   [`filterscope_analysis::AnalysisSuite`] shard (honoring
//!   `--analyses`/`--skip` selections);
//! * a snapshot thread periodically swaps each shard for a fresh twin
//!   ([`AnalysisSuite::take_delta`]) and folds the deltas into a global
//!   suite through the registry's property-tested merge contract, then
//!   writes an atomic checkpoint (report + `summary.json`) — so the final
//!   snapshot is byte-identical to batch `analyze` over the same records
//!   at any connection count;
//! * production concerns are handled in the server loop: bounded
//!   per-connection queues whose backpressure propagates to the client
//!   through TCP, per-connection framing-error recovery (a corrupt frame
//!   drops that connection, never the server), graceful shutdown on
//!   SIGINT with a final flush, and a plaintext `/metrics` endpoint;
//! * with `--policy-artifact FILE`, every record is additionally
//!   evaluated against a compiled [`filterscope_proxy::PolicyEngine`]
//!   loaded zero-rebuild from a `filterscope compile` artifact, with
//!   witness-gated hot reload between snapshot cycles ([`policy`]).
//!
//! The wire format lives in [`filterscope_logformat::frame`]; the workload
//! replay order in [`filterscope_synth::streamer`].
//!
//! [`AnalysisSuite::take_delta`]: filterscope_analysis::AnalysisSuite::take_delta

// `deny` rather than the workspace-wide `forbid`: installing a SIGINT
// handler requires one `libc::signal`-shaped FFI call, carried by a single
// audited `#[allow(unsafe_code)]` in `shutdown.rs`.
#![deny(unsafe_code)]

pub mod client;
pub mod metrics;
pub mod policy;
pub mod proto;
pub mod server;
pub mod shutdown;
pub mod snapshot;

pub use client::{stream_corpus, stream_files, StreamConfig, StreamSummary};
pub use policy::{PolicyCell, PolicyWatcher, ReloadOutcome};
pub use server::{ServeConfig, ServeSummary, Server};
pub use shutdown::install_sigint;
