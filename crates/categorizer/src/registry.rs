//! Text registry format: load user-supplied category data.
//!
//! One mapping per line — `domain-suffix<TAB or 2+ spaces>Category Name` —
//! with `#` comments and blank lines ignored. Category names are the
//! [`Category::name`] spellings (case-insensitive):
//!
//! ```text
//! # circumvention services
//! hidemyass.com   Anonymizers
//! skype.com       Instant Messaging
//! ```

use crate::category::Category;
use crate::db::CategoryDb;
use filterscope_core::{Error, Result};

/// Parse registry text into `(suffix, category)` pairs.
pub fn parse_registry(text: &str) -> Result<Vec<(String, Category)>> {
    let mut out = Vec::new();
    for (no, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim_end();
        if line.trim().is_empty() {
            continue;
        }
        let err = |reason: String| Error::MalformedRecord {
            line: (no + 1) as u64,
            reason,
        };
        // The category name may contain spaces, so split on the FIRST run
        // of whitespace after the domain.
        let line = line.trim_start();
        let Some(split_at) = line.find(char::is_whitespace) else {
            return Err(err(format!("expected 'domain Category', got {line:?}")));
        };
        let domain = &line[..split_at];
        let category_name = line[split_at..].trim();
        let category = Category::from_name(category_name)
            .ok_or_else(|| err(format!("unknown category {category_name:?}")))?;
        out.push((domain.to_string(), category));
    }
    Ok(out)
}

/// Serialize `(suffix, category)` pairs to the registry text format.
pub fn registry_to_text<'a>(entries: impl IntoIterator<Item = &'a (String, Category)>) -> String {
    let mut out = String::from("# filterscope category registry\n");
    for (domain, category) in entries {
        out.push_str(&format!("{domain}\t{}\n", category.name()));
    }
    out
}

/// Convenience: parse registry text straight into a [`CategoryDb`].
pub fn load_db(text: &str) -> Result<CategoryDb> {
    let entries = parse_registry(text)?;
    Ok(CategoryDb::from_entries(
        entries.iter().map(|(d, c)| (d.as_str(), *c)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_spaced_category_names() {
        let text = "# head\nskype.com\tInstant Messaging\nhidemyass.com  Anonymizers\n\
                    jeddahbikers.com   Forum/Bulletin Boards # trailing comment\n";
        let entries = parse_registry(text).unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].1, Category::InstantMessaging);
        assert_eq!(entries[2].1, Category::ForumBulletinBoards);
        let db = load_db(text).unwrap();
        assert_eq!(db.categorize("www.skype.com"), Category::InstantMessaging);
    }

    #[test]
    fn roundtrips_including_builtin_register() {
        let entries: Vec<(String, Category)> = crate::data::DOMAIN_CATEGORIES
            .iter()
            .map(|(d, c)| (d.to_string(), *c))
            .collect();
        let text = registry_to_text(&entries);
        let back = parse_registry(&text).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_registry("just-a-domain\n").is_err());
        assert!(parse_registry("x.com NotACategory\n").is_err());
    }

    #[test]
    fn case_insensitive_category_names() {
        let entries = parse_registry("x.com instant messaging\n").unwrap();
        assert_eq!(entries[0].1, Category::InstantMessaging);
    }
}
