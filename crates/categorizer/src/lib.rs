//! # filterscope-categorizer
//!
//! URL categorization, the substrate behind Fig. 3 (category distribution of
//! censored traffic), Table 9 (censored domain categories) and the
//! Anonymizer analysis of §7.2.
//!
//! The paper used McAfee's TrustedSource web service (the Syrian proxies
//! themselves had *no* working category database — `cs-categories` only ever
//! held a default value or the custom "Blocked sites" category). That
//! service is external, so this crate ships a compatible engine: a
//! domain-suffix index over a curated register ([`data::DOMAIN_CATEGORIES`])
//! that covers every domain named in the paper plus the synthetic workload's
//! catalogue.

#![forbid(unsafe_code)]

pub mod category;
pub mod data;
pub mod db;
pub mod registry;

pub use category::Category;
pub use db::CategoryDb;
