//! The category taxonomy.
//!
//! Category names follow McAfee TrustedSource spellings as they appear in
//! the paper's Fig. 3 and Table 9 (e.g. "Instant Messaging",
//! "Forum/Bulletin Boards", "Education/Reference").

use std::fmt;

/// A website category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// CDNs and generic content hosts (cloudfront, googleusercontent, …).
    ContentServer,
    StreamingMedia,
    InstantMessaging,
    PortalSites,
    GeneralNews,
    SocialNetworking,
    OnlineShopping,
    InternetServices,
    Entertainment,
    ForumBulletinBoards,
    EducationReference,
    Games,
    SearchEngines,
    /// Web proxies, VPNs and other circumvention services (§7.2).
    Anonymizer,
    Pornography,
    WebAds,
    SoftwareHardware,
    /// BitTorrent trackers and similar (§7.3).
    FileSharing,
    Blogs,
    Email,
    Travel,
    Government,
    Religion,
    Sports,
    Business,
    /// Not categorized ("NA" in Table 9).
    Unknown,
}

impl Category {
    /// Every category, for iteration in reports.
    pub const ALL: [Category; 26] = [
        Category::ContentServer,
        Category::StreamingMedia,
        Category::InstantMessaging,
        Category::PortalSites,
        Category::GeneralNews,
        Category::SocialNetworking,
        Category::OnlineShopping,
        Category::InternetServices,
        Category::Entertainment,
        Category::ForumBulletinBoards,
        Category::EducationReference,
        Category::Games,
        Category::SearchEngines,
        Category::Anonymizer,
        Category::Pornography,
        Category::WebAds,
        Category::SoftwareHardware,
        Category::FileSharing,
        Category::Blogs,
        Category::Email,
        Category::Travel,
        Category::Government,
        Category::Religion,
        Category::Sports,
        Category::Business,
        Category::Unknown,
    ];

    /// Display name matching the paper's figures/tables.
    pub fn name(self) -> &'static str {
        match self {
            Category::ContentServer => "Content Server",
            Category::StreamingMedia => "Streaming Media",
            Category::InstantMessaging => "Instant Messaging",
            Category::PortalSites => "Portal Sites",
            Category::GeneralNews => "General News",
            Category::SocialNetworking => "Social Networking",
            Category::OnlineShopping => "Online Shopping",
            Category::InternetServices => "Internet Services",
            Category::Entertainment => "Entertainment",
            Category::ForumBulletinBoards => "Forum/Bulletin Boards",
            Category::EducationReference => "Education/Reference",
            Category::Games => "Games",
            Category::SearchEngines => "Search Engines",
            Category::Anonymizer => "Anonymizers",
            Category::Pornography => "Pornography",
            Category::WebAds => "Web Ads",
            Category::SoftwareHardware => "Software/Hardware",
            Category::FileSharing => "P2P/File Sharing",
            Category::Blogs => "Blogs/Wiki",
            Category::Email => "Web Mail",
            Category::Travel => "Travel",
            Category::Government => "Government/Military",
            Category::Religion => "Religion/Ideology",
            Category::Sports => "Sports",
            Category::Business => "Business",
            Category::Unknown => "NA",
        }
    }
}

impl Category {
    /// Inverse of [`Category::name`] (case-insensitive).
    pub fn from_name(name: &str) -> Option<Category> {
        Category::ALL
            .iter()
            .copied()
            .find(|c| c.name().eq_ignore_ascii_case(name))
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_spellings() {
        assert_eq!(Category::InstantMessaging.name(), "Instant Messaging");
        assert_eq!(
            Category::ForumBulletinBoards.name(),
            "Forum/Bulletin Boards"
        );
        assert_eq!(Category::EducationReference.name(), "Education/Reference");
        assert_eq!(Category::Unknown.name(), "NA");
    }

    #[test]
    fn from_name_roundtrips() {
        for c in Category::ALL {
            assert_eq!(Category::from_name(c.name()), Some(c));
        }
        assert_eq!(
            Category::from_name("instant messaging"),
            Some(Category::InstantMessaging)
        );
        assert_eq!(Category::from_name("nope"), None);
    }

    #[test]
    fn all_is_complete_and_distinct() {
        let mut names: Vec<&str> = Category::ALL.iter().map(|c| c.name()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
        assert_eq!(before, 26);
    }
}
