//! The curated domain→category register.
//!
//! Covers every domain named in the paper (allowed and censored top-10s,
//! the suspected-domain list, the OSN panel of §6, anonymizers of §7.2,
//! trackers of §7.3) plus the rest of the synthetic workload's catalogue.

use crate::category::Category;

/// `(domain suffix, category)` registrations.
pub const DOMAIN_CATEGORIES: &[(&str, Category)] = &[
    // -- Search / portals ---------------------------------------------------
    ("google.com", Category::SearchEngines),
    ("google-analytics.com", Category::WebAds),
    ("googleusercontent.com", Category::ContentServer),
    ("gstatic.com", Category::ContentServer),
    ("googlesyndication.com", Category::WebAds),
    ("bing.com", Category::SearchEngines),
    ("yahoo.com", Category::PortalSites),
    ("msn.com", Category::PortalSites),
    ("live.com", Category::InstantMessaging), // MSN live messenger service
    ("ceipmsn.com", Category::InternetServices),
    ("maktoob.com", Category::PortalSites),
    // -- Social networks (§6 panel) ----------------------------------------
    ("facebook.com", Category::SocialNetworking),
    // The plugin/endpoint frontend: TrustedSource-era categorizers file the
    // widget-serving host under content delivery, which is what makes the
    // paper's Fig. 3 rank "Content Server" first while "Social Networks"
    // stays low despite facebook.com topping Table 4's censored list.
    ("www.facebook.com", Category::ContentServer),
    ("fbcdn.net", Category::ContentServer),
    ("twitter.com", Category::SocialNetworking),
    ("linkedin.com", Category::SocialNetworking),
    ("badoo.com", Category::SocialNetworking),
    ("netlog.com", Category::SocialNetworking),
    ("skyrock.com", Category::SocialNetworking),
    ("hi5.com", Category::SocialNetworking),
    ("ning.com", Category::SocialNetworking),
    ("meetup.com", Category::SocialNetworking),
    ("flickr.com", Category::SocialNetworking),
    ("myspace.com", Category::SocialNetworking),
    ("instagram.com", Category::SocialNetworking),
    ("tumblr.com", Category::Blogs),
    ("last.fm", Category::Entertainment),
    ("plus.google.com", Category::SocialNetworking),
    ("salamworld.com", Category::SocialNetworking),
    ("muslimup.com", Category::SocialNetworking),
    ("vk.com", Category::SocialNetworking),
    ("odnoklassniki.ru", Category::SocialNetworking),
    ("orkut.com", Category::SocialNetworking),
    ("renren.com", Category::SocialNetworking),
    ("weibo.com", Category::SocialNetworking),
    ("pinterest.com", Category::SocialNetworking),
    ("reddit.com", Category::SocialNetworking),
    ("qzone.qq.com", Category::SocialNetworking),
    ("tagged.com", Category::SocialNetworking),
    ("deviantart.com", Category::SocialNetworking),
    ("livejournal.com", Category::Blogs),
    ("vimeo.com", Category::StreamingMedia),
    // -- Streaming / video ---------------------------------------------------
    ("metacafe.com", Category::StreamingMedia),
    ("youtube.com", Category::StreamingMedia),
    ("dailymotion.com", Category::StreamingMedia),
    ("justin.tv", Category::StreamingMedia),
    ("ustream.tv", Category::StreamingMedia),
    // -- Instant messaging ---------------------------------------------------
    ("skype.com", Category::InstantMessaging),
    ("icq.com", Category::InstantMessaging),
    ("ebuddy.com", Category::InstantMessaging),
    ("meebo.com", Category::InstantMessaging),
    ("paltalk.com", Category::InstantMessaging),
    ("jumblo.com", Category::InstantMessaging), // VoIP provider, Table 8
    // -- Mail ---------------------------------------------------------------
    ("hotmail.com", Category::Email),
    ("mail.yahoo.com", Category::Email),
    ("gmail.com", Category::Email),
    // -- News ---------------------------------------------------------------
    ("aljazeera.net", Category::GeneralNews),
    ("bbc.co.uk", Category::GeneralNews),
    ("cnn.com", Category::GeneralNews),
    ("aawsat.com", Category::GeneralNews), // Asharq Al-Awsat, Table 8
    ("alquds.co.uk", Category::GeneralNews),
    ("all4syria.info", Category::GeneralNews),
    ("islammemo.cc", Category::GeneralNews),
    ("new-syria.com", Category::GeneralNews),
    ("free-syria.com", Category::GeneralNews),
    ("alarabiya.net", Category::GeneralNews),
    ("elaph.com", Category::GeneralNews),
    ("syriarevolutionnews.com", Category::GeneralNews),
    ("panet.co.il", Category::GeneralNews), // Israeli-Arab news portal
    ("haaretz.co.il", Category::GeneralNews),
    ("ynet.co.il", Category::GeneralNews),
    ("jpost.com", Category::GeneralNews),
    ("reuters.com", Category::GeneralNews),
    ("sana.sy", Category::GeneralNews),
    // -- Education / reference ----------------------------------------------
    ("wikimedia.org", Category::EducationReference),
    ("wikipedia.org", Category::EducationReference),
    ("wiktionary.org", Category::EducationReference),
    ("archive.org", Category::EducationReference),
    ("scribd.com", Category::EducationReference),
    // -- Shopping ------------------------------------------------------------
    ("amazon.com", Category::OnlineShopping),
    ("ebay.com", Category::OnlineShopping),
    ("souq.com", Category::OnlineShopping),
    // -- Games ---------------------------------------------------------------
    ("zynga.com", Category::Games),
    ("miniclip.com", Category::Games),
    ("y8.com", Category::Games),
    ("travian.com", Category::Games),
    // -- Software / OS services ----------------------------------------------
    ("microsoft.com", Category::SoftwareHardware),
    ("windowsupdate.com", Category::SoftwareHardware),
    ("adobe.com", Category::SoftwareHardware),
    ("java.com", Category::SoftwareHardware),
    ("avast.com", Category::SoftwareHardware),
    ("avg.com", Category::SoftwareHardware),
    ("mozilla.org", Category::SoftwareHardware),
    ("apple.com", Category::SoftwareHardware),
    // -- Ads / tracking ------------------------------------------------------
    ("doubleclick.net", Category::WebAds),
    ("admob.com", Category::WebAds),
    ("adbrite.com", Category::WebAds),
    ("trafficholder.com", Category::WebAds), // ad network, Table 5
    ("scorecardresearch.com", Category::WebAds),
    ("quantserve.com", Category::WebAds),
    ("adproxy.net", Category::WebAds), // synthetic 'proxy'-keyword collateral
    // -- CDNs / content servers ----------------------------------------------
    ("cloudfront.net", Category::ContentServer),
    ("akamai.net", Category::ContentServer),
    ("akamaihd.net", Category::ContentServer),
    ("edgesuite.net", Category::ContentServer),
    ("llnwd.net", Category::ContentServer),
    ("yimg.com", Category::ContentServer),
    ("twimg.com", Category::ContentServer),
    ("ytimg.com", Category::ContentServer),
    ("imageshack.us", Category::ContentServer),
    ("photobucket.com", Category::ContentServer),
    ("rapidshare.com", Category::ContentServer),
    ("4shared.com", Category::ContentServer),
    ("mediafire.com", Category::ContentServer),
    // -- Internet services ---------------------------------------------------
    ("conduitapps.com", Category::InternetServices), // toolbar apps, Table 5
    ("speedtest.net", Category::InternetServices),
    ("dyndns.org", Category::InternetServices),
    ("whatismyip.com", Category::InternetServices),
    ("mtn.com.sy", Category::InternetServices), // Syrian mobile operator
    ("syriatel.sy", Category::InternetServices),
    // -- Forums ---------------------------------------------------------------
    ("jeddahbikers.com", Category::ForumBulletinBoards), // Table 8
    ("vbulletin.com", Category::ForumBulletinBoards),
    ("montadayat.org", Category::ForumBulletinBoards),
    ("damascus-forum.com", Category::ForumBulletinBoards),
    ("shabablek.com", Category::ForumBulletinBoards),
    ("alnilin.com", Category::ForumBulletinBoards),
    ("startimes.com", Category::ForumBulletinBoards),
    ("absba.org", Category::ForumBulletinBoards),
    // -- Religion -------------------------------------------------------------
    ("islamway.com", Category::Religion), // Table 8
    ("islamweb.net", Category::Religion),
    ("quran.com", Category::Religion),
    // -- Entertainment --------------------------------------------------------
    ("imdb.com", Category::Entertainment),
    ("mbc.net", Category::Entertainment),
    ("rotana.net", Category::Entertainment),
    ("6arab.com", Category::Entertainment),
    // -- Pornography ----------------------------------------------------------
    ("xvideos.com", Category::Pornography),
    ("pornhub.com", Category::Pornography),
    ("xhamster.com", Category::Pornography),
    // -- Anonymizers / circumvention (§7.2) ------------------------------------
    ("hotsptshld.com", Category::Anonymizer), // Hotspot Shield, Table 5
    ("hotspotshield.com", Category::Anonymizer),
    ("anchorfree.com", Category::Anonymizer),
    ("ultrareach.com", Category::Anonymizer),
    ("ultrasurf.us", Category::Anonymizer),
    ("hidemyass.com", Category::Anonymizer),
    ("anonymouse.org", Category::Anonymizer),
    ("kproxy.com", Category::Anonymizer),
    ("proxify.com", Category::Anonymizer),
    ("megaproxy.com", Category::Anonymizer),
    ("vtunnel.com", Category::Anonymizer),
    ("guardster.com", Category::Anonymizer),
    ("freegate.org", Category::Anonymizer),
    ("gtunnel.org", Category::Anonymizer),
    ("gpass1.com", Category::Anonymizer),
    ("your-freedom.net", Category::Anonymizer),
    ("cyberghostvpn.com", Category::Anonymizer),
    ("strongvpn.com", Category::Anonymizer),
    ("torproject.org", Category::Anonymizer),
    ("glype.com", Category::Anonymizer),
    ("phproxy.org", Category::Anonymizer),
    ("surfagain.net", Category::Anonymizer),
    ("unblocker.biz", Category::Anonymizer),
    ("webwarper.net", Category::Anonymizer),
    ("zend2.com", Category::Anonymizer),
    ("4everproxy.com", Category::Anonymizer),
    ("newipnow.com", Category::Anonymizer),
    ("boomproxy.com", Category::Anonymizer),
    ("proxyweb.net", Category::Anonymizer),
    ("unipeak.net", Category::Anonymizer),
    ("spysurfing.com", Category::Anonymizer),
    ("proxay.co.uk", Category::Anonymizer),
    ("ninjacloak.com", Category::Anonymizer),
    ("atunnel.com", Category::Anonymizer),
    ("btunnel.com", Category::Anonymizer),
    ("ctunnel.com", Category::Anonymizer),
    ("dtunnel.com", Category::Anonymizer),
    ("polysolve.com", Category::Anonymizer),
    ("securetunnel.com", Category::Anonymizer),
    ("shadowsurf.com", Category::Anonymizer),
    ("the-cloak.com", Category::Anonymizer),
    ("w3privacy.com", Category::Anonymizer),
    // -- P2P / trackers (§7.3) ---------------------------------------------
    ("thepiratebay.org", Category::FileSharing),
    ("torrentz.eu", Category::FileSharing),
    ("torrentproject.com", Category::FileSharing),
    ("furk.net", Category::FileSharing),
    ("publicbt.com", Category::FileSharing),
    ("openbittorrent.com", Category::FileSharing),
    ("demonoid.me", Category::FileSharing),
    ("btjunkie.org", Category::FileSharing),
    ("isohunt.com", Category::FileSharing),
    // -- Government -----------------------------------------------------------
    ("gov.il", Category::Government),
    ("gov.sy", Category::Government),
    ("idf.il", Category::Government),
    // -- Business -------------------------------------------------------------
    ("alibaba.com", Category::Business),
    ("bloomberg.com", Category::Business),
    // -- Travel ---------------------------------------------------------------
    ("booking.com", Category::Travel),
    ("tripadvisor.com", Category::Travel),
    // -- Sports ---------------------------------------------------------------
    ("kooora.com", Category::Sports),
    ("goal.com", Category::Sports),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_has_no_duplicate_suffixes() {
        let mut names: Vec<&str> = DOMAIN_CATEGORIES.iter().map(|(d, _)| *d).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate suffix in register");
    }

    #[test]
    fn paper_table8_domains_are_registered() {
        let has = |d: &str| DOMAIN_CATEGORIES.iter().any(|(s, _)| *s == d);
        for d in [
            "metacafe.com",
            "skype.com",
            "wikimedia.org",
            "amazon.com",
            "aawsat.com",
            "jumblo.com",
            "jeddahbikers.com",
            "badoo.com",
            "islamway.com",
        ] {
            assert!(has(d), "missing {d}");
        }
    }
}
