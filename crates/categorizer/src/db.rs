//! The category lookup engine.

use crate::category::Category;
use crate::data::DOMAIN_CATEGORIES;
use filterscope_match::DomainTrie;

/// Domain-suffix → category oracle.
///
/// Lookup semantics: `facebook.com` covers `www.facebook.com`; when
/// registrations nest, the most specific registered suffix wins
/// (`mail.yahoo.com` over `yahoo.com`).
#[derive(Debug)]
pub struct CategoryDb {
    trie: DomainTrie,
    categories: Vec<Category>,
}

impl CategoryDb {
    /// Build from `(suffix, category)` pairs. Re-registering a suffix
    /// overwrites its category (last wins).
    pub fn from_entries<'a>(entries: impl IntoIterator<Item = (&'a str, Category)>) -> Self {
        let mut trie = DomainTrie::new();
        let mut categories = Vec::new();
        for (suffix, cat) in entries {
            let ix = trie.insert(suffix) as usize;
            if ix == categories.len() {
                categories.push(cat);
            } else {
                categories[ix] = cat;
            }
        }
        CategoryDb { trie, categories }
    }

    /// The standard register (every domain the paper names).
    pub fn standard() -> Self {
        Self::from_entries(DOMAIN_CATEGORIES.iter().copied())
    }

    /// Category of `host`, or [`Category::Unknown`] when unregistered.
    pub fn categorize(&self, host: &str) -> Category {
        self.trie
            .lookup_longest(host)
            .map(|ix| self.categories[ix as usize])
            .unwrap_or(Category::Unknown)
    }

    /// Is `host` an anonymizer (§7.2)?
    pub fn is_anonymizer(&self, host: &str) -> bool {
        self.categorize(host) == Category::Anonymizer
    }

    /// Number of registered suffixes.
    pub fn len(&self) -> usize {
        self.categories.len()
    }

    /// Is the register empty?
    pub fn is_empty(&self) -> bool {
        self.categories.is_empty()
    }
}

impl Default for CategoryDb {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorizes_paper_domains() {
        let db = CategoryDb::standard();
        assert_eq!(db.categorize("metacafe.com"), Category::StreamingMedia);
        assert_eq!(db.categorize("www.skype.com"), Category::InstantMessaging);
        assert_eq!(db.categorize("facebook.com"), Category::SocialNetworking);
        assert_eq!(
            db.categorize("upload.youtube.com"),
            Category::StreamingMedia
        );
        assert_eq!(
            db.categorize("cdn7.cloudfront.net"),
            Category::ContentServer
        );
        assert_eq!(db.categorize("hotsptshld.com"), Category::Anonymizer);
        assert_eq!(db.categorize("unknown-host.example"), Category::Unknown);
    }

    #[test]
    fn longest_registered_suffix_wins() {
        let db = CategoryDb::from_entries([
            ("yahoo.com", Category::PortalSites),
            ("mail.yahoo.com", Category::Email),
        ]);
        assert_eq!(db.categorize("mail.yahoo.com"), Category::Email);
        assert_eq!(db.categorize("x.mail.yahoo.com"), Category::Email);
        assert_eq!(db.categorize("www.yahoo.com"), Category::PortalSites);
        assert_eq!(db.categorize("yahoo.com"), Category::PortalSites);
    }

    #[test]
    fn re_registration_last_wins() {
        let db = CategoryDb::from_entries([
            ("x.com", Category::Games),
            ("x.com", Category::GeneralNews),
        ]);
        assert_eq!(db.categorize("x.com"), Category::GeneralNews);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn anonymizer_helper() {
        let db = CategoryDb::standard();
        assert!(db.is_anonymizer("hidemyass.com"));
        assert!(db.is_anonymizer("www.kproxy.com"));
        assert!(!db.is_anonymizer("facebook.com"));
    }

    #[test]
    fn nested_standard_entries() {
        let db = CategoryDb::standard();
        assert_eq!(db.categorize("www.gov.il"), Category::Government);
        assert_eq!(db.categorize("panet.co.il"), Category::GeneralNews);
        assert_eq!(db.categorize("random.il"), Category::Unknown);
        // live.com is IM (the MSN messenger service host in the logs),
        // nested distinct from the rest of the Microsoft estate.
        assert_eq!(db.categorize("login.live.com"), Category::InstantMessaging);
    }

    #[test]
    fn standard_register_loads_every_entry() {
        let db = CategoryDb::standard();
        assert_eq!(db.len(), crate::data::DOMAIN_CATEGORIES.len());
        for (suffix, cat) in crate::data::DOMAIN_CATEGORIES {
            assert_eq!(db.categorize(suffix), *cat, "suffix {suffix}");
        }
    }
}
