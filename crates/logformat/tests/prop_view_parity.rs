//! Property tests: the owned parser ([`parse_line`]) and the borrowed view
//! parser ([`parse_view`]) agree field-for-field — on well-formed lines and
//! on arbitrary (mostly malformed) input. Both delegate to the same
//! `build_view` internally; these tests pin that contract from the outside
//! so the two entry points can never drift apart.

use filterscope_core::{ProxyId, Timestamp};
use filterscope_logformat::record::RecordBuilder;
use filterscope_logformat::{
    parse_line, parse_view, ClientId, ExceptionId, LineSplitter, RequestUrl,
};
use proptest::prelude::*;

fn arb_exception() -> impl Strategy<Value = ExceptionId> {
    prop_oneof![
        Just(ExceptionId::None),
        Just(ExceptionId::PolicyDenied),
        Just(ExceptionId::PolicyRedirect),
        Just(ExceptionId::TcpError),
        Just(ExceptionId::DnsUnresolvedHostname),
        "[a-z_]{1,20}".prop_map(|s| ExceptionId::parse(&s)),
    ]
}

fn arb_client() -> impl Strategy<Value = ClientId> {
    prop_oneof![
        Just(ClientId::Zeroed),
        any::<u64>().prop_map(ClientId::Hashed),
    ]
}

proptest! {
    /// On any valid line the view parser yields slices that materialize to
    /// exactly the record the owned parser produces, and its raw-spelling
    /// fields match the owned record's typed fields one for one.
    #[test]
    fn view_fields_match_owned_on_valid_lines(
        host in "[a-z0-9.-]{1,40}",
        path in "(/[a-zA-Z0-9._%-]{0,12}){0,4}",
        query in "[a-zA-Z0-9=&_%.-]{0,30}",
        ua in "[ -~]{0,60}",
        day in 1u8..=6,
        hour in 0u8..24,
        minute in 0u8..60,
        exception in arb_exception(),
        client in arb_client(),
        proxy_ix in 0usize..7,
    ) {
        let query = if query == "-" { String::new() } else { query };
        let ua = if ua == "-" { String::new() } else { ua };
        let ts = Timestamp::parse_fields(
            &format!("2011-08-{day:02}"),
            &format!("{hour:02}:{minute:02}:00"),
        ).unwrap();
        let proxy = ProxyId::from_index(proxy_ix).unwrap();
        let path = if path.is_empty() { "/".to_string() } else { path };
        let url = RequestUrl::http(host, path).with_query(query);
        let rec = RecordBuilder::new(ts, proxy, url)
            .user_agent(ua)
            .client(client)
            .exception(exception)
            .derive_ext()
            .build();
        let line = rec.write_csv();

        let owned = parse_line(&line, 1).unwrap();
        let mut splitter = LineSplitter::new();
        let view = parse_view(&mut splitter, &line, 1).unwrap();

        // The materialized view is the owned record, field for field.
        prop_assert_eq!(&view.to_record(), &owned);
        // Raw slices agree with the owned record's spellings.
        prop_assert_eq!(view.timestamp, owned.timestamp);
        prop_assert_eq!(view.time_taken_ms, owned.time_taken_ms);
        prop_assert_eq!(view.client, owned.client);
        prop_assert_eq!(view.sc_status, owned.sc_status);
        prop_assert_eq!(view.s_action, owned.s_action.as_str());
        prop_assert_eq!(view.sc_bytes, owned.sc_bytes);
        prop_assert_eq!(view.cs_bytes, owned.cs_bytes);
        prop_assert_eq!(view.method, owned.method.as_str());
        prop_assert_eq!(view.url.scheme, &owned.url.scheme);
        prop_assert_eq!(view.url.host, &owned.url.host);
        prop_assert_eq!(view.url.port, owned.url.port);
        prop_assert_eq!(view.url.path, &owned.url.path);
        prop_assert_eq!(view.url.query, &owned.url.query);
        prop_assert_eq!(view.uri_ext, &owned.uri_ext);
        prop_assert_eq!(view.username, &owned.username);
        prop_assert_eq!(view.hierarchy, &owned.hierarchy);
        prop_assert_eq!(view.supplier, &owned.supplier);
        prop_assert_eq!(view.content_type, &owned.content_type);
        prop_assert_eq!(view.user_agent, &owned.user_agent);
        prop_assert_eq!(view.filter_result, owned.filter_result);
        prop_assert_eq!(view.categories, &owned.categories);
        prop_assert_eq!(view.virus_id, &owned.virus_id);
        prop_assert_eq!(view.s_ip, owned.s_ip);
        prop_assert_eq!(view.sitename, &owned.sitename);
        prop_assert_eq!(view.exception_id(), owned.exception);
        // Derived helpers agree with their owned counterparts.
        prop_assert_eq!(view.proxy(), Some(proxy));
        prop_assert_eq!(view.exception_is_none(), owned.exception == ExceptionId::None);
        prop_assert_eq!(view.exception_is_policy(), owned.exception.is_policy());
        prop_assert_eq!(view.url.filter_view(), owned.url.filter_view().as_ref());
    }

    /// On arbitrary (mostly malformed) lines the two parsers agree on
    /// accept/reject, and whenever both accept they produce the same record.
    #[test]
    fn view_and_owned_agree_on_arbitrary_lines(line in "[ -~,\"]{0,200}") {
        let owned = parse_line(&line, 7);
        let mut splitter = LineSplitter::new();
        let view = parse_view(&mut splitter, &line, 7);
        match (owned, view) {
            (Ok(rec), Ok(v)) => prop_assert_eq!(rec, v.to_record()),
            (Err(_), Err(_)) => {}
            (owned, view) => prop_assert!(
                false,
                "parsers disagree on {:?}: owned ok={} view ok={}",
                line,
                owned.is_ok(),
                view.is_ok()
            ),
        }
    }
}
