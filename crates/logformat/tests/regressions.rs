//! Pinned regression cases from `prop_roundtrip.proptest-regressions`.
//!
//! The property runner replays its committed failure seeds, but these two
//! shrunk inputs were tricky enough (a bare `-` host is the on-disk marker
//! for an absent field; `/0.-` ends in the same marker character) that they
//! deserve standing deterministic tests independent of any seed file.

use filterscope_core::{ProxyId, Timestamp};
use filterscope_logformat::record::RecordBuilder;
use filterscope_logformat::{parse_line, ClientId, ExceptionId, RequestUrl};

fn roundtrip(host: &str, path: &str, query: &str) {
    let ts = Timestamp::parse_fields("2011-08-01", "00:00:00").unwrap();
    let url = RequestUrl::http(host, path).with_query(query.to_string());
    let rec = RecordBuilder::new(ts, ProxyId::from_index(0).unwrap(), url)
        .user_agent(String::new())
        .client(ClientId::Zeroed)
        .exception(ExceptionId::None)
        .derive_ext()
        .build();
    let line = rec.write_csv();
    let back = parse_line(&line, 1).unwrap();
    assert_eq!(back, rec, "line: {line}");
}

/// `cc 1fb9544a…`: host is the literal absent-field marker, empty path.
#[test]
fn dash_host_with_root_path_roundtrips() {
    roundtrip("-", "/", "");
}

/// `cc f658527e…`: dash host and a path ending in the marker character.
#[test]
fn dash_host_with_dash_suffixed_path_roundtrips() {
    roundtrip("-", "/0.-", "");
}

/// Neighbouring shapes of the same ambiguity: markers in every optional slot.
#[test]
fn marker_heavy_records_roundtrip() {
    roundtrip("-", "/-", "");
    roundtrip("--", "/0.-", "");
    roundtrip("a-b.example", "/-.-", "");
}
