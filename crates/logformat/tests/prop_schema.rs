//! Property tests for schema-flexible parsing: any permutation of the full
//! field set parses to exactly what the canonical parser produces.

use filterscope_core::{ProxyId, Timestamp};
use filterscope_logformat::fields::FIELDS;
use filterscope_logformat::record::RecordBuilder;
use filterscope_logformat::{csv, parse_line, RequestUrl, Schema};
use proptest::prelude::*;

fn sample_record_line() -> String {
    RecordBuilder::new(
        Timestamp::parse_fields("2011-08-03", "10:30:00").unwrap(),
        ProxyId::Sg44,
        RequestUrl::http("www.facebook.com", "/plugins/like.php").with_query("href=x"),
    )
    .user_agent("Mozilla/4.0 (compatible; MSIE 7.0)")
    .policy_denied()
    .build()
    .write_csv()
}

proptest! {
    /// Shuffle the 26 columns arbitrarily: parsing the shuffled line under
    /// the shuffled header equals parsing the canonical line canonically.
    #[test]
    fn permuted_schema_parses_identically(perm in Just(()).prop_perturb(|_, mut rng| {
        let mut order: Vec<usize> = (0..FIELDS.len()).collect();
        // Fisher-Yates with proptest's rng.
        for i in (1..order.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        order
    })) {
        let line = sample_record_line();
        let canonical = parse_line(&line, 1).unwrap();
        let cells = csv::split_line(&line).unwrap();

        let header = format!(
            "#Fields: {}",
            perm.iter().map(|i| FIELDS[*i]).collect::<Vec<_>>().join(",")
        );
        let shuffled_line = csv::join_line(
            &perm.iter().map(|i| cells[*i].clone()).collect::<Vec<_>>(),
        );
        let schema = Schema::from_header(&header).unwrap();
        let parsed = schema.parse_record(&shuffled_line, 1).unwrap();
        prop_assert_eq!(parsed, canonical);
    }

    /// Headers built from arbitrary printable text never panic.
    #[test]
    fn from_header_is_total(text in "#Fields:[ -~]{0,120}") {
        let _ = Schema::from_header(&text);
    }
}
