//! Property tests: CSV serialization round-trips for arbitrary records, and
//! the CSV engine round-trips arbitrary field content.

use filterscope_core::{ProxyId, Timestamp};
use filterscope_logformat::record::RecordBuilder;
use filterscope_logformat::{csv, parse_line, ClientId, ExceptionId, RequestUrl};
use proptest::prelude::*;

fn arb_exception() -> impl Strategy<Value = ExceptionId> {
    prop_oneof![
        Just(ExceptionId::None),
        Just(ExceptionId::PolicyDenied),
        Just(ExceptionId::PolicyRedirect),
        Just(ExceptionId::TcpError),
        Just(ExceptionId::InternalError),
        Just(ExceptionId::InvalidRequest),
        Just(ExceptionId::DnsUnresolvedHostname),
        "[a-z_]{1,20}".prop_map(|s| ExceptionId::parse(&s)),
    ]
}

fn arb_client() -> impl Strategy<Value = ClientId> {
    prop_oneof![
        Just(ClientId::Zeroed),
        any::<u64>().prop_map(ClientId::Hashed),
    ]
}

proptest! {
    /// Any record built from printable components survives write→parse.
    #[test]
    fn record_roundtrips(
        host in "[a-z0-9.-]{1,40}",
        path in "(/[a-zA-Z0-9._%-]{0,12}){0,4}",
        query in "[a-zA-Z0-9=&_%.-]{0,30}",
        ua in "[ -~]{0,60}",
        day in 1u8..=6,
        hour in 0u8..24,
        minute in 0u8..60,
        exception in arb_exception(),
        client in arb_client(),
        proxy_ix in 0usize..7,
    ) {
        // The on-disk format writes `-` for absent optional fields, so a
        // literal "-" value is indistinguishable from absence — the same
        // ambiguity exists in the real leak. Normalize those here.
        let query = if query == "-" { String::new() } else { query };
        let ua = if ua == "-" { String::new() } else { ua };
        // Hosts like ".." or "1.2.3.4" are all legal cs-host values.
        let ts = Timestamp::parse_fields(
            &format!("2011-08-{day:02}"),
            &format!("{hour:02}:{minute:02}:00"),
        ).unwrap();
        let proxy = ProxyId::from_index(proxy_ix).unwrap();
        let path = if path.is_empty() { "/".to_string() } else { path };
        let url = RequestUrl::http(host, path).with_query(query);
        let rec = RecordBuilder::new(ts, proxy, url)
            .user_agent(ua)
            .client(client)
            .exception(exception)
            .derive_ext()
            .build();
        let line = rec.write_csv();
        let back = parse_line(&line, 1).unwrap();
        prop_assert_eq!(back, rec);
    }

    /// The CSV engine round-trips arbitrary field content, including commas,
    /// quotes and empty fields.
    #[test]
    fn csv_roundtrips_any_fields(fields in proptest::collection::vec("[ -~]{0,20}", 1..10)) {
        let line = csv::join_line(&fields);
        let back = csv::split_line(&line).unwrap();
        prop_assert_eq!(back, fields);
    }

    /// split_line never panics on arbitrary input.
    #[test]
    fn split_line_is_total(line in "[ -~]{0,80}") {
        let _ = csv::split_line(&line);
    }

    /// parse_line never panics on arbitrary input.
    #[test]
    fn parse_line_is_total(line in "[ -~,]{0,200}") {
        let _ = parse_line(&line, 1);
    }
}
