//! Block-oriented log ingest: buffer-reusing block reads and batch parsing.
//!
//! The line-at-a-time ingest loop (`read_until` + per-line `parse_view`)
//! pays a `BufReader` copy, a length check and a virtual sink dispatch per
//! record. At paper scale — 751 M records, 600 GB — those per-line costs
//! dominate. This module moves the hot path to *blocks*:
//!
//! * [`BlockReader`] fills one reusable buffer with large reads and emits
//!   blocks of **whole lines**: each block ends on a newline (except the
//!   final unterminated line at EOF), partial tails are carried to the front
//!   of the buffer, and a line longer than the buffer grows it rather than
//!   splitting the line. The reader also owns the byte-range discipline that
//!   used to live in `analysis::pipeline`: a range starting mid-line skips
//!   through the first newline (that prefix belongs to the previous shard),
//!   and the final line straddling the range end is read to completion.
//! * [`BlockParser`] parses a block into a `Vec<RecordView>` in two phases —
//!   span collection (mutating shared span/scratch tables) then view
//!   resolution — so every view in the block coexists borrowing the block
//!   and one scratch buffer, and a sink can ingest the whole batch through
//!   one virtual call.
//! * [`scan_sections`] locates mid-file `#Fields:` schema switches for the
//!   shard planner using the same block machinery; because blocks always
//!   hold whole lines, a header straddling a block boundary cannot be
//!   mis-read.
//!
//! Malformed-line semantics are identical to the streaming readers: lines
//! are trimmed of trailing `\r`/`\n`, empty lines are skipped, UTF-8
//! validity is checked *before* the `#` comment prefix (a corrupt comment
//! counts as malformed), and CSV/width/field errors count per line.

use crate::csv::{self, Span};
use crate::scan;
use crate::schema::Schema;
use crate::view::{self, RecordView};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::Arc;

/// Default block size: big enough to amortize syscall and dispatch costs,
/// small enough to stay cache-friendly per worker thread.
pub const DEFAULT_BLOCK_BYTES: usize = 256 * 1024;

/// Reusable block reader over a byte range `[start, end)` of one file.
///
/// Emits blocks of whole lines via [`BlockReader::next_block`]. Ownership
/// rule (shared with the shard planner): a line belongs to the range
/// containing its first byte — a reader whose range starts mid-line skips
/// that prefix, and the final line is read past `end` to completion.
#[derive(Debug)]
pub struct BlockReader {
    file: File,
    buf: Vec<u8>,
    /// Bytes of `buf` holding data (`emit_end..filled` is the carried tail).
    filled: usize,
    /// Length of the previously emitted block, reclaimed on the next call.
    emit_end: usize,
    /// Absolute file offset of `buf[0]`.
    abs: u64,
    /// Exclusive range end: lines starting at or after this are not ours.
    end: u64,
    /// Current block size (doubles when a single line outgrows it).
    block_bytes: usize,
    eof: bool,
    done: bool,
}

impl BlockReader {
    /// Open `path` restricted to `[start, end)`. `aligned` asserts that
    /// `start` is a known line start (first shard of a section); otherwise
    /// the reader applies the ownership rule and skips through the first
    /// newline at or after `start - 1`.
    pub fn open(
        path: &Path,
        start: u64,
        end: u64,
        aligned: bool,
        block_bytes: usize,
    ) -> std::io::Result<BlockReader> {
        let mut file = File::open(path)?;
        let block_bytes = block_bytes.max(64);
        let mut abs = start;
        let mut done = false;
        if aligned || start == 0 {
            file.seek(SeekFrom::Start(start))?;
        } else {
            // Scan from `start - 1` for the first newline: if the previous
            // byte is itself a newline the scan terminates immediately and
            // no bytes are skipped, which folds the "is the byte before our
            // range a newline?" probe and the skip-to-newline into one pass.
            file.seek(SeekFrom::Start(start - 1))?;
            let mut probe = vec![0u8; 4096];
            let mut at = start - 1;
            loop {
                let n = file.read(&mut probe)?;
                if n == 0 {
                    // Mid-line to EOF: everything belongs to the previous
                    // shard.
                    done = true;
                    break;
                }
                if let Some(p) = scan::memchr(b'\n', &probe[..n]) {
                    abs = at + p as u64 + 1;
                    file.seek(SeekFrom::Start(abs))?;
                    break;
                }
                at += n as u64;
            }
        }
        Ok(BlockReader {
            file,
            buf: Vec::new(),
            filled: 0,
            emit_end: 0,
            abs,
            end,
            block_bytes,
            eof: false,
            done,
        })
    }

    /// The next block of whole lines, or `None` when the range is drained.
    ///
    /// Every returned block ends with `\n` except the last one of a file
    /// with an unterminated final line. The block borrows the reader's
    /// internal buffer; the borrow ends before the next call.
    pub fn next_block(&mut self) -> std::io::Result<Option<&[u8]>> {
        // Reclaim the previously emitted block: slide the carried tail to
        // the buffer front.
        if self.emit_end > 0 {
            self.buf.copy_within(self.emit_end..self.filled, 0);
            self.filled -= self.emit_end;
            self.abs += self.emit_end as u64;
            self.emit_end = 0;
        }
        if self.done || self.abs >= self.end {
            self.done = true;
            return Ok(None);
        }
        loop {
            if self.buf.len() < self.block_bytes {
                self.buf.resize(self.block_bytes, 0);
            }
            while !self.eof && self.filled < self.block_bytes {
                let n = self
                    .file
                    .read(&mut self.buf[self.filled..self.block_bytes])?;
                if n == 0 {
                    self.eof = true;
                } else {
                    self.filled += n;
                }
            }
            if self.filled == 0 {
                self.done = true;
                return Ok(None);
            }
            // Range end-cut: the first newline at absolute offset >= end-1
            // terminates the final line we own (a line straddling `end` is
            // still ours; the line starting after that newline is not).
            let threshold = self.end.saturating_sub(1).saturating_sub(self.abs);
            if (threshold as usize) < self.filled {
                if let Some(off) = scan::memchr(b'\n', &self.buf[threshold as usize..self.filled]) {
                    let cut = threshold as usize + off + 1;
                    self.done = true;
                    self.emit_end = cut;
                    return Ok(Some(&self.buf[..cut]));
                }
            }
            if self.eof {
                // Unterminated final line: ours (no newline at >= end-1
                // exists, so every line here starts before `end`).
                self.done = true;
                self.emit_end = self.filled;
                return Ok(Some(&self.buf[..self.filled]));
            }
            match scan::memrchr(b'\n', &self.buf[..self.filled]) {
                Some(p) => {
                    self.emit_end = p + 1;
                    return Ok(Some(&self.buf[..p + 1]));
                }
                None => {
                    // One line larger than the whole buffer: grow and keep
                    // filling rather than splitting the line.
                    self.block_bytes *= 2;
                }
            }
        }
    }
}

/// Per-record metadata collected in phase A of a block parse.
#[derive(Debug, Clone, Copy)]
struct RecMeta {
    /// Line bytes within the block (already trimmed of `\r`/`\n`).
    line_start: u32,
    line_end: u32,
    /// First entry in the shared span table.
    span_start: u32,
    /// 1-based line number (for error attribution).
    line_no: u64,
}

/// Reusable batch parser: one block of lines → a `Vec` of coexisting
/// [`RecordView`]s plus a malformed-line count.
///
/// Internally two-phase: phase A walks the block once, collecting field
/// spans for every well-formed data line into one shared span table (quoted
/// fields with `""` escapes unescape into one shared scratch buffer); phase
/// B resolves the spans into views. Splitting the phases is what lets all
/// views of a block borrow the block and the parser simultaneously.
#[derive(Debug, Default)]
pub struct BlockParser {
    spans: Vec<Span>,
    metas: Vec<RecMeta>,
    scratch: String,
}

impl BlockParser {
    /// A fresh parser (reuse it across blocks; its tables are recycled).
    pub fn new() -> BlockParser {
        BlockParser::default()
    }

    /// Parse one block of whole lines under `schema`. `line_no` is the
    /// running physical-line counter for the enclosing byte range; it
    /// advances across every line seen (including skipped ones), exactly
    /// like the line-at-a-time loop it replaces.
    ///
    /// Returns the record views in line order and the number of malformed
    /// lines (bad UTF-8, bad CSV quoting, wrong field count, or field
    /// conversion failures).
    pub fn parse<'a>(
        &'a mut self,
        block: &'a [u8],
        schema: &Schema,
        line_no: &mut u64,
    ) -> (Vec<RecordView<'a>>, u64) {
        self.spans.clear();
        self.metas.clear();
        self.scratch.clear();
        let mut malformed = 0u64;

        // Phase A: collect spans.
        let mut pos = 0usize;
        while pos < block.len() {
            let (raw_end, next) = match scan::memchr(b'\n', &block[pos..]) {
                Some(off) => (pos + off, pos + off + 1),
                None => (block.len(), block.len()),
            };
            *line_no += 1;
            let mut end = raw_end;
            while end > pos && block[end - 1] == b'\r' {
                end -= 1;
            }
            let start = pos;
            pos = next;
            if end == start {
                continue;
            }
            // Same order as the streaming readers: UTF-8 validity before the
            // comment prefix, so a corrupt comment line counts as malformed.
            let Ok(text) = std::str::from_utf8(&block[start..end]) else {
                malformed += 1;
                continue;
            };
            if text.starts_with('#') {
                // Comments are skipped; `#Fields:` headers were consumed (or
                // counted, when malformed) by the section scan.
                continue;
            }
            let span_start = self.spans.len();
            let scratch_mark = self.scratch.len();
            if !csv::append_spans(text, &mut self.spans, &mut self.scratch) {
                malformed += 1;
                continue;
            }
            if self.spans.len() - span_start != schema.width {
                self.spans.truncate(span_start);
                self.scratch.truncate(scratch_mark);
                malformed += 1;
                continue;
            }
            self.metas.push(RecMeta {
                line_start: start as u32,
                line_end: end as u32,
                span_start: span_start as u32,
                line_no: *line_no,
            });
        }

        // Phase B: resolve spans into views (shared immutable borrows only).
        let spans: &'a [Span] = &self.spans;
        let scratch: &'a str = &self.scratch;
        let mut views = Vec::with_capacity(self.metas.len());
        for meta in &self.metas {
            let line =
                std::str::from_utf8(&block[meta.line_start as usize..meta.line_end as usize])
                    .expect("validated in phase A");
            let fields = &spans[meta.span_start as usize..meta.span_start as usize + schema.width];
            let lookup = |canonical: usize| {
                schema
                    .col(canonical)
                    .map(|c| fields[c].resolve(line, scratch))
            };
            match view::build_view(&lookup, meta.line_no) {
                Ok(v) => views.push(v),
                Err(_) => malformed += 1,
            }
        }
        (views, malformed)
    }
}

/// The `#Fields:` section layout of one log file, as the shard planner
/// consumes it.
#[derive(Debug)]
pub struct FileSections {
    /// `(section start offset, schema)`; a file opens under the canonical
    /// schema at offset 0.
    pub sections: Vec<(u64, Arc<Schema>)>,
    /// Byte offset of each `#Fields:` header **line start** — section `i`
    /// ends where cut `i` begins (header bytes belong to no section).
    pub cuts: Vec<u64>,
    /// Headers that failed to parse (counted once, here, not per shard).
    pub malformed_headers: u64,
    /// Total file length in bytes.
    pub bytes: u64,
}

/// Scan one file for mid-file `#Fields:` schema switches (log rotation
/// concatenation), block-wise. Because [`BlockReader`] emits whole lines, a
/// header straddling any internal block boundary is still seen as one line.
pub fn scan_sections(path: &Path) -> std::io::Result<FileSections> {
    scan_sections_with(path, DEFAULT_BLOCK_BYTES)
}

/// [`scan_sections`] with an explicit block size (tests use tiny blocks to
/// force headers across block boundaries).
pub fn scan_sections_with(path: &Path, block_bytes: usize) -> std::io::Result<FileSections> {
    let mut reader = BlockReader::open(path, 0, u64::MAX, true, block_bytes)?;
    let mut abs = 0u64;
    let mut sections: Vec<(u64, Arc<Schema>)> = vec![(0, Arc::new(Schema::canonical()))];
    let mut cuts: Vec<u64> = Vec::new();
    let mut malformed_headers = 0u64;
    while let Some(block) = reader.next_block()? {
        let mut pos = 0usize;
        while pos < block.len() {
            let (raw_end, next) = match scan::memchr(b'\n', &block[pos..]) {
                Some(off) => (pos + off, pos + off + 1),
                None => (block.len(), block.len()),
            };
            if block.get(pos) == Some(&b'#') {
                let mut end = raw_end;
                while end > pos && block[end - 1] == b'\r' {
                    end -= 1;
                }
                // Mirrors `SchemaReader`: header handling only applies to
                // valid UTF-8 lines (invalid UTF-8 is counted by the shard
                // readers).
                if let Ok(text) = std::str::from_utf8(&block[pos..end]) {
                    if text[1..].trim_start().starts_with("Fields:") {
                        match Schema::from_header(text) {
                            Ok(schema) => {
                                cuts.push(abs + pos as u64);
                                sections.push((abs + next as u64, Arc::new(schema)));
                            }
                            Err(_) => malformed_headers += 1,
                        }
                    }
                }
            }
            pos = next;
        }
        abs += block.len() as u64;
    }
    Ok(FileSections {
        sections,
        cuts,
        malformed_headers,
        bytes: abs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordBuilder;
    use crate::url::RequestUrl;
    use filterscope_core::{ProxyId, Timestamp};

    fn sample_lines(n: usize) -> String {
        let mut out = String::new();
        for i in 0..n {
            let rec = RecordBuilder::new(
                Timestamp::parse_fields("2011-08-03", "10:00:00").unwrap(),
                ProxyId::Sg42,
                RequestUrl::http(format!("host{i}.example"), "/"),
            )
            .build();
            out.push_str(&rec.write_csv());
            out.push('\n');
        }
        out
    }

    fn write_temp(tag: &str, data: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("filterscope-block-{tag}-{}", std::process::id()));
        std::fs::write(&path, data).unwrap();
        path
    }

    /// Reassemble `[start, end)` of `data` through a reader with the given
    /// block size.
    fn collect(
        path: &Path,
        start: u64,
        end: u64,
        aligned: bool,
        block_bytes: usize,
    ) -> (Vec<u8>, usize) {
        let mut r = BlockReader::open(path, start, end, aligned, block_bytes).unwrap();
        let mut out = Vec::new();
        let mut blocks = 0;
        while let Some(block) = r.next_block().unwrap() {
            out.extend_from_slice(block);
            blocks += 1;
        }
        (out, blocks)
    }

    #[test]
    fn whole_file_reassembles_at_every_block_size() {
        let data = sample_lines(40);
        let path = write_temp("whole", data.as_bytes());
        for block_bytes in [64, 100, 256, 1 << 20] {
            let (got, blocks) = collect(&path, 0, u64::MAX, true, block_bytes);
            assert_eq!(got, data.as_bytes(), "block_bytes={block_bytes}");
            if block_bytes == 100 {
                assert!(blocks > 1, "small blocks must actually split");
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn blocks_end_on_newlines() {
        let data = sample_lines(40);
        let path = write_temp("newline", data.as_bytes());
        let mut r = BlockReader::open(&path, 0, u64::MAX, true, 300).unwrap();
        while let Some(block) = r.next_block().unwrap() {
            assert_eq!(*block.last().unwrap(), b'\n');
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unterminated_final_line_is_emitted() {
        let mut data = sample_lines(3);
        data.push_str("partial final line without newline");
        let path = write_temp("partial", data.as_bytes());
        let (got, _) = collect(&path, 0, u64::MAX, true, 64);
        assert_eq!(got, data.as_bytes());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn line_longer_than_block_grows_the_buffer() {
        let long = format!("{}\nshort\n", "x".repeat(5000));
        let path = write_temp("grow", long.as_bytes());
        let (got, _) = collect(&path, 0, u64::MAX, true, 64);
        assert_eq!(got, long.as_bytes());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn split_ranges_partition_the_file_exactly() {
        // Every line must land in exactly one range, for many split points:
        // the concatenation over ranges must equal the file, at several
        // block sizes.
        let data = sample_lines(25);
        let bytes = data.as_bytes();
        let path = write_temp("split", bytes);
        let len = bytes.len() as u64;
        for cut in [1u64, 7, 100, 239, 240, 241, len / 2, len - 1] {
            for block_bytes in [64usize, 128, 1 << 16] {
                let (a, _) = collect(&path, 0, cut, true, block_bytes);
                let (b, _) = collect(&path, cut, len, false, block_bytes);
                let mut joined = a.clone();
                joined.extend_from_slice(&b);
                assert_eq!(
                    joined,
                    bytes,
                    "cut={cut} block_bytes={block_bytes} (a={} b={})",
                    a.len(),
                    b.len()
                );
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn aligned_range_starting_at_line_boundary_keeps_the_line() {
        let data = b"aaa\nbbb\nccc\n";
        let path = write_temp("aligned", data);
        // Range starting exactly at a line start, unaligned flag: the
        // previous byte is a newline, so nothing is skipped.
        let (got, _) = collect(&path, 4, 12, false, 64);
        assert_eq!(got, b"bbb\nccc\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parser_matches_line_at_a_time_parse_view() {
        let mut data = sample_lines(10);
        data.push_str("# a comment line\n");
        data.push_str("\n");
        data.push_str("garbage,line\n");
        data.push_str(&sample_lines(2));
        let schema = Schema::canonical();
        let mut parser = BlockParser::new();
        let mut line_no = 0u64;
        let (views, malformed) = parser.parse(data.as_bytes(), &schema, &mut line_no);
        assert_eq!(malformed, 1);
        assert_eq!(views.len(), 12);
        assert_eq!(line_no, 15);
        // Record-for-record identical to the line-at-a-time path.
        let mut splitter = crate::csv::LineSplitter::new();
        let mut want = Vec::new();
        for line in data.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Ok(v) = schema.parse_view(&mut splitter, line, 0) {
                want.push(v.to_record());
            }
        }
        let got: Vec<_> = views.iter().map(|v| v.to_record()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn parser_handles_quoted_fields_with_escapes_across_a_block() {
        // Two records whose quoted user-agent fields carry `""` escapes,
        // exercising the shared scratch buffer across records of one block.
        let rec = |ua: &str| {
            RecordBuilder::new(
                Timestamp::parse_fields("2011-08-03", "10:00:00").unwrap(),
                ProxyId::Sg42,
                RequestUrl::http("quoted.example", "/"),
            )
            .user_agent(ua)
            .build()
        };
        let a = rec(r#"agent "one", quoted"#);
        let b = rec(r#"agent "two", quoted"#);
        let data = format!("{}\n{}\n", a.write_csv(), b.write_csv());
        let schema = Schema::canonical();
        let mut parser = BlockParser::new();
        let mut line_no = 0;
        let (views, malformed) = parser.parse(data.as_bytes(), &schema, &mut line_no);
        assert_eq!(malformed, 0);
        assert_eq!(views.len(), 2);
        assert_eq!(views[0].user_agent, r#"agent "one", quoted"#);
        assert_eq!(views[1].user_agent, r#"agent "two", quoted"#);
        assert_eq!(views[0].to_record(), a);
        assert_eq!(views[1].to_record(), b);
    }

    #[test]
    fn section_scan_finds_mid_file_headers() {
        let first = sample_lines(2);
        let header = format!(
            "#Fields: {}\n",
            crate::fields::FIELDS
                .iter()
                .rev()
                .copied()
                .collect::<Vec<_>>()
                .join(",")
        );
        let data = format!("{first}{header}rest-of-file\n");
        let path = write_temp("sections", data.as_bytes());
        let scan = scan_sections(&path).unwrap();
        assert_eq!(scan.sections.len(), 2);
        assert_eq!(scan.cuts, vec![first.len() as u64]);
        assert_eq!(scan.sections[1].0, (first.len() + header.len()) as u64);
        assert_eq!(scan.malformed_headers, 0);
        assert_eq!(scan.bytes, data.len() as u64);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn section_scan_is_block_size_invariant_with_straddling_headers() {
        // A long `#Fields:` header (extra spacing is legal separator
        // padding) placed so that small scan blocks split it mid-line: the
        // scanner must report identical sections/cuts for every block size.
        let first = sample_lines(3);
        let header = format!(
            "#Fields:   {}\n",
            crate::fields::FIELDS
                .iter()
                .rev()
                .copied()
                .collect::<Vec<_>>()
                .join("   ")
        );
        assert!(header.len() > 300, "header must outgrow the small blocks");
        let data = format!("{first}{header}{}", sample_lines(2));
        let path = write_temp("straddle", data.as_bytes());
        let want = scan_sections_with(&path, 1 << 20).unwrap();
        for block_bytes in [64usize, 100, 127, 128, 129, 256, 301] {
            let got = scan_sections_with(&path, block_bytes).unwrap();
            assert_eq!(got.cuts, want.cuts, "block_bytes={block_bytes}");
            assert_eq!(got.bytes, want.bytes, "block_bytes={block_bytes}");
            assert_eq!(got.malformed_headers, 0, "block_bytes={block_bytes}");
            let starts: Vec<u64> = got.sections.iter().map(|(s, _)| *s).collect();
            let want_starts: Vec<u64> = want.sections.iter().map(|(s, _)| *s).collect();
            assert_eq!(starts, want_starts, "block_bytes={block_bytes}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn section_scan_counts_malformed_headers_once() {
        let data = "#Fields: not,a,real,schema\ndata line\n";
        let path = write_temp("badheader", data.as_bytes());
        let scan = scan_sections(&path).unwrap();
        assert_eq!(scan.sections.len(), 1);
        assert_eq!(scan.malformed_headers, 1);
        let _ = std::fs::remove_file(&path);
    }
}
