//! Typed values for the enumerated log fields.
//!
//! Every enum keeps an `Other` escape hatch: the parser must never lose data
//! from a real log, even when an appliance firmware version emits a value we
//! have not catalogued.

use filterscope_core::{Error, Result};
use std::fmt;
use std::net::Ipv4Addr;

/// `sc-filter-result`: the action class the proxy assigned (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilterResult {
    /// Request is served; content fetched from the origin server.
    Observed,
    /// Outcome determined by the cache.
    Proxied,
    /// Request not served; an exception was raised.
    Denied,
}

impl FilterResult {
    /// On-disk spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            FilterResult::Observed => "OBSERVED",
            FilterResult::Proxied => "PROXIED",
            FilterResult::Denied => "DENIED",
        }
    }

    /// Parse the on-disk spelling.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "OBSERVED" => Ok(FilterResult::Observed),
            "PROXIED" => Ok(FilterResult::Proxied),
            "DENIED" => Ok(FilterResult::Denied),
            other => Err(Error::UnknownVariant {
                field: "sc-filter-result",
                value: other.to_string(),
            }),
        }
    }
}

impl fmt::Display for FilterResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// `x-exception-id`: why a request was not served (§3.3, Table 3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ExceptionId {
    /// `-`: no exception; the request was served.
    None,
    /// Censored by policy; page not served.
    PolicyDenied,
    /// Censored by policy; client redirected to another URL.
    PolicyRedirect,
    /// TCP-level failure between proxy and origin.
    TcpError,
    /// The appliance could not handle the request.
    InternalError,
    /// Malformed HTTP request.
    InvalidRequest,
    /// Malformed HTTP response from the origin.
    InvalidResponse,
    /// Protocol not supported by the appliance.
    UnsupportedProtocol,
    /// Content encoding not supported.
    UnsupportedEncoding,
    /// DNS could not resolve the hostname.
    DnsUnresolvedHostname,
    /// The DNS server itself failed.
    DnsServerFailure,
    /// Any value outside the catalogue above.
    Other(Box<str>),
}

impl ExceptionId {
    /// All catalogued non-`None`, non-`Other` variants, in Table 3 order.
    pub const CATALOGUE: [ExceptionId; 10] = [
        ExceptionId::TcpError,
        ExceptionId::InternalError,
        ExceptionId::InvalidRequest,
        ExceptionId::UnsupportedProtocol,
        ExceptionId::DnsUnresolvedHostname,
        ExceptionId::DnsServerFailure,
        ExceptionId::UnsupportedEncoding,
        ExceptionId::InvalidResponse,
        ExceptionId::PolicyDenied,
        ExceptionId::PolicyRedirect,
    ];

    /// On-disk spelling.
    pub fn as_str(&self) -> &str {
        match self {
            ExceptionId::None => "-",
            ExceptionId::PolicyDenied => "policy_denied",
            ExceptionId::PolicyRedirect => "policy_redirect",
            ExceptionId::TcpError => "tcp_error",
            ExceptionId::InternalError => "internal_error",
            ExceptionId::InvalidRequest => "invalid_request",
            ExceptionId::InvalidResponse => "invalid_response",
            ExceptionId::UnsupportedProtocol => "unsupported_protocol",
            ExceptionId::UnsupportedEncoding => "unsupported_encoding",
            ExceptionId::DnsUnresolvedHostname => "dns_unresolved_hostname",
            ExceptionId::DnsServerFailure => "dns_server_failure",
            ExceptionId::Other(s) => s,
        }
    }

    /// Parse the on-disk spelling. Unknown values become
    /// [`ExceptionId::Other`] rather than an error — real logs contain
    /// long-tail exception ids and the analysis must not drop those records.
    pub fn parse(s: &str) -> Self {
        match s {
            "-" => ExceptionId::None,
            "policy_denied" => ExceptionId::PolicyDenied,
            "policy_redirect" => ExceptionId::PolicyRedirect,
            "tcp_error" => ExceptionId::TcpError,
            "internal_error" => ExceptionId::InternalError,
            "invalid_request" => ExceptionId::InvalidRequest,
            "invalid_response" => ExceptionId::InvalidResponse,
            "unsupported_protocol" => ExceptionId::UnsupportedProtocol,
            "unsupported_encoding" => ExceptionId::UnsupportedEncoding,
            "dns_unresolved_hostname" => ExceptionId::DnsUnresolvedHostname,
            "dns_server_failure" => ExceptionId::DnsServerFailure,
            other => ExceptionId::Other(other.into()),
        }
    }

    /// Is this one of the two censorship exceptions?
    pub fn is_policy(&self) -> bool {
        matches!(
            self,
            ExceptionId::PolicyDenied | ExceptionId::PolicyRedirect
        )
    }

    /// Is this a network/processing error (denied but not censored)?
    pub fn is_error(&self) -> bool {
        !matches!(self, ExceptionId::None) && !self.is_policy()
    }
}

impl fmt::Display for ExceptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// `s-action`: what the appliance did with the request.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SAction {
    /// Served from cache.
    TcpHit,
    /// Fetched from origin (cache miss).
    TcpNcMiss,
    /// Cache miss, cacheable.
    TcpMiss,
    /// Denied by policy.
    TcpDenied,
    /// Error while fetching from origin.
    TcpErrMiss,
    /// Redirected by policy.
    TcpPolicyRedirect,
    /// Tunnelled (e.g. HTTPS CONNECT).
    TcpTunneled,
    /// Any value outside the catalogue above.
    Other(Box<str>),
}

impl SAction {
    /// On-disk spelling.
    pub fn as_str(&self) -> &str {
        match self {
            SAction::TcpHit => "TCP_HIT",
            SAction::TcpNcMiss => "TCP_NC_MISS",
            SAction::TcpMiss => "TCP_MISS",
            SAction::TcpDenied => "TCP_DENIED",
            SAction::TcpErrMiss => "TCP_ERR_MISS",
            SAction::TcpPolicyRedirect => "TCP_POLICY_REDIRECT",
            SAction::TcpTunneled => "TCP_TUNNELED",
            SAction::Other(s) => s,
        }
    }

    /// Parse the on-disk spelling (unknown values preserved).
    pub fn parse(s: &str) -> Self {
        match s {
            "TCP_HIT" => SAction::TcpHit,
            "TCP_NC_MISS" => SAction::TcpNcMiss,
            "TCP_MISS" => SAction::TcpMiss,
            "TCP_DENIED" => SAction::TcpDenied,
            "TCP_ERR_MISS" => SAction::TcpErrMiss,
            "TCP_POLICY_REDIRECT" => SAction::TcpPolicyRedirect,
            "TCP_TUNNELED" => SAction::TcpTunneled,
            other => SAction::Other(other.into()),
        }
    }
}

impl fmt::Display for SAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// `cs-method`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Method {
    Get,
    Post,
    Head,
    Put,
    Connect,
    Options,
    /// Unknown or non-HTTP method string.
    Other(Box<str>),
}

impl Method {
    /// On-disk spelling.
    pub fn as_str(&self) -> &str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Head => "HEAD",
            Method::Put => "PUT",
            Method::Connect => "CONNECT",
            Method::Options => "OPTIONS",
            Method::Other(s) => s,
        }
    }

    /// Parse the on-disk spelling (unknown values preserved).
    pub fn parse(s: &str) -> Self {
        match s {
            "GET" => Method::Get,
            "POST" => Method::Post,
            "HEAD" => Method::Head,
            "PUT" => Method::Put,
            "CONNECT" => Method::Connect,
            "OPTIONS" => Method::Options,
            other => Method::Other(other.into()),
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// `cs-uri-scheme`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Scheme {
    Http,
    /// HTTPS requests appear with scheme `ssl` (via CONNECT tunnelling).
    Ssl,
    Tcp,
    Ftp,
    /// Unknown scheme string.
    Other(Box<str>),
}

impl Scheme {
    /// On-disk spelling.
    pub fn as_str(&self) -> &str {
        match self {
            Scheme::Http => "http",
            Scheme::Ssl => "ssl",
            Scheme::Tcp => "tcp",
            Scheme::Ftp => "ftp",
            Scheme::Other(s) => s,
        }
    }

    /// Parse the on-disk spelling (unknown values preserved).
    pub fn parse(s: &str) -> Self {
        match s {
            "http" => Scheme::Http,
            "ssl" => Scheme::Ssl,
            "tcp" => Scheme::Tcp,
            "ftp" => Scheme::Ftp,
            other => Scheme::Other(other.into()),
        }
    }

    /// Is this encrypted traffic (the paper's "HTTPS traffic" bucket)?
    pub fn is_encrypted(&self) -> bool {
        matches!(self, Scheme::Ssl)
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// `c-ip` after Telecomix's anonymization (§3.3).
///
/// Before release, client addresses were replaced with zeros, except for
/// July 22–23 where they were replaced with a hash of the address — which is
/// what makes the `Duser` dataset possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClientId {
    /// `0.0.0.0`: identifier suppressed.
    Zeroed,
    /// 16-hex-digit hash of the original address.
    Hashed(u64),
    /// A literal address (never present in the leak, but the parser and the
    /// simulator support it so the library works on unredacted logs too).
    Addr(Ipv4Addr),
}

impl ClientId {
    /// Parse the on-disk spelling.
    pub fn parse(s: &str) -> Result<Self> {
        if s == "0.0.0.0" || s == "-" {
            return Ok(ClientId::Zeroed);
        }
        if s.len() == 16 && s.bytes().all(|b| b.is_ascii_hexdigit()) {
            let v = u64::from_str_radix(s, 16).map_err(|_| Error::InvalidAddress(s.to_string()))?;
            return Ok(ClientId::Hashed(v));
        }
        s.parse::<Ipv4Addr>()
            .map(ClientId::Addr)
            .map_err(|_| Error::InvalidAddress(s.to_string()))
    }

    /// Hash value when user-level analysis is possible.
    pub fn hash(&self) -> Option<u64> {
        match self {
            ClientId::Hashed(h) => Some(*h),
            _ => None,
        }
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientId::Zeroed => f.write_str("0.0.0.0"),
            ClientId::Hashed(h) => write!(f, "{h:016x}"),
            ClientId::Addr(a) => write!(f, "{a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_result_roundtrip() {
        for fr in [
            FilterResult::Observed,
            FilterResult::Proxied,
            FilterResult::Denied,
        ] {
            assert_eq!(FilterResult::parse(fr.as_str()).unwrap(), fr);
        }
        assert!(FilterResult::parse("observed").is_err());
    }

    #[test]
    fn exception_roundtrip_and_classes() {
        for e in ExceptionId::CATALOGUE {
            assert_eq!(ExceptionId::parse(e.as_str()), e);
        }
        assert_eq!(ExceptionId::parse("-"), ExceptionId::None);
        assert!(ExceptionId::PolicyDenied.is_policy());
        assert!(ExceptionId::PolicyRedirect.is_policy());
        assert!(ExceptionId::TcpError.is_error());
        assert!(!ExceptionId::None.is_error());
        assert!(!ExceptionId::None.is_policy());
        let other = ExceptionId::parse("icap_error");
        assert_eq!(other.as_str(), "icap_error");
        assert!(other.is_error());
    }

    #[test]
    fn client_id_forms() {
        assert_eq!(ClientId::parse("0.0.0.0").unwrap(), ClientId::Zeroed);
        let h = ClientId::parse("00ff00ff00ff00ff").unwrap();
        assert_eq!(h, ClientId::Hashed(0x00ff00ff00ff00ff));
        assert_eq!(h.to_string(), "00ff00ff00ff00ff");
        assert_eq!(
            ClientId::parse("10.2.3.4").unwrap(),
            ClientId::Addr(Ipv4Addr::new(10, 2, 3, 4))
        );
        assert!(ClientId::parse("zz").is_err());
        assert_eq!(h.hash(), Some(0x00ff00ff00ff00ffu64));
        assert_eq!(ClientId::Zeroed.hash(), None);
    }

    #[test]
    fn scheme_and_method() {
        assert_eq!(Scheme::parse("ssl"), Scheme::Ssl);
        assert!(Scheme::Ssl.is_encrypted());
        assert!(!Scheme::Http.is_encrypted());
        assert_eq!(Method::parse("CONNECT"), Method::Connect);
        assert_eq!(Method::parse("BREW").as_str(), "BREW");
    }

    #[test]
    fn s_action_preserves_unknowns() {
        let a = SAction::parse("TCP_CLIENT_REFRESH");
        assert_eq!(a.as_str(), "TCP_CLIENT_REFRESH");
        assert_eq!(
            SAction::parse("TCP_POLICY_REDIRECT"),
            SAction::TcpPolicyRedirect
        );
    }
}
