//! Borrowed, zero-allocation record views.
//!
//! [`RecordView`] is the hot-path twin of [`LogRecord`]: every free-text
//! field is a `&str` slice over the line buffer the shard reader already
//! holds (or the splitter's scratch buffer for escape-carrying quoted
//! fields), and the numeric/enum fields are parsed to the same `Copy`
//! types the owned record uses. Parsing a view allocates nothing on the
//! happy path, which is what lets the analysis pass stream the paper's
//! 751 M-record corpus without the allocator dominating the profile.
//!
//! The owned [`LogRecord`] remains the construction / synthesis /
//! round-trip type; [`LogRecord::as_view`] bridges owned records into any
//! view-consuming API for free, and [`RecordView::to_record`] materializes
//! a view when ownership is genuinely needed. The owned parsers delegate
//! to the view parser, so the two can never drift apart.

use crate::csv::LineSplitter;
use crate::enums::{ClientId, ExceptionId, FilterResult, Method, SAction, Scheme};
use crate::fields::{idx, EMPTY, FIELD_COUNT};
use crate::record::LogRecord;
use crate::url::{self, RequestUrl};
use filterscope_core::{Error, ProxyId, Result, Timestamp};
use std::borrow::Cow;
use std::net::Ipv4Addr;

/// Borrowed twin of [`RequestUrl`]: the URL components of one request as
/// slices over the source line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UrlView<'a> {
    /// `cs-uri-scheme` as logged (`http`, `ssl`, …).
    pub scheme: &'a str,
    /// `cs-host`: hostname or literal IPv4.
    pub host: &'a str,
    /// `cs-uri-port`.
    pub port: u16,
    /// `cs-uri-path`.
    pub path: &'a str,
    /// `cs-uri-query` without the leading `?`; empty when the log held `-`.
    pub query: &'a str,
}

impl<'a> UrlView<'a> {
    /// The literal IPv4 address if `cs-host` is one.
    pub fn host_ip(&self) -> Option<Ipv4Addr> {
        self.host.parse().ok()
    }

    /// Is the host a literal IPv4 address?
    pub fn host_is_ip(&self) -> bool {
        self.host_ip().is_some()
    }

    /// The string the SG-9000 keyword filter scans (`host + path + ?query`),
    /// built into a recycled caller buffer. Clears `out` first.
    pub fn filter_view_into(&self, out: &mut String) {
        url::filter_view_into(self.host, self.path, self.query, out);
    }

    /// Allocating convenience form of [`UrlView::filter_view_into`].
    pub fn filter_view(&self) -> String {
        let mut s = String::new();
        self.filter_view_into(&mut s);
        s
    }

    /// File extension of the path, matching [`RequestUrl::extension`].
    pub fn extension(&self) -> Option<&'a str> {
        let last = self.path.rsplit('/').next()?;
        let dot = last.rfind('.')?;
        if dot == 0 || dot + 1 == last.len() {
            return None;
        }
        Some(&last[dot + 1..])
    }

    /// Registrable-domain heuristic (see [`url::base_domain_of`]).
    pub fn base_domain(&self) -> Cow<'a, str> {
        url::base_domain_of(self.host)
    }

    /// Is the path/query empty (a "non-ambiguous" bare-domain request)?
    pub fn is_bare(&self) -> bool {
        (self.path.is_empty() || self.path == "/") && self.query.is_empty()
    }

    /// Materialize an owned [`RequestUrl`].
    pub fn to_url(&self) -> RequestUrl {
        RequestUrl {
            scheme: self.scheme.to_string(),
            host: self.host.to_string(),
            port: self.port,
            path: self.path.to_string(),
            query: self.query.to_string(),
        }
    }
}

/// Borrowed twin of [`LogRecord`]: one access-log record with zero-copy
/// free-text fields.
///
/// String-valued enum fields (`s-action`, `cs-method`, `x-exception-id`)
/// are kept as the raw logged spelling — parsing them into the catalogued
/// enums allocates for long-tail values, so that cost is deferred to the
/// few consumers that need typed values ([`RecordView::exception_id`],
/// [`RecordView::to_record`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordView<'a> {
    /// `date` + `time`.
    pub timestamp: Timestamp,
    /// `time-taken` in milliseconds.
    pub time_taken_ms: u32,
    /// `c-ip` (zeroed / hashed / literal).
    pub client: ClientId,
    /// `sc-status` (0 when the log held `-`).
    pub sc_status: u16,
    /// `s-action`, raw spelling (`TCP_DENIED`, …).
    pub s_action: &'a str,
    /// `sc-bytes`.
    pub sc_bytes: u64,
    /// `cs-bytes`.
    pub cs_bytes: u64,
    /// `cs-method`, raw spelling (`GET`, `CONNECT`, …).
    pub method: &'a str,
    /// The URL components.
    pub url: UrlView<'a>,
    /// `cs-uri-ext` (empty when the log held `-`).
    pub uri_ext: &'a str,
    /// `cs-username` (empty when `-`).
    pub username: &'a str,
    /// `s-hierarchy`.
    pub hierarchy: &'a str,
    /// `s-supplier-name` (empty when `-`).
    pub supplier: &'a str,
    /// `rs-content-type` (empty when `-`).
    pub content_type: &'a str,
    /// `cs-user-agent` (empty when `-`).
    pub user_agent: &'a str,
    /// `sc-filter-result`.
    pub filter_result: FilterResult,
    /// `cs-categories` as logged.
    pub categories: &'a str,
    /// `x-virus-id` (empty when `-`).
    pub virus_id: &'a str,
    /// `s-ip`: the proxy that handled the request.
    pub s_ip: Ipv4Addr,
    /// `s-sitename`.
    pub sitename: &'a str,
    /// `x-exception-id`, raw spelling (`-` when none).
    pub exception: &'a str,
}

impl<'a> RecordView<'a> {
    /// The proxy that handled the request, when `s-ip` belongs to the known
    /// SG-42…48 deployment.
    pub fn proxy(&self) -> Option<ProxyId> {
        ProxyId::from_s_ip(self.s_ip).ok()
    }

    /// Shorthand for `self.url.host`.
    pub fn host(&self) -> &'a str {
        self.url.host
    }

    /// The scheme as a typed enum (allocates only for uncatalogued schemes).
    pub fn scheme(&self) -> Scheme {
        Scheme::parse(self.url.scheme)
    }

    /// Did the request raise no exception (`x-exception-id = '-'`)?
    pub fn exception_is_none(&self) -> bool {
        self.exception == EMPTY
    }

    /// Is the exception one of the two censorship exceptions?
    pub fn exception_is_policy(&self) -> bool {
        matches!(self.exception, "policy_denied" | "policy_redirect")
    }

    /// The exception as a typed [`ExceptionId`] (allocates only for
    /// long-tail values outside the catalogue).
    pub fn exception_id(&self) -> ExceptionId {
        ExceptionId::parse(self.exception)
    }

    /// Materialize an owned [`LogRecord`]. This is the single place the
    /// owned parsers get their field conversions from, so view parsing and
    /// owned parsing cannot disagree.
    pub fn to_record(&self) -> LogRecord {
        LogRecord {
            timestamp: self.timestamp,
            time_taken_ms: self.time_taken_ms,
            client: self.client,
            sc_status: self.sc_status,
            s_action: SAction::parse(self.s_action),
            sc_bytes: self.sc_bytes,
            cs_bytes: self.cs_bytes,
            method: Method::parse(self.method),
            url: self.url.to_url(),
            uri_ext: self.uri_ext.to_string(),
            username: self.username.to_string(),
            hierarchy: self.hierarchy.to_string(),
            supplier: self.supplier.to_string(),
            content_type: self.content_type.to_string(),
            user_agent: self.user_agent.to_string(),
            filter_result: self.filter_result,
            categories: self.categories.to_string(),
            virus_id: self.virus_id.to_string(),
            s_ip: self.s_ip,
            sitename: self.sitename.to_string(),
            exception: ExceptionId::parse(self.exception),
        }
    }
}

/// Parse one canonical-order CSV line into a [`RecordView`] borrowing from
/// `line` (and `splitter`'s scratch space). The borrowed counterpart of
/// [`crate::parse_line`].
pub fn parse_view<'a>(
    splitter: &'a mut LineSplitter,
    line: &'a str,
    line_no: u64,
) -> Result<RecordView<'a>> {
    let mal = |reason: String| Error::MalformedRecord {
        line: line_no,
        reason,
    };
    let fields = splitter
        .split(line)
        .ok_or_else(|| mal("bad CSV quoting".into()))?;
    if fields.len() != FIELD_COUNT {
        return Err(mal(format!(
            "expected {FIELD_COUNT} fields, got {}",
            fields.len()
        )));
    }
    build_view(&|canonical| fields.get(canonical), line_no)
}

/// The `-` → empty mapping applied to optional free-text fields.
fn opt(s: &str) -> &str {
    if s == EMPTY {
        ""
    } else {
        s
    }
}

/// Build a [`RecordView`] from a lookup over *canonical* field indexes (see
/// [`crate::fields::idx`]). `None` means the source schema lacks that
/// field; optional fields default, required fields error. The owned
/// [`crate::record::build_record`] delegates here.
pub(crate) fn build_view<'a>(
    f: &dyn Fn(usize) -> Option<&'a str>,
    line_no: u64,
) -> Result<RecordView<'a>> {
    let mal = |reason: String| Error::MalformedRecord {
        line: line_no,
        reason,
    };
    let required = |i: usize| {
        f(i).ok_or_else(|| {
            mal(format!(
                "missing required field {}",
                crate::fields::FIELDS[i]
            ))
        })
    };
    let optional = |i: usize| f(i).unwrap_or(EMPTY);

    let timestamp = Timestamp::parse_fields(required(idx::DATE)?, required(idx::TIME)?)
        .map_err(|e| mal(e.to_string()))?;
    let time_taken_field = optional(idx::TIME_TAKEN);
    let time_taken_ms: u32 = if time_taken_field == EMPTY {
        0
    } else {
        time_taken_field
            .parse()
            .map_err(|_| mal(format!("bad time-taken {time_taken_field:?}")))?
    };
    let client = ClientId::parse(optional(idx::C_IP)).map_err(|e| mal(e.to_string()))?;
    let status_field = optional(idx::SC_STATUS);
    let sc_status: u16 = if status_field == EMPTY {
        0
    } else {
        status_field
            .parse()
            .map_err(|_| mal(format!("bad sc-status {status_field:?}")))?
    };
    let port_field = optional(idx::CS_URI_PORT);
    let port: u16 = if port_field == EMPTY {
        0
    } else {
        port_field
            .parse()
            .map_err(|_| mal(format!("bad cs-uri-port {port_field:?}")))?
    };
    let sc_bytes: u64 = optional(idx::SC_BYTES).parse().unwrap_or(0);
    let cs_bytes: u64 = optional(idx::CS_BYTES).parse().unwrap_or(0);
    let filter_result =
        FilterResult::parse(required(idx::SC_FILTER_RESULT)?).map_err(|e| mal(e.to_string()))?;
    let s_ip: Ipv4Addr = required(idx::S_IP)?
        .parse()
        .map_err(|_| mal(format!("bad s-ip {:?}", optional(idx::S_IP))))?;

    Ok(RecordView {
        timestamp,
        time_taken_ms,
        client,
        sc_status,
        s_action: optional(idx::S_ACTION),
        sc_bytes,
        cs_bytes,
        method: optional(idx::CS_METHOD),
        url: UrlView {
            scheme: f(idx::CS_URI_SCHEME).unwrap_or("http"),
            host: required(idx::CS_HOST)?,
            port,
            path: f(idx::CS_URI_PATH).unwrap_or("/"),
            query: opt(optional(idx::CS_URI_QUERY)),
        },
        uri_ext: opt(optional(idx::CS_URI_EXT)),
        username: opt(optional(idx::CS_USERNAME)),
        hierarchy: f(idx::S_HIERARCHY).unwrap_or("DIRECT"),
        supplier: opt(optional(idx::S_SUPPLIER_NAME)),
        content_type: opt(optional(idx::RS_CONTENT_TYPE)),
        user_agent: opt(optional(idx::CS_USER_AGENT)),
        filter_result,
        categories: f(idx::CS_CATEGORIES).unwrap_or("unavailable"),
        virus_id: opt(optional(idx::X_VIRUS_ID)),
        s_ip,
        sitename: f(idx::S_SITENAME).unwrap_or("SG-HTTP-Service"),
        exception: optional(idx::X_EXCEPTION_ID),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{parse_line, RecordBuilder};
    use filterscope_core::ProxyId;

    fn ts() -> Timestamp {
        Timestamp::parse_fields("2011-08-03", "08:15:00").unwrap()
    }

    fn sample() -> LogRecord {
        RecordBuilder::new(
            ts(),
            ProxyId::Sg44,
            RequestUrl::http("www.facebook.com", "/plugins/like.php").with_query("href=x&sdk=joey"),
        )
        .user_agent("Mozilla/4.0 (compatible, MSIE 7.0, Windows NT 5.1)")
        .derive_ext()
        .build()
    }

    #[test]
    fn view_parse_agrees_with_owned_parse() {
        let rec = sample();
        let line = rec.write_csv();
        let owned = parse_line(&line, 1).unwrap();
        let mut splitter = LineSplitter::new();
        let view = parse_view(&mut splitter, &line, 1).unwrap();
        assert_eq!(view.to_record(), owned);
        assert_eq!(view, owned.as_view());
    }

    #[test]
    fn as_view_mirrors_every_field() {
        let rec = sample();
        let v = rec.as_view();
        assert_eq!(v.timestamp, rec.timestamp);
        assert_eq!(v.client, rec.client);
        assert_eq!(v.url.host, rec.url.host);
        assert_eq!(v.url.query, rec.url.query);
        assert_eq!(v.uri_ext, rec.uri_ext);
        assert_eq!(v.user_agent, rec.user_agent);
        assert_eq!(v.filter_result, rec.filter_result);
        assert_eq!(v.exception, rec.exception.as_str());
        assert_eq!(v.s_action, rec.s_action.as_str());
        assert_eq!(v.method, rec.method.as_str());
        assert_eq!(v.proxy(), rec.proxy());
        assert_eq!(v.to_record(), rec);
    }

    #[test]
    fn exception_helpers() {
        let denied = RecordBuilder::new(ts(), ProxyId::Sg42, RequestUrl::http("x.com", "/"))
            .policy_denied()
            .build();
        let v = denied.as_view();
        assert!(!v.exception_is_none());
        assert!(v.exception_is_policy());
        assert_eq!(v.exception_id(), ExceptionId::PolicyDenied);

        let ok = RecordBuilder::new(ts(), ProxyId::Sg42, RequestUrl::http("x.com", "/")).build();
        let v = ok.as_view();
        assert!(v.exception_is_none());
        assert!(!v.exception_is_policy());
        assert_eq!(v.exception_id(), ExceptionId::None);
    }

    #[test]
    fn url_view_helpers_match_owned() {
        let url = RequestUrl::http("WWW.Metacafe.com", "/watch/video.flv").with_query("hd=1");
        let rec = RecordBuilder::new(ts(), ProxyId::Sg48, url.clone()).build();
        let v = rec.as_view();
        assert_eq!(v.url.extension(), url.extension());
        assert_eq!(v.url.base_domain(), url.base_domain());
        assert_eq!(v.url.filter_view(), url.filter_view());
        assert_eq!(v.url.is_bare(), url.is_bare());
        assert_eq!(v.url.host_ip(), url.host_ip());
        assert_eq!(v.scheme(), Scheme::Http);
        let mut buf = String::new();
        v.url.filter_view_into(&mut buf);
        assert_eq!(buf, url.filter_view());
    }

    #[test]
    fn view_rejects_what_owned_rejects() {
        let mut splitter = LineSplitter::new();
        assert!(parse_view(&mut splitter, "a,b,c", 7).is_err());
        let good = sample().write_csv();
        let bad_date = good.replacen("2011-08-03", "2011-13-03", 1);
        assert!(parse_view(&mut splitter, &bad_date, 1).is_err());
    }

    #[test]
    fn quoted_fields_come_from_scratch_without_loss() {
        let rec = RecordBuilder::new(ts(), ProxyId::Sg42, RequestUrl::http("x.com", "/"))
            .user_agent(r#"quote " inside, and commas"#)
            .build();
        let line = rec.write_csv();
        let mut splitter = LineSplitter::new();
        let view = parse_view(&mut splitter, &line, 1).unwrap();
        assert_eq!(view.user_agent, r#"quote " inside, and commas"#);
        assert_eq!(view.to_record(), rec);
    }
}
