//! Request classification (§3.3 of the paper).
//!
//! Two complementary views exist side by side, matching the paper's usage:
//!
//! * [`RequestClass`] — the four-way split of Table 3, keyed primarily on
//!   `sc-filter-result`: `PROXIED` records form their own class because "the
//!   outcome depends on a prior computation", and everything else divides by
//!   `x-exception-id` into Allowed / Censored / Error.
//! * [`PolicyClass`] — the pure exception-based three-way split the paper
//!   falls back to when it "treats \[PROXIED requests\] like the rest of the
//!   traffic and classifies them according to the x-exception-id" (used by
//!   the per-domain and per-keyword tables where Proxied is a separate
//!   column).

use crate::enums::{ExceptionId, FilterResult};
use crate::fields::EMPTY;
use crate::record::LogRecord;
use crate::view::RecordView;

/// Is this raw `x-exception-id` spelling one of the two censorship
/// exceptions? The `&str` twin of [`ExceptionId::is_policy`].
fn exception_is_policy(exception: &str) -> bool {
    matches!(exception, "policy_denied" | "policy_redirect")
}

/// The paper's four-way traffic classification (Table 3 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestClass {
    /// Served to the client, no exception (`OBSERVED`, `x-exception-id = '-'`).
    Allowed,
    /// Outcome resolved by the cache (`sc-filter-result = PROXIED`).
    Proxied,
    /// Not served, due to a network/processing error.
    Error,
    /// Not served, due to the censorship policy
    /// (`policy_denied` / `policy_redirect`).
    Censored,
}

impl RequestClass {
    /// Classify from the raw field pair — the shared core both the owned
    /// and borrowed entry points reduce to, so they cannot disagree.
    /// `exception` is the raw `x-exception-id` spelling (`-` when none).
    pub fn of_parts(filter_result: FilterResult, exception: &str) -> RequestClass {
        if filter_result == FilterResult::Proxied {
            return RequestClass::Proxied;
        }
        if exception == EMPTY {
            RequestClass::Allowed
        } else if exception_is_policy(exception) {
            RequestClass::Censored
        } else {
            RequestClass::Error
        }
    }

    /// Classify a borrowed record view (the hot ingest path — no
    /// allocation, no enum parse).
    pub fn of_view(view: &RecordView<'_>) -> RequestClass {
        RequestClass::of_parts(view.filter_result, view.exception)
    }

    /// Classify an owned record.
    pub fn of(record: &LogRecord) -> RequestClass {
        RequestClass::of_parts(record.filter_result, record.exception.as_str())
    }

    /// Display label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            RequestClass::Allowed => "Allowed",
            RequestClass::Proxied => "Proxied",
            RequestClass::Error => "Error",
            RequestClass::Censored => "Censored",
        }
    }

    /// Was the request denied (not served), i.e. Error or Censored?
    /// Matches the paper's `Ddenied` membership: `x-exception-id != '-'`.
    pub fn is_denied(self) -> bool {
        matches!(self, RequestClass::Error | RequestClass::Censored)
    }
}

/// Exception-only three-way classification (`PROXIED` folded in).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyClass {
    /// No exception raised.
    Allowed,
    /// `policy_denied` or `policy_redirect`.
    Censored,
    /// Any other exception.
    Error,
}

impl PolicyClass {
    /// Classify from the raw `x-exception-id` spelling (`-` when none).
    pub fn of_exception(exception: &str) -> PolicyClass {
        if exception == EMPTY {
            PolicyClass::Allowed
        } else if exception_is_policy(exception) {
            PolicyClass::Censored
        } else {
            PolicyClass::Error
        }
    }

    /// Classify a borrowed record view by exception alone.
    pub fn of_view(view: &RecordView<'_>) -> PolicyClass {
        PolicyClass::of_exception(view.exception)
    }

    /// Classify a record by exception alone.
    pub fn of(record: &LogRecord) -> PolicyClass {
        PolicyClass::of_exception(record.exception.as_str())
    }
}

/// Membership test for the `Ddenied` dataset: every request that raised an
/// exception, regardless of filter result (Table 3 counts PROXIED rows with
/// exceptions inside `Ddenied` too).
pub fn in_denied_dataset(record: &LogRecord) -> bool {
    record.exception != ExceptionId::None
}

/// [`in_denied_dataset`] for a borrowed record view.
pub fn in_denied_dataset_view(view: &RecordView<'_>) -> bool {
    !view.exception_is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordBuilder;
    use crate::url::RequestUrl;
    use filterscope_core::{ProxyId, Timestamp};

    fn ts() -> Timestamp {
        Timestamp::parse_fields("2011-08-02", "10:00:00").unwrap()
    }

    fn base() -> RecordBuilder {
        RecordBuilder::new(ts(), ProxyId::Sg42, RequestUrl::http("example.com", "/"))
    }

    #[test]
    fn observed_without_exception_is_allowed() {
        let r = base().build();
        assert_eq!(RequestClass::of(&r), RequestClass::Allowed);
        assert_eq!(PolicyClass::of(&r), PolicyClass::Allowed);
        assert!(!in_denied_dataset(&r));
    }

    #[test]
    fn policy_denied_is_censored() {
        let r = base().policy_denied().build();
        assert_eq!(RequestClass::of(&r), RequestClass::Censored);
        assert!(RequestClass::of(&r).is_denied());
        assert!(in_denied_dataset(&r));
    }

    #[test]
    fn policy_redirect_is_censored() {
        let r = base().policy_redirect().build();
        assert_eq!(RequestClass::of(&r), RequestClass::Censored);
        assert_eq!(PolicyClass::of(&r), PolicyClass::Censored);
    }

    #[test]
    fn network_errors_are_errors() {
        for e in [
            ExceptionId::TcpError,
            ExceptionId::InternalError,
            ExceptionId::InvalidRequest,
            ExceptionId::DnsServerFailure,
            ExceptionId::Other("weird_thing".into()),
        ] {
            let r = base().network_error(e.clone()).build();
            assert_eq!(RequestClass::of(&r), RequestClass::Error, "{e}");
            assert_eq!(PolicyClass::of(&r), PolicyClass::Error);
            assert!(in_denied_dataset(&r));
        }
    }

    #[test]
    fn proxied_is_its_own_class_but_policy_class_sees_through() {
        // PROXIED with no exception: Proxied / Allowed.
        let r = base().proxied().build();
        assert_eq!(RequestClass::of(&r), RequestClass::Proxied);
        assert_eq!(PolicyClass::of(&r), PolicyClass::Allowed);
        assert!(!in_denied_dataset(&r));

        // PROXIED that raised policy_denied: still class Proxied in the
        // four-way view, but Censored in the exception view, and a member of
        // Ddenied (Table 3's PROXIED row inside the Denied dataset).
        let r = base()
            .proxied()
            .exception(ExceptionId::PolicyDenied)
            .build();
        assert_eq!(RequestClass::of(&r), RequestClass::Proxied);
        assert_eq!(PolicyClass::of(&r), PolicyClass::Censored);
        assert!(in_denied_dataset(&r));
    }

    #[test]
    fn labels() {
        assert_eq!(RequestClass::Censored.label(), "Censored");
        assert_eq!(RequestClass::Allowed.label(), "Allowed");
    }

    #[test]
    fn view_classification_agrees_with_owned() {
        let records = [
            base().build(),
            base().policy_denied().build(),
            base().policy_redirect().build(),
            base().network_error(ExceptionId::TcpError).build(),
            base().proxied().build(),
            base()
                .proxied()
                .exception(ExceptionId::PolicyDenied)
                .build(),
            base()
                .network_error(ExceptionId::Other("weird_thing".into()))
                .build(),
        ];
        for r in &records {
            let v = r.as_view();
            assert_eq!(RequestClass::of_view(&v), RequestClass::of(r));
            assert_eq!(PolicyClass::of_view(&v), PolicyClass::of(r));
            assert_eq!(in_denied_dataset_view(&v), in_denied_dataset(r));
        }
    }
}
