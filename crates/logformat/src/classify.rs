//! Request classification (§3.3 of the paper).
//!
//! Two complementary views exist side by side, matching the paper's usage:
//!
//! * [`RequestClass`] — the four-way split of Table 3, keyed primarily on
//!   `sc-filter-result`: `PROXIED` records form their own class because "the
//!   outcome depends on a prior computation", and everything else divides by
//!   `x-exception-id` into Allowed / Censored / Error.
//! * [`PolicyClass`] — the pure exception-based three-way split the paper
//!   falls back to when it "treats \[PROXIED requests\] like the rest of the
//!   traffic and classifies them according to the x-exception-id" (used by
//!   the per-domain and per-keyword tables where Proxied is a separate
//!   column).

use crate::enums::{ExceptionId, FilterResult};
use crate::record::LogRecord;

/// The paper's four-way traffic classification (Table 3 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestClass {
    /// Served to the client, no exception (`OBSERVED`, `x-exception-id = '-'`).
    Allowed,
    /// Outcome resolved by the cache (`sc-filter-result = PROXIED`).
    Proxied,
    /// Not served, due to a network/processing error.
    Error,
    /// Not served, due to the censorship policy
    /// (`policy_denied` / `policy_redirect`).
    Censored,
}

impl RequestClass {
    /// Classify a record.
    pub fn of(record: &LogRecord) -> RequestClass {
        if record.filter_result == FilterResult::Proxied {
            return RequestClass::Proxied;
        }
        match &record.exception {
            ExceptionId::None => RequestClass::Allowed,
            e if e.is_policy() => RequestClass::Censored,
            _ => RequestClass::Error,
        }
    }

    /// Display label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            RequestClass::Allowed => "Allowed",
            RequestClass::Proxied => "Proxied",
            RequestClass::Error => "Error",
            RequestClass::Censored => "Censored",
        }
    }

    /// Was the request denied (not served), i.e. Error or Censored?
    /// Matches the paper's `Ddenied` membership: `x-exception-id != '-'`.
    pub fn is_denied(self) -> bool {
        matches!(self, RequestClass::Error | RequestClass::Censored)
    }
}

/// Exception-only three-way classification (`PROXIED` folded in).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyClass {
    /// No exception raised.
    Allowed,
    /// `policy_denied` or `policy_redirect`.
    Censored,
    /// Any other exception.
    Error,
}

impl PolicyClass {
    /// Classify a record by exception alone.
    pub fn of(record: &LogRecord) -> PolicyClass {
        match &record.exception {
            ExceptionId::None => PolicyClass::Allowed,
            e if e.is_policy() => PolicyClass::Censored,
            _ => PolicyClass::Error,
        }
    }
}

/// Membership test for the `Ddenied` dataset: every request that raised an
/// exception, regardless of filter result (Table 3 counts PROXIED rows with
/// exceptions inside `Ddenied` too).
pub fn in_denied_dataset(record: &LogRecord) -> bool {
    record.exception != ExceptionId::None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordBuilder;
    use crate::url::RequestUrl;
    use filterscope_core::{ProxyId, Timestamp};

    fn ts() -> Timestamp {
        Timestamp::parse_fields("2011-08-02", "10:00:00").unwrap()
    }

    fn base() -> RecordBuilder {
        RecordBuilder::new(ts(), ProxyId::Sg42, RequestUrl::http("example.com", "/"))
    }

    #[test]
    fn observed_without_exception_is_allowed() {
        let r = base().build();
        assert_eq!(RequestClass::of(&r), RequestClass::Allowed);
        assert_eq!(PolicyClass::of(&r), PolicyClass::Allowed);
        assert!(!in_denied_dataset(&r));
    }

    #[test]
    fn policy_denied_is_censored() {
        let r = base().policy_denied().build();
        assert_eq!(RequestClass::of(&r), RequestClass::Censored);
        assert!(RequestClass::of(&r).is_denied());
        assert!(in_denied_dataset(&r));
    }

    #[test]
    fn policy_redirect_is_censored() {
        let r = base().policy_redirect().build();
        assert_eq!(RequestClass::of(&r), RequestClass::Censored);
        assert_eq!(PolicyClass::of(&r), PolicyClass::Censored);
    }

    #[test]
    fn network_errors_are_errors() {
        for e in [
            ExceptionId::TcpError,
            ExceptionId::InternalError,
            ExceptionId::InvalidRequest,
            ExceptionId::DnsServerFailure,
            ExceptionId::Other("weird_thing".into()),
        ] {
            let r = base().network_error(e.clone()).build();
            assert_eq!(RequestClass::of(&r), RequestClass::Error, "{e}");
            assert_eq!(PolicyClass::of(&r), PolicyClass::Error);
            assert!(in_denied_dataset(&r));
        }
    }

    #[test]
    fn proxied_is_its_own_class_but_policy_class_sees_through() {
        // PROXIED with no exception: Proxied / Allowed.
        let r = base().proxied().build();
        assert_eq!(RequestClass::of(&r), RequestClass::Proxied);
        assert_eq!(PolicyClass::of(&r), PolicyClass::Allowed);
        assert!(!in_denied_dataset(&r));

        // PROXIED that raised policy_denied: still class Proxied in the
        // four-way view, but Censored in the exception view, and a member of
        // Ddenied (Table 3's PROXIED row inside the Denied dataset).
        let r = base()
            .proxied()
            .exception(ExceptionId::PolicyDenied)
            .build();
        assert_eq!(RequestClass::of(&r), RequestClass::Proxied);
        assert_eq!(PolicyClass::of(&r), PolicyClass::Censored);
        assert!(in_denied_dataset(&r));
    }

    #[test]
    fn labels() {
        assert_eq!(RequestClass::Censored.label(), "Censored");
        assert_eq!(RequestClass::Allowed.label(), "Allowed");
    }
}
