//! The Telecomix anonymization step, as a reusable transform.
//!
//! Before release, the leak's client addresses were replaced with zeros,
//! except for July 22–23 where they were replaced with a *hash* of the
//! address (§3.3) — the accident that makes the `Duser` analysis possible.
//! This module implements both transforms so unredacted logs can be
//! prepared for sharing with the same trade-offs: [`zero_client`] destroys
//! user linkage entirely; [`hash_client`] preserves linkage (same client →
//! same pseudonym) without revealing addresses.

use crate::enums::ClientId;
use crate::record::LogRecord;
use std::net::Ipv4Addr;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Keyed pseudonym for an address: deterministic per (salt, address).
pub fn pseudonym(addr: Ipv4Addr, salt: u64) -> u64 {
    splitmix(salt ^ u32::from(addr) as u64)
}

/// Replace the client identifier with zeros (the August treatment).
pub fn zero_client(record: &mut LogRecord) {
    record.client = ClientId::Zeroed;
}

/// Replace a literal client address with a salted hash (the July 22–23
/// treatment). Already-anonymized identifiers (zeroed or hashed) are left
/// untouched — re-hashing a hash would break cross-file linkage.
pub fn hash_client(record: &mut LogRecord, salt: u64) {
    if let ClientId::Addr(addr) = record.client {
        record.client = ClientId::Hashed(pseudonym(addr, salt));
    }
}

/// Anonymize a whole record stream in the leak's style: hash clients inside
/// `hash_window` (a date range, inclusive), zero them elsewhere.
pub fn telecomix_style(
    record: &mut LogRecord,
    hash_window: (filterscope_core::Date, filterscope_core::Date),
    salt: u64,
) {
    let d = record.timestamp.date();
    if d >= hash_window.0 && d <= hash_window.1 {
        hash_client(record, salt);
    } else {
        zero_client(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordBuilder;
    use crate::url::RequestUrl;
    use filterscope_core::{Date, ProxyId, Timestamp};

    fn rec(date: &str, client: ClientId) -> LogRecord {
        RecordBuilder::new(
            Timestamp::parse_fields(date, "09:00:00").unwrap(),
            ProxyId::Sg42,
            RequestUrl::http("x.com", "/"),
        )
        .client(client)
        .build()
    }

    #[test]
    fn hashing_is_deterministic_and_keyed() {
        let a: Ipv4Addr = "10.1.2.3".parse().unwrap();
        let b: Ipv4Addr = "10.1.2.4".parse().unwrap();
        assert_eq!(pseudonym(a, 7), pseudonym(a, 7));
        assert_ne!(pseudonym(a, 7), pseudonym(b, 7));
        assert_ne!(pseudonym(a, 7), pseudonym(a, 8), "salt must matter");
    }

    #[test]
    fn hash_client_preserves_linkage() {
        let addr = ClientId::Addr("192.0.2.7".parse().unwrap());
        let mut r1 = rec("2011-07-22", addr);
        let mut r2 = rec("2011-07-23", addr);
        hash_client(&mut r1, 42);
        hash_client(&mut r2, 42);
        assert_eq!(r1.client, r2.client);
        assert!(matches!(r1.client, ClientId::Hashed(_)));
    }

    #[test]
    fn already_anonymized_is_untouched() {
        let mut r = rec("2011-07-22", ClientId::Hashed(0xAB));
        hash_client(&mut r, 42);
        assert_eq!(r.client, ClientId::Hashed(0xAB));
        let mut z = rec("2011-07-22", ClientId::Zeroed);
        hash_client(&mut z, 42);
        assert_eq!(z.client, ClientId::Zeroed);
    }

    #[test]
    fn telecomix_style_windows() {
        let window = (
            Date::new(2011, 7, 22).unwrap(),
            Date::new(2011, 7, 23).unwrap(),
        );
        let addr = ClientId::Addr("192.0.2.7".parse().unwrap());
        let mut inside = rec("2011-07-22", addr);
        telecomix_style(&mut inside, window, 1);
        assert!(matches!(inside.client, ClientId::Hashed(_)));
        let mut outside = rec("2011-08-01", addr);
        telecomix_style(&mut outside, window, 1);
        assert_eq!(outside.client, ClientId::Zeroed);
    }
}
