//! The fixed 26-field schema of the leaked logs.
//!
//! Field order matters: records are positional CSV. The names follow the
//! paper's Table 2 (e.g. `cs-user-agent`, `cs-uri-ext`) plus the standard
//! Blue Coat `main`-format companions.

/// Number of fields per record.
pub const FIELD_COUNT: usize = 26;

/// Field names in on-disk order.
pub const FIELDS: [&str; FIELD_COUNT] = [
    "date",             // 0  YYYY-MM-DD (UTC)
    "time",             // 1  HH:MM:SS (UTC)
    "time-taken",       // 2  milliseconds the proxy spent on the request
    "c-ip",             // 3  client address: zeroed or hashed by Telecomix
    "sc-status",        // 4  protocol status code proxy -> client
    "s-action",         // 5  what the appliance did (TCP_HIT, TCP_DENIED, ...)
    "sc-bytes",         // 6  bytes proxy -> client
    "cs-bytes",         // 7  bytes client -> proxy
    "cs-method",        // 8  request method (GET, POST, CONNECT, ...)
    "cs-uri-scheme",    // 9  scheme of requested URL (http, ssl, tcp, ...)
    "cs-host",          // 10 hostname or IP address
    "cs-uri-port",      // 11 port of the requested URL
    "cs-uri-path",      // 12 path component
    "cs-uri-query",     // 13 query component ('-' when absent)
    "cs-uri-ext",       // 14 extension of the requested URL (php, flv, ...)
    "cs-username",      // 15 authenticated user ('-' in this deployment)
    "s-hierarchy",      // 16 how the request was fetched (DIRECT, NONE, ...)
    "s-supplier-name",  // 17 upstream host that supplied the content
    "rs-content-type",  // 18 Content-Type of the response
    "cs-user-agent",    // 19 client User-Agent header
    "sc-filter-result", // 20 OBSERVED | PROXIED | DENIED
    "cs-categories",    // 21 URL categories ("unavailable", "Blocked sites", ...)
    "x-virus-id",       // 22 ICAP virus id ('-')
    "s-ip",             // 23 address of the proxy that handled the request
    "s-sitename",       // 24 service name ("SG-HTTP-Service")
    "x-exception-id",   // 25 exception raised ('-' when none)
];

/// Positional indexes, named for readability at call sites.
pub mod idx {
    pub const DATE: usize = 0;
    pub const TIME: usize = 1;
    pub const TIME_TAKEN: usize = 2;
    pub const C_IP: usize = 3;
    pub const SC_STATUS: usize = 4;
    pub const S_ACTION: usize = 5;
    pub const SC_BYTES: usize = 6;
    pub const CS_BYTES: usize = 7;
    pub const CS_METHOD: usize = 8;
    pub const CS_URI_SCHEME: usize = 9;
    pub const CS_HOST: usize = 10;
    pub const CS_URI_PORT: usize = 11;
    pub const CS_URI_PATH: usize = 12;
    pub const CS_URI_QUERY: usize = 13;
    pub const CS_URI_EXT: usize = 14;
    pub const CS_USERNAME: usize = 15;
    pub const S_HIERARCHY: usize = 16;
    pub const S_SUPPLIER_NAME: usize = 17;
    pub const RS_CONTENT_TYPE: usize = 18;
    pub const CS_USER_AGENT: usize = 19;
    pub const SC_FILTER_RESULT: usize = 20;
    pub const CS_CATEGORIES: usize = 21;
    pub const X_VIRUS_ID: usize = 22;
    pub const S_IP: usize = 23;
    pub const S_SITENAME: usize = 24;
    pub const X_EXCEPTION_ID: usize = 25;
}

/// The ELFF `#Fields:` header line for this schema.
pub fn header_line() -> String {
    format!("#Fields: {}", FIELDS.join(","))
}

/// The placeholder used for absent values throughout the format.
pub const EMPTY: &str = "-";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_26_fields() {
        assert_eq!(FIELDS.len(), FIELD_COUNT);
        assert_eq!(FIELD_COUNT, 26);
    }

    #[test]
    fn indexes_match_names() {
        assert_eq!(FIELDS[idx::CS_HOST], "cs-host");
        assert_eq!(FIELDS[idx::SC_FILTER_RESULT], "sc-filter-result");
        assert_eq!(FIELDS[idx::X_EXCEPTION_ID], "x-exception-id");
        assert_eq!(FIELDS[idx::S_IP], "s-ip");
        assert_eq!(FIELDS[idx::CS_URI_QUERY], "cs-uri-query");
    }

    #[test]
    fn paper_table2_fields_present() {
        // Every field the paper's Table 2 describes must exist in the schema.
        for f in [
            "cs-host",
            "cs-uri-scheme",
            "cs-uri-port",
            "cs-uri-path",
            "cs-uri-query",
            "cs-uri-ext",
            "cs-user-agent",
            "cs-categories",
            "c-ip",
            "s-ip",
            "sc-status",
            "sc-filter-result",
            "x-exception-id",
        ] {
            assert!(FIELDS.contains(&f), "missing {f}");
        }
    }

    #[test]
    fn header_line_shape() {
        let h = header_line();
        assert!(h.starts_with("#Fields: date,time,"));
        assert!(h.ends_with("x-exception-id"));
    }
}
